"""A guided tour of the hardness reductions (Sections 3-6).

Every #P-/SpanP-hardness proof in the paper is a constructive reduction.
This example runs each of them end-to-end on one small instance, printing
the source count, the database it compiles to, and the recovered count.

The tour closes with what hardness means *in practice* now that the repo
has more than brute force.  ``count_valuations`` / ``count_completions``
pick among (see ``repro/exact/dispatch.py`` for the full table):

====================  =====================================================
``auto``              poly algorithm if one applies, else ``lineage`` for
                      (U)CQs, else ``brute``
``poly``              Theorems 3.6/3.7/3.9/4.6 only; raises on hard cells
``lineage``           compile lineage -> CNF, exact #SAT with component
                      decomposition (``repro.compile``); exponential only
                      in the lineage's treewidth, so structured hard-cell
                      instances with astronomically many valuations stay
                      feasible
``brute``             enumerate valuations (budgeted; the hard-cell cliff)
====================  =====================================================

Run:  python examples/hardness_tour.py
"""

from repro.complexity.cnf import CNF3, count_k3sat
from repro.graphs.avoidance import count_avoiding_assignments
from repro.graphs.counting import (
    count_colorings,
    count_independent_sets,
    count_vertex_covers,
)
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    random_graph,
)
from repro.graphs.graph import Multigraph
from repro.graphs.hamilton import count_hamiltonian_induced_subgraphs
from repro.graphs.pseudoforest import count_induced_pseudoforests
from repro.reductions import (
    build_avoidance_db,
    build_k3sat_db,
    build_pseudoforest_db,
    build_three_coloring_db,
    build_vertex_cover_db,
    count_avoiding_assignments_via_valuations,
    count_bis_via_valuations,
    count_colorings_via_valuations,
    count_ham_subgraphs_via_valuations,
    count_independent_sets_via_completions,
    count_k3sat_via_completions,
    count_pseudoforests_via_completions,
    count_vertex_covers_via_completions,
)

graph = random_graph(5, 0.5, seed=3)
bipartite = complete_bipartite_graph(2, 2)
formula = CNF3.from_literals(3, [(1, -2, 3), (-1, 2, -3)])


def show(title, citation, db, recovered, direct):
    status = "OK" if recovered == direct else "MISMATCH"
    print("%-52s %s" % (title, citation))
    print("    database: %r" % (db,))
    print(
        "    recovered=%d  direct=%d  [%s]" % (recovered, direct, status)
    )
    assert recovered == direct
    print()


print("source instances: G = %r, bipartite = K_{2,2}, F = %r\n" % (graph, formula))

show(
    "#3COL  ->  #Valu(R(x,x))",
    "(Prop. 3.4)",
    build_three_coloring_db(graph),
    count_colorings_via_valuations(graph),
    count_colorings(graph, 3),
)

show(
    "#Avoidance  ->  #ValCd(R(x)∧S(x))",
    "(Prop. 3.5)",
    build_avoidance_db(bipartite),
    count_avoiding_assignments_via_valuations(bipartite),
    count_avoiding_assignments(Multigraph.from_graph(bipartite)),
)

show(
    "#BIS  ->  #ValuCd(path) via interpolation",
    "(Prop. 3.11)",
    "(n+1)^2 = 9 Codd databases",
    count_bis_via_valuations(bipartite),
    count_independent_sets(bipartite),
)

show(
    "#VC  ->  #CompCd(R(x)), parsimonious",
    "(Prop. 4.2)",
    build_vertex_cover_db(graph),
    count_vertex_covers_via_completions(graph),
    count_vertex_covers(graph),
)

show(
    "#IS  ->  #Compu(R(x,x)) - 2^n",
    "(Prop. 4.5a)",
    "naive uniform table over one binary relation",
    count_independent_sets_via_completions(graph),
    count_independent_sets(graph),
)

show(
    "#PF  ->  #CompuCd(R(x,y)), parsimonious",
    "(Prop. 4.5b)",
    build_pseudoforest_db(bipartite),
    count_pseudoforests_via_completions(bipartite),
    count_induced_pseudoforests(bipartite),
)

show(
    "#k3SAT  ->  #Compu(¬q), parsimonious",
    "(Thm. 6.3)",
    build_k3sat_db(formula, 2),
    count_k3sat_via_completions(formula, 2),
    count_k3sat(formula, 2),
)

show(
    "#HamSubgraphs  ->  #Valu(q_ESO)",
    "(Thm. 6.4)",
    "uniform Codd table + fixed ∃SO query",
    count_ham_subgraphs_via_valuations(cycle_graph(5), 5),
    count_hamiltonian_induced_subgraphs(cycle_graph(5), 5),
)

print("every reduction recovered the source count exactly.")

# ---------------------------------------------------------------------------
# Epilogue: hard cells beyond the brute-force budget.
#
# #Val(R(x,x)) is #P-hard (Prop. 3.4, first stop of the tour), so `poly`
# refuses it and `brute` dies at ~10^6 valuations.  The compiled backends
# turn the instance into a CNF over "null = value" indicators instead:
# `auto` probes the elimination width and — on a cycle, whose width stays
# tiny — picks the tree-decomposition DP (method='dpdb'); wider lineages
# fall back to the search-based 'lineage' counter.
# ---------------------------------------------------------------------------

import time

from repro.core.query import Atom, BCQ
from repro.db.valuation import count_total_valuations
from repro.exact.dispatch import count_valuations, resolve_valuation_method

big_db = build_three_coloring_db(cycle_graph(40))
hard_query = BCQ([Atom("R", ["x", "x"])])
chosen = resolve_valuation_method(big_db, hard_query)
assert chosen == "dpdb"  # the 40-cycle's elimination width is far below the cap
started = time.perf_counter()
hard_count = count_valuations(big_db, hard_query)
elapsed = time.perf_counter() - started
assert hard_count == count_valuations(big_db, hard_query, method="lineage")
print(
    "\nhard cell at scale: #Valu(R(x,x)) on the 40-cycle coloring database"
    "\n    valuations: %d (brute budget: 2,000,000)"
    "\n    count: %d  via method='%s' in %.2fs"
    % (count_total_valuations(big_db), hard_count, chosen, elapsed)
)
