"""Query support over an HR dataset with missing values.

The paper's motivation (Section 1): when a query is not *certain*, the
fraction of completions/valuations satisfying it measures how close it is
to being certain.  We load a small employee CSV with missing departments
and salary bands (correlated across rows via shared nulls), then rank
several compliance queries by their support.

Run:  python examples/support_analysis.py
"""

from fractions import Fraction

from repro.core.query import Atom, BCQ, Const
from repro.eval.certainty import (
    completion_support,
    is_certain,
    is_possible,
    valuation_support,
)
from repro.io.csv_loader import load_csv_relation

# Employee(name, department, salary_band); NULL:dept7 is the *same*
# unknown department for the two rows of team 7 (a naive-table correlation).
EMPLOYEE_CSV = """\
ada,engineering,senior
grace,NULL:dept7,senior
alan,NULL:dept7,NULL
edsger,research,NULL
barbara,research,junior
"""

DEPARTMENTS = ["engineering", "research", "sales"]
BANDS = ["junior", "senior"]

db = load_csv_relation(
    EMPLOYEE_CSV,
    relation="Employee",
    column_domains={1: DEPARTMENTS, 2: BANDS},
)

print(db)
for null in db.nulls:
    print("  %r ranges over %s" % (null, sorted(db.domain_of(null))))
print()

QUERIES = {
    "some senior researcher": BCQ(
        [Atom("Employee", ["n", Const("research"), Const("senior")])]
    ),
    "someone in sales": BCQ(
        [Atom("Employee", ["n", Const("sales"), "b"])]
    ),
    "grace and alan share a department": BCQ(
        [
            Atom("Employee", [Const("grace"), "d", "b1"]),
            Atom("Employee", [Const("alan"), "d", "b2"]),
        ]
    ),
    "some senior engineer": BCQ(
        [Atom("Employee", ["n", Const("engineering"), Const("senior")])]
    ),
}

print(
    "%-38s %-8s %-9s %-12s %s"
    % ("query", "certain", "possible", "val-support", "comp-support")
)
for name, query in QUERIES.items():
    vs = valuation_support(query, db)
    cs = completion_support(query, db)
    print(
        "%-38s %-8s %-9s %-12s %s"
        % (
            name,
            is_certain(query, db),
            is_possible(query, db),
            "%s (%.2f)" % (vs, float(vs)),
            "%s (%.2f)" % (cs, float(cs)),
        )
    )

# The correlated nulls matter: grace and alan share a department in *every*
# completion because they share the null, even though the department itself
# is unknown.
shared = QUERIES["grace and alan share a department"]
assert is_certain(shared, db)
assert valuation_support(QUERIES["some senior engineer"], db) == Fraction(1)
