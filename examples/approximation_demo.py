"""The approximation dichotomy, live (Section 5).

1. #Val: the Karp-Luby FPRAS estimates a count with 2^41-sized valuation
   space that no enumeration could touch, and we verify its guarantee on a
   smaller sibling instance.
2. #Comp: the Prop. 5.6 gap gadget shows *why* no FPRAS can exist — an
   approximate completion counter decides graph 3-colorability.

Run:  python examples/approximation_demo.py
"""

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute, count_valuations_brute
from repro.approx.fpras import KarpLubyEstimator
from repro.approx.montecarlo import naive_monte_carlo_valuations
from repro.graphs.generators import complete_graph, cycle_graph
from repro.reductions.gap3col import (
    build_gap_db,
    decide_three_colorability_via_approximation,
)

QUERY = BCQ([Atom("R", ["x", "x"])])


def chain(length: int, domain_size: int) -> IncompleteDatabase:
    nulls = [Null(i) for i in range(length + 1)]
    facts = [Fact("R", [nulls[i], nulls[i + 1]]) for i in range(length)]
    domain = ["v%d" % i for i in range(domain_size)]
    return IncompleteDatabase.uniform(facts, domain)


print("--- #Val has an FPRAS (Corollary 5.3) ---")
small = chain(7, 3)
exact = count_valuations_brute(small, QUERY)
estimator = KarpLubyEstimator(small, QUERY, seed=42)
report = estimator.estimate(epsilon=0.05, delta=0.1)
print(
    "chain of 8 nulls, |dom|=3: exact=%d  estimate=%.1f  (%d samples, "
    "%d events)"
    % (exact, report.estimate, report.samples, report.num_events)
)
assert abs(report.estimate - exact) <= 0.05 * exact

big = chain(40, 4)  # 4^41 valuations: enumeration is hopeless
big_report = KarpLubyEstimator(big, QUERY, seed=42).estimate_with_samples(
    5000
)
print(
    "chain of 41 nulls, |dom|=4: estimate=%.3e over a 4^41 space"
    % big_report.estimate
)

print()
print("--- naive Monte-Carlo is not an FPRAS ---")
rare = IncompleteDatabase.uniform(
    [Fact("S", [Null("z"), "w"])], ["w"] + ["u%d" % i for i in range(999)]
)
rare_query = BCQ([Atom("S", ["x", "x"])])
print("instance with satisfying mass 1/1000:")
print("  naive estimate :", naive_monte_carlo_valuations(rare, rare_query, 300, seed=1))
print(
    "  FPRAS estimate : %.3f (exact = 1)"
    % KarpLubyEstimator(rare, rare_query, seed=1).estimate(0.1).estimate
)

print()
print("--- #Comp has no FPRAS unless NP = RP (Prop. 5.6) ---")


def exact_approximator(db, query, epsilon):
    # Stand-in for a hypothetical FPRAS: exact counting (it satisfies any
    # epsilon guarantee, so the argument goes through).
    return float(count_completions_brute(db, query, budget=None))


for name, graph, expected in (
    ("C5 (3-colorable)", cycle_graph(5), True),
    ("K4 (not 3-colorable)", complete_graph(4), False),
):
    decision = decide_three_colorability_via_approximation(
        graph, exact_approximator
    )
    completions = count_completions_brute(build_gap_db(graph), None, budget=None)
    print(
        "  %-22s gadget completions=%d -> decided colorable=%s"
        % (name, completions, decision)
    )
    assert decision == expected
print(
    "a 1/16-accurate #Comp approximator just decided an NP-complete "
    "problem: that is the paper's impossibility argument."
)
