"""Best answers vs. counting support (Section 7 + future work).

Libkin's *best answers* order candidate tuples by inclusion of their
supporting valuation sets; the paper argues counting refines this: a best
answer need not have the largest support, and the support number says how
close each answer is to certain.  This example builds a small project
staffing database with unknowns and compares the two rankings.

Run:  python examples/best_answers_demo.py
"""

from repro.core.query import Atom, BCQ, Const
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.eval.answers import (
    ConjunctiveQuery,
    answer_reports,
    answers_by_support,
    best_answers,
)

# Assignment(person, project); two unknown assignments share one null
# (whoever fills in team X does both tasks), one is independent.
shared, solo = Null("teamX"), Null("solo")
db = IncompleteDatabase(
    facts=[
        Fact("Assign", ["ada", "apollo"]),
        Fact("Assign", [shared, "apollo"]),
        Fact("Assign", [shared, "borealis"]),
        Fact("Assign", [solo, "borealis"]),
    ],
    dom={
        shared: ["grace", "alan"],
        solo: ["ada", "grace", "edsger"],
    },
)

# q(who): who is assigned to borealis?
query = ConjunctiveQuery.make(
    BCQ([Atom("Assign", ["who", Const("borealis")])]), ["who"]
)

reports = answer_reports(query, db)
print("candidate answers for 'assigned to borealis':")
for answer, report in sorted(reports.items()):
    print(
        "  %-8s supported by %d/6 valuations, %d completions"
        % (answer[0], report.valuation_support, report.completion_support)
    )

print("\nbest answers (Libkin's order):", [a[0] for a in best_answers(query, db)])
print("ranked by valuation support  :")
for answer, fraction in answers_by_support(query, db):
    print("  %-8s %s" % (answer[0], fraction))

# The counting view distinguishes grace (supported whenever either null
# picks her) from alan (only via the shared null) — information the
# inclusion order alone cannot quantify.
