"""Quickstart: the paper's Figure 1 in twenty lines.

Builds the incomplete database of Example 2.2, counts the valuations and
completions satisfying ``q = ∃x S(x, x)``, and shows the dichotomy verdicts
for the query.

Run:  python examples/quickstart.py
"""

from repro import Atom, BCQ, Fact, IncompleteDatabase, Null, classify
from repro.exact import count_completions, count_valuations
from repro.db.valuation import count_total_valuations, iter_completions

# --- the incomplete database of Figure 1 -----------------------------------
# T = { S(a,b), S(⊥1,a), S(a,⊥2) }, dom(⊥1) = {a,b,c}, dom(⊥2) = {a,b}.
bottom1, bottom2 = Null(1), Null(2)
db = IncompleteDatabase(
    facts=[
        Fact("S", ["a", "b"]),
        Fact("S", [bottom1, "a"]),
        Fact("S", ["a", bottom2]),
    ],
    dom={bottom1: ["a", "b", "c"], bottom2: ["a", "b"]},
)

# --- the Boolean query q = ∃x S(x,x) ----------------------------------------
query = BCQ([Atom("S", ["x", "x"])])

print("database:", db)
print("total valuations:", count_total_valuations(db))
print("distinct completions:", sum(1 for _ in iter_completions(db)))
print()

# --- the two counting problems of the paper ---------------------------------
valuations = count_valuations(db, query)
completions = count_completions(db, query)
print("#Val(q)(D)  =", valuations, " (paper: 4)")
print("#Comp(q)(D) =", completions, "(paper: 3)")
assert (valuations, completions) == (4, 3)
print()

# --- where does q sit in Table 1? -------------------------------------------
print(classify(query).to_table())
