"""Libkin's 0-1 law for query support (Section 7 of the paper).

For a Boolean query ``q`` and incomplete database ``D``, let
``μ_k(q, D)`` be the fraction of valuations over the uniform domain
``{1..k}`` satisfying ``q``.  Libkin [37] showed μ_k tends to 0 or 1 as
``k -> ∞`` for generic queries; the paper's ``#Valu`` is exactly the
numerator.  This example computes μ_k exactly for growing k on three
queries over the same naive table and watches the convergence — including
a query converging to 0 and one converging to 1.

Run:  python examples/zero_one_law.py
"""

from fractions import Fraction

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import count_total_valuations
from repro.exact.brute import count_valuations_brute
from repro.exact.dispatch import count_valuations

TABLE = [
    Fact("R", [Null(1), Null(2)]),
    Fact("R", [Null(2), Null(3)]),
    Fact("R", ["a", Null(1)]),
]

QUERIES = {
    # Some value appears twice along the chain: becomes *rare* as the
    # domain grows (collisions die out) -> μ_k -> 0.
    "∃x R(x,x)": BCQ([Atom("R", ["x", "x"])]),
    # A join that only needs *some* pair of facts to link up; the table
    # hard-wires R(⊥1,⊥2), R(⊥2,⊥3): always linked -> μ_k = 1.
    "∃x,y,z R(x,y) ∧ R(y,z) [self-join]": BCQ(
        [Atom("R", ["x", "y"]), Atom("R", ["y", "z"])]
    ),
    # 'a' appears in the first column: needs ⊥1 or ⊥2 = a -> μ_k -> 0,
    # but more slowly (union of two collision events).
    "∃y R(a, y) via null": BCQ([Atom("R", ["x", "x"]), Atom("R", ["x", "y"])]),
}

print("μ_k(q, D): fraction of valuations over {1..k} satisfying q\n")
header = "%-38s" + "%10s" * 6
ks = [1, 2, 3, 5, 8, 12]
print(header % ("query", *["k=%d" % k for k in ks]))

for name, query in QUERIES.items():
    row = []
    for k in ks:
        db = IncompleteDatabase.uniform(TABLE, range(1, k + 1))
        satisfying = count_valuations_brute(db, query)
        mu = Fraction(satisfying, count_total_valuations(db))
        row.append("%.4f" % float(mu))
    print(header % (name, *row))

print(
    "\nEach row drifts to 0 or 1 — Libkin's 0-1 law; #Valu(q) is the "
    "quantity whose complexity the paper pins down (Theorem 3.9)."
)

# A tractable query computed by the Theorem 3.9 algorithm instead of
# enumeration, at a domain size enumeration could not handle.
query = BCQ([Atom("R", ["x", "z"]), Atom("S", ["x"])])
facts = TABLE + [Fact("S", [Null(1)]), Fact("S", [Null(4)])]
db = IncompleteDatabase.uniform(facts, range(1, 60))
count = count_valuations(db, query, method="poly")
total = count_total_valuations(db)
print(
    "\npolynomial case at k=59: #Valu = %d of %d valuations (μ = %.4f)"
    % (count, total, count / total)
)
