"""Explore Table 1: classify queries and watch the dichotomy at work.

For a catalogue of sjfBCQs, prints the full dichotomy report and then
*demonstrates* each verdict on a concrete instance: FP cells run the
polynomial algorithm, hard cells fall back to (budgeted) enumeration via
the dispatcher.

Run:  python examples/dichotomy_explorer.py
"""

from repro.core.classify import Tractability, classify
from repro.core.problems import VAL, VAL_CODD, VAL_UNIFORM
from repro.core.query import Atom, BCQ
from repro.exact.dispatch import (
    count_valuations,
    select_valuation_algorithm,
)
from repro.io.queries import format_query
from repro.workloads.generators import random_incomplete_db

CATALOGUE = [
    BCQ([Atom("R", ["x", "y"]), Atom("S", ["z"])]),       # fully pattern-free
    BCQ([Atom("R", ["x", "x"])]),                          # repeat pattern
    BCQ([Atom("R", ["x"]), Atom("S", ["x"])]),             # shared pattern
    BCQ([Atom("R", ["x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])]),  # path
    BCQ([Atom("R", ["x", "y"]), Atom("S", ["x", "y"])]),   # double edge
]

for query in CATALOGUE:
    report = classify(query)
    print("=" * 72)
    print(report.to_table())
    print()

    schema = {atom.relation: atom.arity for atom in query.atoms}
    for variant, uniform, codd in (
        (VAL, False, False),
        (VAL_CODD, False, True),
        (VAL_UNIFORM, True, False),
    ):
        db = random_incomplete_db(
            schema, seed=7, uniform=uniform, codd=codd, domain_size=3
        )
        algorithm = select_valuation_algorithm(db, query)
        count = count_valuations(db, query)
        verdict = report.entry(variant).tractability
        print(
            "  %-8s -> %-12s algorithm=%-18s #Val=%d"
            % (variant.paper_name, verdict.value, algorithm or "brute-force", count)
        )
        # The classifier and the dispatcher must tell the same story.
        if verdict is Tractability.FP:
            assert algorithm is not None, format_query(query)
    print()
