"""Legacy setup shim: this offline environment lacks the `wheel` package,
so PEP 660 editable installs cannot build; `pip install -e . --no-use-pep517`
(or `python setup.py develop`) uses this file instead."""
from setuptools import setup

setup()
