"""Tests for non-Boolean queries: answers, supports, best answers
(the Section 7 / future-work extension)."""

from fractions import Fraction

import pytest

from repro.core.query import Atom, BCQ
from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.eval.answers import (
    ConjunctiveQuery,
    answer_reports,
    answers_by_support,
    answers_on,
    best_answers,
    candidate_answers,
    is_better_answer,
)


class TestConjunctiveQuery:
    def test_free_variables_must_occur(self):
        body = BCQ([Atom("R", ["x", "y"])])
        with pytest.raises(ValueError):
            ConjunctiveQuery.make(body, ["z"])
        with pytest.raises(ValueError):
            ConjunctiveQuery.make(body, ["x", "x"])
        query = ConjunctiveQuery.make(body, ["x"])
        assert [v.name for v in query.free] == ["x"]


class TestAnswersOnCompleteDatabase:
    def test_projection(self):
        db = Database(
            [Fact("R", ["a", "b"]), Fact("R", ["a", "c"]), Fact("S", ["b"])]
        )
        query = ConjunctiveQuery.make(
            BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])]), ["x", "y"]
        )
        assert answers_on(query, db) == {("a", "b")}
        head_only = ConjunctiveQuery.make(
            BCQ([Atom("R", ["x", "y"])]), ["x"]
        )
        assert answers_on(head_only, db) == {("a",)}


class TestSupports:
    @pytest.fixture
    def db(self):
        # R(p, ⊥1), R(q, a): answer p supported only when ⊥1 lands right.
        return IncompleteDatabase(
            [Fact("Emp", ["p", Null(1)]), Fact("Emp", ["q", "dbs"])],
            dom={Null(1): ["dbs", "ai", "os"]},
        )

    def _query(self):
        from repro.core.query import Const

        return ConjunctiveQuery.make(
            BCQ([Atom("Emp", ["who", Const("dbs")])]), ["who"]
        )

    def test_candidate_answers(self, db):
        assert candidate_answers(self._query(), db) == {("p",), ("q",)}

    def test_reports(self, db):
        reports = answer_reports(self._query(), db)
        assert reports[("q",)].valuation_support == 3  # certain
        assert reports[("p",)].valuation_support == 1
        assert reports[("q",)].completion_support == 3
        assert reports[("p",)].completion_support == 1

    def test_better_answer_order(self, db):
        reports = answer_reports(self._query(), db)
        assert is_better_answer(reports[("q",)], reports[("p",)])
        assert not is_better_answer(reports[("p",)], reports[("q",)])

    def test_best_answers(self, db):
        assert best_answers(self._query(), db) == [("q",)]

    def test_ranking(self, db):
        ranked = answers_by_support(self._query(), db)
        assert ranked[0] == (("q",), Fraction(1))
        assert ranked[1] == (("p",), Fraction(1, 3))
        by_comp = answers_by_support(self._query(), db, by="completions")
        assert by_comp[0][0] == ("q",)
        with pytest.raises(ValueError):
            answers_by_support(self._query(), db, by="nonsense")


class TestBestAnswerVsSupport:
    def test_incomparable_answers_are_both_best(self):
        """Two answers with incomparable support sets are both best even
        though their supports differ — the Section 7 point that best
        answers ignore support *size*."""
        null = Null(1)
        db = IncompleteDatabase(
            [Fact("R", ["a", null]), Fact("R", ["b", "v1"])],
            dom={null: ["v1", "v2", "v3"]},
        )
        # answers: (a,) supported iff null = v1?  Let's ask who points at v1
        from repro.core.query import Const

        query = ConjunctiveQuery.make(
            BCQ([Atom("R", ["who", Const("v1")])]), ["who"]
        )
        reports = answer_reports(query, db)
        assert reports[("b",)].valuation_support == 3
        assert reports[("a",)].valuation_support == 1
        # (b,) dominates: it is supported everywhere
        assert best_answers(query, db) == [("b",)]

    def test_strictly_incomparable_pair(self):
        n1 = Null(1)
        db = IncompleteDatabase(
            [Fact("R", ["a", n1]), Fact("R", ["b", n1])],
            dom={n1: ["u", "v"]},
        )
        from repro.core.query import Const

        # who maps to u?  'a' and 'b' are supported on exactly the same
        # valuations (they share the null): both best.
        query = ConjunctiveQuery.make(
            BCQ([Atom("R", ["who", Const("u")])]), ["who"]
        )
        assert best_answers(query, db) == [("a",), ("b",)]
