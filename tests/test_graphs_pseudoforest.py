"""Tests for pseudoforests, orientations and bicircular ranks (App. B.4-5)."""

from itertools import combinations

from hypothesis import given, settings

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.pseudoforest import (
    bicircular_rank,
    count_induced_pseudoforests,
    has_outdegree_one_orientation,
    is_pseudoforest_edge_set,
    maximal_pseudoforest_size,
)

from tests.conftest import small_graphs


class TestPseudoforestRecognition:
    def test_forests_are_pseudoforests(self):
        assert is_pseudoforest_edge_set(path_graph(5).edges)
        assert is_pseudoforest_edge_set(star_graph(4).edges)
        assert is_pseudoforest_edge_set([])

    def test_single_cycle_is_pseudoforest(self):
        assert is_pseudoforest_edge_set(cycle_graph(4).edges)

    def test_two_cycles_in_one_component_is_not(self):
        theta = Graph(
            edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]
        )
        assert not is_pseudoforest_edge_set(theta.edges)
        assert not is_pseudoforest_edge_set(complete_graph(4).edges)

    def test_disjoint_cycles_are_pseudoforest(self):
        two_triangles = Graph(
            edges=[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        )
        assert is_pseudoforest_edge_set(two_triangles.edges)

    @given(small_graphs(max_nodes=5))
    @settings(max_examples=40, deadline=None)
    def test_lemma_b4_orientation_criterion(self, graph):
        """Lemma B.4: pseudoforest iff an out-degree-<=1 orientation exists
        — two fully independent implementations must agree on every edge
        subset."""
        edges = graph.edges
        for size in range(len(edges) + 1):
            for subset in combinations(edges, size):
                assert is_pseudoforest_edge_set(subset) == (
                    has_outdegree_one_orientation(subset)
                )


class TestCountPseudoforests:
    def test_small_graphs(self):
        # Every subset of a tree's edges is a pseudoforest.
        assert count_induced_pseudoforests(path_graph(4)) == 8
        assert count_induced_pseudoforests(star_graph(3)) == 8
        # All subsets of a single cycle work too.
        assert count_induced_pseudoforests(cycle_graph(3)) == 8

    def test_k4(self):
        graph = complete_graph(4)
        by_definition = sum(
            1
            for size in range(graph.num_edges + 1)
            for subset in combinations(graph.edges, size)
            if is_pseudoforest_edge_set(subset)
        )
        assert count_induced_pseudoforests(graph) == by_definition


class TestBicircularRank:
    def test_rank_of_tree_is_edge_count(self):
        graph = path_graph(5)
        assert bicircular_rank(graph, graph.edges) == 4

    def test_rank_caps_at_nodes_per_component(self):
        graph = complete_graph(4)  # one component, 4 nodes, 6 edges
        assert bicircular_rank(graph, graph.edges) == 4
        assert maximal_pseudoforest_size(graph) == 4

    def test_rank_of_subset(self):
        graph = complete_graph(4)
        subset = [graph.edges[0]]
        assert bicircular_rank(graph, subset) == 1
        assert bicircular_rank(graph, []) == 0

    def test_rejects_foreign_edges(self):
        graph = path_graph(3)
        import pytest

        with pytest.raises(ValueError):
            bicircular_rank(graph, [(0, 2)])

    @given(small_graphs(max_nodes=5))
    @settings(max_examples=30, deadline=None)
    def test_rank_equals_max_independent_subset(self, graph):
        """rk(A) = size of the largest pseudoforest inside A."""
        edges = graph.edges
        for size in range(min(3, len(edges)) + 1):
            for subset in combinations(edges, size):
                best = 0
                for inner_size in range(len(subset), -1, -1):
                    if any(
                        is_pseudoforest_edge_set(inner)
                        for inner in combinations(subset, inner_size)
                    ):
                        best = inner_size
                        break
                assert bicircular_rank(graph, subset) == best
