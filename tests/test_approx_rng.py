"""Explicit seed/rng threading through the approximation layer."""

import random

import pytest

from repro.approx.fpras import (
    KarpLubyEstimator,
    fpras_count_valuations,
    resolve_rng,
)
from repro.approx.montecarlo import naive_monte_carlo_valuations
from repro.approx.sampler import SatisfyingValuationSampler
from repro.workloads.generators import scaling_hard_val_instance


@pytest.fixture
def instance():
    return scaling_hard_val_instance(5, seed=0)


class TestResolveRng:
    def test_seed_builds_a_generator(self):
        assert resolve_rng(seed=7).random() == random.Random(7).random()

    def test_rng_passes_through(self):
        rng = random.Random(1)
        assert resolve_rng(rng=rng) is rng

    def test_both_is_an_error(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_rng(seed=1, rng=random.Random(1))


class TestReproducibility:
    def test_fpras_seed_reproducible(self, instance):
        db, query = instance
        first = fpras_count_valuations(db, query, epsilon=0.4, seed=5)
        second = fpras_count_valuations(db, query, epsilon=0.4, seed=5)
        assert first == second

    def test_fpras_explicit_rng(self, instance):
        db, query = instance
        seeded = fpras_count_valuations(db, query, epsilon=0.4, seed=9)
        via_rng = fpras_count_valuations(
            db, query, epsilon=0.4, rng=random.Random(9)
        )
        assert seeded == via_rng

    def test_estimator_rejects_seed_and_rng(self, instance):
        db, query = instance
        with pytest.raises(ValueError, match="not both"):
            KarpLubyEstimator(db, query, seed=1, rng=random.Random(1))

    def test_montecarlo_seed_reproducible(self, instance):
        db, query = instance
        first = naive_monte_carlo_valuations(db, query, samples=200, seed=4)
        second = naive_monte_carlo_valuations(db, query, samples=200, seed=4)
        assert first == second

    def test_montecarlo_explicit_rng(self, instance):
        db, query = instance
        seeded = naive_monte_carlo_valuations(db, query, samples=200, seed=4)
        via_rng = naive_monte_carlo_valuations(
            db, query, samples=200, rng=random.Random(4)
        )
        assert seeded == via_rng

    def test_sampler_explicit_rng(self, instance):
        db, query = instance
        seeded = SatisfyingValuationSampler(db, query, seed=2).sample()
        via_rng = SatisfyingValuationSampler(
            db, query, rng=random.Random(2)
        ).sample()
        assert seeded == via_rng
