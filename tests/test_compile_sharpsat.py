"""Tests for the exact model counter and its ordering heuristic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.complexity.cnf import CNF, CNF3, count_models_brute, count_sat
from repro.compile.ordering import (
    branching_order,
    elimination_order,
    primal_graph,
)
from repro.compile.sharpsat import ModelCounter, count_models


@st.composite
def small_cnfs(draw, max_variables: int = 6, max_clauses: int = 8) -> CNF:
    num_variables = draw(st.integers(min_value=1, max_value=max_variables))
    cnf = CNF(num_variables)
    for _ in range(draw(st.integers(min_value=0, max_value=max_clauses))):
        width = draw(st.integers(min_value=1, max_value=3))
        literals = [
            draw(st.integers(min_value=1, max_value=num_variables))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(width)
        ]
        cnf.add_clause(literals)
    return cnf


class TestCountModels:
    def test_empty_formula_counts_assignments(self):
        assert count_models(CNF(0)) == 1
        assert count_models(CNF(3)) == 8  # three unconstrained variables

    def test_empty_clause_is_unsatisfiable(self):
        cnf = CNF(2)
        cnf.add_clause([])
        assert count_models(cnf) == 0

    def test_unit_clauses(self):
        cnf = CNF(3, [(1,), (-2,)])
        assert count_models(cnf) == 2  # variable 3 free

    def test_exactly_one_block(self):
        cnf = CNF(4)
        cnf.add_exactly_one([1, 2, 3, 4])
        assert count_models(cnf) == 4

    def test_disconnected_components_multiply(self):
        cnf = CNF(4, [(1, 2), (3, 4)])
        assert count_models(cnf) == 9

    def test_xor_chain(self):
        # (x1 xor x2)(x2 xor x3): 2 models
        cnf = CNF(3, [(1, 2), (-1, -2), (2, 3), (-2, -3)])
        assert count_models(cnf) == 2

    @given(small_cnfs())
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_enumeration(self, cnf):
        assert count_models(cnf) == count_models_brute(cnf)

    @given(small_cnfs(), st.data())
    @settings(max_examples=120, deadline=None)
    def test_projected_matches_brute_enumeration(self, cnf, data):
        projection = data.draw(
            st.sets(
                st.integers(min_value=1, max_value=cnf.num_variables),
            )
        )
        assert count_models(cnf, projection=projection) == (
            count_models_brute(cnf, projection=projection)
        )

    def test_projection_counts_distinct_restrictions(self):
        # x1 -> x2: models (F,F),(F,T),(T,T); projections on x1: {F,T}
        cnf = CNF(2, [(-1, 2)])
        assert count_models(cnf) == 3
        assert count_models(cnf, projection=[1]) == 2
        assert count_models(cnf, projection=[2]) == 2
        assert count_models(cnf, projection=[]) == 1

    def test_projection_of_unsatisfiable_is_zero(self):
        cnf = CNF(2, [(1,), (-1,)])
        assert count_models(cnf, projection=[2]) == 0

    def test_projection_validation(self):
        with pytest.raises(ValueError):
            count_models(CNF(2), projection=[5])

    def test_agrees_with_3cnf_counter(self):
        formula = CNF3.from_literals(
            4, [(1, -2, 3), (-1, 2, -4), (2, 3, 4), (-2, -3, -4)]
        )
        assert count_models(formula.to_cnf()) == count_sat(formula)

    def test_component_statistics_exposed(self):
        counter = ModelCounter(CNF(4, [(1, 2), (3, 4)]))
        assert counter.count() == 9
        assert counter.components_split >= 1

    def test_large_bounded_width_instance(self):
        # A 60-variable chain: brute would enumerate 2^60 assignments.
        cnf = CNF(60)
        for v in range(1, 60):
            cnf.add_clause((-v, -(v + 1)))
        # Independent sets of a 60-path: Fibonacci(62).
        assert count_models(cnf) == 4052739537881


class TestReferenceParity:
    """The trail core agrees bit for bit with the retained tuple core."""

    @given(small_cnfs())
    @settings(max_examples=120, deadline=None)
    def test_full_counts_match_reference(self, cnf):
        assert count_models(cnf) == count_models(cnf, reference=True)

    @given(small_cnfs(), st.data())
    @settings(max_examples=120, deadline=None)
    def test_projected_counts_match_reference(self, cnf, data):
        projection = data.draw(
            st.sets(st.integers(min_value=1, max_value=cnf.num_variables))
        )
        assert count_models(cnf, projection=projection) == count_models(
            cnf, projection=projection, reference=True
        )

    def test_reference_flag_surfaces_statistics(self):
        cnf = CNF(4, [(1, 2), (3, 4)])
        counter = ModelCounter(cnf, reference=True)
        assert counter.count() == 9
        assert counter.components_split >= 1
        assert counter.width is not None


class TestOrdering:
    def test_primal_graph_of_chain(self):
        cnf = CNF(3, [(1, 2), (2, 3)])
        graph = primal_graph(cnf)
        assert graph == {1: {2}, 2: {1, 3}, 3: {2}}

    def test_path_has_width_one(self):
        cnf = CNF(5, [(v, v + 1) for v in range(1, 5)])
        _order, width = elimination_order(primal_graph(cnf))
        assert width == 1

    def test_cycle_has_width_two(self):
        cnf = CNF(5, [(v, v + 1) for v in range(1, 5)] + [(5, 1)])
        _order, width = elimination_order(primal_graph(cnf))
        assert width == 2

    def test_branching_order_covers_constrained_variables(self):
        cnf = CNF(6, [(1, 2), (2, 3), (5, 6)])  # variable 4 unconstrained
        order, _width = branching_order(cnf)
        assert sorted(order) == [1, 2, 3, 5, 6]

    def test_min_degree_fallback_same_width_on_path(self):
        cnf = CNF(5, [(v, v + 1) for v in range(1, 5)])
        _order, width = elimination_order(
            primal_graph(cnf), use_min_fill=False
        )
        assert width == 1
