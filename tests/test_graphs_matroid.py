"""Tests for bicircular matroids and the Tutte-polynomial identities that
power the #PF hardness transfer (Appendix B.5)."""

from fractions import Fraction

from hypothesis import given, settings

from repro.graphs.avoidance import k_stretch
from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.graphs.matroid import BicircularMatroid, independence_axioms_hold
from repro.graphs.pseudoforest import (
    count_induced_pseudoforests,
    maximal_pseudoforest_size,
)

from tests.conftest import small_graphs


class TestMatroidAxioms:
    @given(small_graphs(max_nodes=5))
    @settings(max_examples=15, deadline=None)
    def test_bicircular_is_a_matroid(self, graph):
        """Definition B.9 claims (E, pseudoforests) is a matroid; check the
        three axioms of Definition B.6 exhaustively on small graphs."""
        if graph.num_edges > 6:
            return
        assert independence_axioms_hold(BicircularMatroid(graph))


class TestTutte:
    def test_observation_b8(self):
        """T(B(G); 2, 1) counts independent sets, i.e. equals #PF(G)."""
        for graph in (path_graph(4), cycle_graph(4), complete_graph(4)):
            matroid = BicircularMatroid(graph)
            assert matroid.tutte_polynomial(2, 1) == Fraction(
                count_induced_pseudoforests(graph)
            )
            assert matroid.tutte_polynomial(2, 1) == Fraction(
                matroid.count_independent_sets()
            )

    def test_rank_accessors(self):
        matroid = BicircularMatroid(complete_graph(4))
        assert matroid.full_rank == 4
        assert matroid.rank([]) == 0
        assert matroid.is_independent([])

    def test_k_stretch_identity(self):
        """The Brylawski identity of Appendix B.5:

        T(B(s_k(G)); 2, 1) = (2^k - 1)^{|E| - rk(E)} * T(B(G); 2^k, 1).
        """
        for graph in (cycle_graph(3), complete_graph(3)):
            edges = graph.num_edges
            rank = maximal_pseudoforest_size(graph)
            base = BicircularMatroid(graph)
            for k in (2, 3):
                stretched = k_stretch(graph, k)
                stretched_value = BicircularMatroid(
                    stretched
                ).tutte_polynomial(2, 1)
                predicted = (2**k - 1) ** (edges - rank) * base.tutte_polynomial(
                    2**k, 1
                )
                assert stretched_value == predicted

    def test_even_stretch_is_bipartite(self):
        """The final step of Prop. B.5: s_k(G) is bipartite for even k."""
        for graph in (complete_graph(4), cycle_graph(5)):
            assert k_stretch(graph, 2).is_bipartite()
            assert k_stretch(graph, 4).is_bipartite()

    def test_one_stretch_is_identity(self):
        graph = cycle_graph(4)
        stretched = k_stretch(graph, 1)
        assert sorted(map(sorted, stretched.edges)) == sorted(
            map(sorted, graph.edges)
        )
