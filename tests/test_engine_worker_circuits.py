"""Worker-compiled circuit artifacts in the batch engine.

PR 3 ran every circuit-backed job serially in the parent so the jobs could
share one circuit store.  Now the first job of each unique, not-yet-cached
instance compiles in a worker, ships its serialized circuit home, and the
parent installs the artifact — so distinct instances compile in parallel
while follow-up questions still amortize over the installed circuits, and
``--cache-mb`` eviction still drops a circuit together with its linked
memo entries.
"""

from __future__ import annotations

from repro.compile.backend import ValuationCircuit
from repro.engine import BatchEngine, CountCache, CountJob
from repro.engine.jobs import instance_fingerprint_of
from repro.workloads.generators import scaling_hard_val_instance


def _weights_for(db):
    return {
        null: {
            value: 1 + (index + position) % 3
            for position, value in enumerate(
                sorted(db.domain_of(null), key=repr)
            )
        }
        for index, null in enumerate(db.nulls)
    }


def _distinct_circuit_jobs(sizes=(8, 9, 10, 11)):
    jobs = []
    for size in sizes:
        db, query = scaling_hard_val_instance(size, seed=size)
        jobs.append(
            CountJob("val", db, query, method="circuit",
                     label="val-%d" % size)
        )
        jobs.append(
            CountJob("val-weighted", db, query, weights=_weights_for(db),
                     label="weighted-%d" % size)
        )
        jobs.append(
            CountJob("marginals", db, query, label="marginals-%d" % size)
        )
    return jobs


class TestWorkerCompiledCircuits:
    def test_answers_bit_identical_to_serial_in_parent(self):
        jobs = _distinct_circuit_jobs()
        serial = BatchEngine(workers=0).run(jobs)
        parallel = BatchEngine(workers=2).run(jobs)
        assert all(result.ok for result in serial)
        assert all(result.ok for result in parallel)
        for serial_result, parallel_result in zip(serial, parallel):
            assert serial_result.count == parallel_result.count, (
                serial_result.label
            )

    def test_artifacts_installed_and_amortized(self):
        jobs = _distinct_circuit_jobs()
        engine = BatchEngine(workers=2)
        results = engine.run(jobs)
        stats = engine.cache.stats()
        # One circuit per unique instance, every one compiled in a worker.
        assert stats["circuits"] == 4
        assert stats["worker_circuits"] == 4
        # The first job of each instance records the worker compile...
        compiled_in_worker = [
            result for result in results
            if result.meta.get("compiled_in_worker")
        ]
        assert len(compiled_in_worker) == 4
        # ...and no artifact bytes linger once installed.
        assert all(result.artifact is None for result in results)
        # Follow-up questions ran in the parent against the installed
        # circuits instead of recompiling.
        assert stats["circuit_hits"] >= 8

    def test_second_batch_served_from_memo(self):
        jobs = _distinct_circuit_jobs(sizes=(8, 9))
        engine = BatchEngine(workers=2)
        engine.run(jobs)
        again = engine.run(jobs)
        assert all(result.cache_hit for result in again)

    def test_worker_artifact_matches_parent_compile(self):
        db, query = scaling_hard_val_instance(9, seed=9)
        job = CountJob("marginals", db, query, label="m")
        engine = BatchEngine(workers=2)
        # Two distinct circuit jobs so the pool path actually engages.
        other_db, other_query = scaling_hard_val_instance(10, seed=10)
        engine.run([job, CountJob("marginals", other_db, other_query)])
        installed = engine.cache.get_circuit(instance_fingerprint_of(job))
        assert installed is not None
        reference = ValuationCircuit(db, query)
        assert installed.count() == reference.count()
        assert installed.marginals() == reference.marginals()
        # The installed artifact is accounted at its exact wire size.
        assert installed.memory_bytes() > 0

    def test_eviction_drops_worker_circuit_with_linked_memo(self):
        jobs = _distinct_circuit_jobs()
        # Tight bound: each circuit fits alone (structural estimates run
        # ~15-23 KiB here) but no two fit together.
        bound = 25_000
        cache = CountCache(max_circuit_bytes=bound)
        engine = BatchEngine(workers=2, cache=cache)
        results = engine.run(jobs)
        assert all(result.ok for result in results)
        stats = cache.stats()
        assert stats["circuit_bytes"] <= bound
        assert stats["circuit_evictions"] > 0
        # The coherence invariant: every linked memo entry's circuit is
        # still resident — an evicted circuit took its answers with it.
        for fingerprint, instance in cache._entry_instance.items():
            assert cache.has_circuit(instance)
            assert fingerprint in cache._entries

    def test_duplicate_instances_compile_once(self):
        db, query = scaling_hard_val_instance(9, seed=3)
        jobs = [
            CountJob("val", db, query, method="circuit", label="a"),
            CountJob("val-weighted", db, query,
                     weights=_weights_for(db), label="b"),
            CountJob("marginals", db, query, label="c"),
        ]
        # A second distinct instance keeps the pool path engaged.
        other_db, other_query = scaling_hard_val_instance(10, seed=4)
        jobs.append(CountJob("marginals", other_db, other_query, label="d"))
        engine = BatchEngine(workers=4)
        results = engine.run(jobs)
        assert all(result.ok for result in results)
        # Two unique instances -> exactly two compiles, both in workers.
        assert engine.cache.stats()["worker_circuits"] == 2


class TestSerialFallbackMetadata:
    def test_unpicklable_job_records_fallback_reason(self):
        from repro.core.query import CustomQuery

        db, query = scaling_hard_val_instance(8, seed=1)
        opaque = CustomQuery("tiny", ["R"], lambda database: True)
        db2, query2 = scaling_hard_val_instance(9, seed=2)
        jobs = [
            CountJob("val", db, opaque, budget=None, label="opaque"),
            CountJob("val", db, query, label="plain-1"),
            CountJob("val", db2, query2, label="plain-2"),
        ]
        engine = BatchEngine(workers=2)
        results = engine.run(jobs)
        assert all(result.ok for result in results)
        by_label = {result.label: result for result in results}
        assert "fallback" in by_label["opaque"].meta
        assert "parent" in by_label["opaque"].meta["fallback"]
        assert "fallback" not in by_label["plain-1"].meta
        # The fallback reason survives into the JSONL record.
        assert by_label["opaque"].to_dict()["meta"]["fallback"]

    def test_meta_of_clean_results_carries_only_metrics(self):
        db, query = scaling_hard_val_instance(8, seed=1)
        engine = BatchEngine(workers=0)
        (result,) = engine.run([CountJob("val", db, query)])
        # No fallback/artifact provenance on a clean serial solve; the
        # observability payload is the only meta key.
        assert set(result.meta) <= {"metrics"}
        assert "fallback" not in result.meta
