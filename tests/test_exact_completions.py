"""Theorem 4.6 completion counting + Lemma B.2 certificates + warm-ups."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.query import Atom, BCQ
from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import iter_completions
from repro.exact.brute import count_completions_brute
from repro.exact.comp_uniform import (
    applies_to,
    count_completions_single_unary,
    count_completions_uniform_unary,
)
from repro.exact.completion_check import is_completion_of_codd
from repro.util.combinatorics import binomial

from tests.conftest import small_incomplete_dbs


class TestApplicability:
    def test_unary_only(self):
        assert applies_to(BCQ([Atom("R", ["x"]), Atom("S", ["x"])]))
        assert not applies_to(BCQ([Atom("R", ["x", "y"])]))
        assert not applies_to(BCQ([Atom("R", ["x", "x"])]))


class TestWarmUps:
    """The worked warm-up examples of Appendix B.6."""

    def test_warmup1_no_constants(self):
        """B.6.1: D = {R(⊥1..⊥n)}: sum_{1<=i<=n} C(d, i) completions."""
        d, n = 5, 3
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null(i)]) for i in range(n)], range(d)
        )
        expected = sum(binomial(d, i) for i in range(1, n + 1))
        assert count_completions_single_unary(db) == expected
        assert count_completions_uniform_unary(db, None) == expected
        assert count_completions_brute(db, None) == expected

    def test_warmup1_empty_table(self):
        db = IncompleteDatabase.uniform([], ["a", "b"])
        assert count_completions_uniform_unary(db, None) == 1

    def test_warmup2_with_constants(self):
        """B.6.2: c in-domain constants shift the sum to start at 0."""
        d, c, n = 5, 2, 2
        facts = [Fact("R", ["k%d" % i]) for i in range(c)]
        facts += [Fact("R", [Null(i)]) for i in range(n)]
        db = IncompleteDatabase.uniform(
            facts, ["k0", "k1", "x0", "x1", "x2"]
        )
        expected = sum(binomial(d - c, i) for i in range(0, n + 1))
        assert count_completions_single_unary(db) == expected
        assert count_completions_brute(db, None) == expected

    def test_out_of_domain_constants_dont_change_count(self):
        base = IncompleteDatabase.uniform(
            [Fact("R", [Null(0)])], ["a", "b"]
        )
        extended = IncompleteDatabase.uniform(
            [Fact("R", [Null(0)]), Fact("R", ["zzz"])], ["a", "b"]
        )
        assert count_completions_single_unary(
            base
        ) == count_completions_single_unary(extended)

    def test_single_unary_guards(self):
        with pytest.raises(ValueError):
            count_completions_single_unary(
                IncompleteDatabase(
                    [Fact("R", [Null(0)])], dom={Null(0): ["a"]}
                )
            )
        with pytest.raises(ValueError):
            count_completions_single_unary(
                IncompleteDatabase.uniform(
                    [Fact("R", ["a"]), Fact("S", ["a"])], ["a"]
                )
            )


class TestUniformUnary:
    QUERY = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])

    def test_rejects_binary_schema(self):
        db = IncompleteDatabase.uniform([Fact("R", ["a", "b"])], ["a"])
        with pytest.raises(ValueError):
            count_completions_uniform_unary(db, None)

    def test_rejects_hard_query(self):
        db = IncompleteDatabase.uniform([Fact("R", ["a"])], ["a"])
        with pytest.raises(ValueError):
            count_completions_uniform_unary(
                db, BCQ([Atom("R", ["x", "y"])])
            )

    def test_empty_query_relation_gives_zero(self):
        db = IncompleteDatabase.uniform([Fact("R", ["a"])], ["a"])
        assert count_completions_uniform_unary(db, self.QUERY) == 0

    @given(
        small_incomplete_dbs(schema={"R": 1, "S": 1}, uniform=True),
        st.sampled_from(
            [
                None,
                BCQ([Atom("R", ["x"]), Atom("S", ["x"])]),
                BCQ([Atom("R", ["x"]), Atom("S", ["y"])]),
                BCQ([Atom("R", ["x"])]),
            ]
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, db, query):
        assert count_completions_uniform_unary(
            db, query
        ) == count_completions_brute(db, query)

    def test_shared_nulls_across_relations(self):
        """Naive-table case: one null occurring in both R and S."""
        shared = Null("shared")
        db = IncompleteDatabase.uniform(
            [Fact("R", [shared]), Fact("S", [shared]), Fact("S", [Null(2)])],
            ["a", "b", "c"],
        )
        assert count_completions_uniform_unary(
            db, self.QUERY
        ) == count_completions_brute(db, self.QUERY)


class TestLemmaB2:
    """Completion recognition for Codd tables via bipartite matching."""

    @pytest.fixture
    def db(self):
        return IncompleteDatabase(
            [Fact("R", [Null(1), "a"]), Fact("R", ["b", Null(2)])],
            dom={Null(1): ["a", "b"], Null(2): ["a", "c"]},
        )

    def test_accepts_actual_completions(self, db):
        for completion in iter_completions(db):
            assert is_completion_of_codd(db, completion)

    def test_rejects_non_completions(self, db):
        # wrong fact entirely
        assert not is_completion_of_codd(
            db, Database([Fact("R", ["z", "z"])])
        )
        # subset of a completion is not a completion (facts can only merge)
        assert not is_completion_of_codd(db, Database())
        # superset with an unreachable fact
        assert not is_completion_of_codd(
            db,
            Database(
                [
                    Fact("R", ["a", "a"]),
                    Fact("R", ["b", "a"]),
                    Fact("R", ["b", "c"]),
                ]
            ),
        )

    def test_requires_codd(self):
        shared = Null(1)
        naive = IncompleteDatabase.uniform(
            [Fact("R", [shared]), Fact("S", [shared])], ["a"]
        )
        with pytest.raises(ValueError):
            is_completion_of_codd(naive, Database())

    @given(small_incomplete_dbs(codd=True))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_enumeration(self, db):
        """The matching-based check accepts exactly the enumerated
        completions (and rejects mutations of them)."""
        completions = set(iter_completions(db))
        for completion in completions:
            assert is_completion_of_codd(db, completion)
        # mutate: drop one fact from some completion
        for completion in list(completions)[:3]:
            facts = sorted(completion.facts)
            if len(facts) >= 1:
                mutated = Database(facts[1:])
                assert is_completion_of_codd(db, mutated) == (
                    mutated in completions
                )
