"""Tests for lineage compilation and the CNF encodings of #Val / #Comp."""

import pytest

from repro.compile import (
    LineageUnsupportedQuery,
    compile_completion_cnf,
    compile_valuation_cnf,
    count_completions_lineage,
    count_valuations_lineage,
    enumerate_valuation_matches,
    explain_completions,
    explain_valuations,
)
from repro.compile.variables import instantiations
from repro.core.query import Atom, BCQ, Const, CustomQuery, Negation, UCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute, count_valuations_brute


def _figure1_db():
    n1, n2 = Null(1), Null(2)
    facts = [Fact("S", ["a", "b"]), Fact("S", [n1, "a"]), Fact("S", ["a", n2])]
    return IncompleteDatabase(facts, dom={n1: ["a", "b", "c"], n2: ["a", "b"]})


class TestValuationMatches:
    def test_single_atom_matches(self):
        n1 = Null(1)
        db = IncompleteDatabase([Fact("R", [n1])], dom={n1: ["a", "b"]})
        matches = enumerate_valuation_matches(db, BCQ([Atom("R", ["x"])]))
        assert set(matches) == {
            frozenset({(n1, "a")}),
            frozenset({(n1, "b")}),
        }

    def test_ground_witness_collapses_to_true(self):
        n1 = Null(1)
        db = IncompleteDatabase(
            [Fact("R", ["a"]), Fact("R", [n1])], dom={n1: ["a", "b"]}
        )
        # R(x) is witnessed by the ground fact under every valuation.
        assert enumerate_valuation_matches(db, BCQ([Atom("R", ["x"])])) == [
            frozenset()
        ]

    def test_repeated_variable_requires_equal_values(self):
        n1, n2 = Null(1), Null(2)
        db = IncompleteDatabase(
            [Fact("R", [n1, n2])], dom={n1: ["a", "b"], n2: ["b", "c"]}
        )
        matches = enumerate_valuation_matches(db, BCQ([Atom("R", ["x", "x"])]))
        assert matches == [frozenset({(n1, "b"), (n2, "b")})]

    def test_constant_in_query_restricts_domain(self):
        n1 = Null(1)
        db = IncompleteDatabase([Fact("R", [n1])], dom={n1: ["a", "b"]})
        matches = enumerate_valuation_matches(
            db, BCQ([Atom("R", [Const("a")])])
        )
        assert matches == [frozenset({(n1, "a")})]

    def test_out_of_domain_constant_has_no_match(self):
        n1 = Null(1)
        db = IncompleteDatabase([Fact("R", [n1])], dom={n1: ["a", "b"]})
        assert enumerate_valuation_matches(
            db, BCQ([Atom("R", [Const("z")])])
        ) == []

    def test_absorption_drops_redundant_matches(self):
        n1, n2 = Null(1), Null(2)
        db = IncompleteDatabase(
            [Fact("R", [n1]), Fact("R", [n2]), Fact("S", [n1])],
            dom={n1: ["a"], n2: ["a", "b"]},
        )
        # R(x) matches via n1 with the single condition n1=a, which absorbs
        # every larger match; S(y) adds nothing new (n1=a again).
        matches = enumerate_valuation_matches(
            db, BCQ([Atom("R", ["x"]), Atom("S", ["y"])])
        )
        assert matches == [frozenset({(n1, "a")})]

    def test_unsupported_queries_raise(self):
        db = _figure1_db()
        with pytest.raises(LineageUnsupportedQuery):
            enumerate_valuation_matches(db, Negation(BCQ([Atom("S", ["x", "y"])])))
        with pytest.raises(LineageUnsupportedQuery):
            count_valuations_lineage(
                db, CustomQuery("always", ["S"], lambda _db: True)
            )


class TestValuationEncoding:
    def test_figure1_example(self):
        db = _figure1_db()
        query = BCQ([Atom("S", ["x", "x"])])
        assert count_valuations_lineage(db, query) == (
            count_valuations_brute(db, query)
        )

    def test_trivially_true_query(self):
        n1 = Null(1)
        db = IncompleteDatabase(
            [Fact("R", ["a", "b"]), Fact("R", [n1, "c"])],
            dom={n1: ["a", "b"]},
        )
        query = BCQ([Atom("R", ["x", "y"])])
        encoding = compile_valuation_cnf(db, query)
        assert encoding.trivially_true
        assert count_valuations_lineage(db, query) == 2

    def test_unsatisfiable_query_counts_zero(self):
        n1 = Null(1)
        db = IncompleteDatabase([Fact("R", [n1])], dom={n1: ["a"]})
        assert count_valuations_lineage(db, BCQ([Atom("T", ["x"])])) == 0
        # arity mismatch can never match either
        assert count_valuations_lineage(db, BCQ([Atom("R", ["x", "y"])])) == 0

    def test_ground_database(self):
        db = IncompleteDatabase.uniform([Fact("R", ["a"])], ["a", "b"])
        assert count_valuations_lineage(db, BCQ([Atom("R", ["x"])])) == 1
        assert count_valuations_lineage(db, BCQ([Atom("S", ["x"])])) == 0

    def test_empty_domain_counts_zero(self):
        n1 = Null(1)
        db = IncompleteDatabase([Fact("R", [n1])], dom={n1: []})
        assert count_valuations_lineage(db, BCQ([Atom("R", ["x"])])) == 0

    def test_ucq_and_self_join(self):
        n1, n2 = Null(1), Null(2)
        db = IncompleteDatabase(
            [Fact("R", [n1, n2]), Fact("R", [n2, "a"])],
            dom={n1: ["a", "b"], n2: ["a", "b", "c"]},
        )
        for query in (
            UCQ([BCQ([Atom("R", ["x", "x"])]), BCQ([Atom("R", ["x", "a"])])]),
            BCQ([Atom("R", ["x", "y"]), Atom("R", ["y", "z"])]),
        ):
            assert count_valuations_lineage(db, query) == (
                count_valuations_brute(db, query)
            )

    def test_explain_reports_sizes(self):
        db = _figure1_db()
        report = explain_valuations(db, BCQ([Atom("S", ["x", "x"])]))
        assert report.mode == "val"
        assert report.count == count_valuations_brute(
            db, BCQ([Atom("S", ["x", "x"])])
        )
        assert report.num_variables == 5  # |dom(n1)| + |dom(n2)|
        assert report.num_clauses > 0


class TestCompletionEncoding:
    def test_potential_fact_instantiations(self):
        n1 = Null(1)
        fact = Fact("R", [n1, n1, "c"])
        db = IncompleteDatabase([fact], dom={n1: ["a", "b"]})
        grounded = dict(instantiations(fact, db))
        # The repeated null is substituted consistently.
        assert set(grounded) == {
            Fact("R", ["a", "a", "c"]),
            Fact("R", ["b", "b", "c"]),
        }

    def test_figure1_completions(self):
        db = _figure1_db()
        query = BCQ([Atom("S", ["x", "x"])])
        assert count_completions_lineage(db, None) == (
            count_completions_brute(db, None)
        )
        assert count_completions_lineage(db, query) == (
            count_completions_brute(db, query)
        )

    def test_collapsing_valuations_counted_once(self):
        # Two nulls over the same unary relation and domain: 4 valuations
        # but only 3 distinct completions ({a}, {b}, {a,b}).
        n1, n2 = Null(1), Null(2)
        db = IncompleteDatabase(
            [Fact("R", [n1]), Fact("R", [n2])],
            dom={n1: ["a", "b"], n2: ["a", "b"]},
        )
        assert count_completions_lineage(db, None) == 3

    def test_ground_database_has_one_completion(self):
        db = IncompleteDatabase.uniform([Fact("R", ["a"])], ["a", "b"])
        assert count_completions_lineage(db, None) == 1
        assert count_completions_lineage(db, BCQ([Atom("R", ["x"])])) == 1
        assert count_completions_lineage(db, BCQ([Atom("S", ["x"])])) == 0

    def test_projection_is_over_fact_variables(self):
        db = _figure1_db()
        encoding = compile_completion_cnf(db, None)
        assert encoding.projection == frozenset(encoding.facts.variables())
        assert len(encoding.facts) > 0

    def test_explain_reports_projected_mode(self):
        db = _figure1_db()
        report = explain_completions(db, None)
        assert report.mode == "comp"
        assert report.count == count_completions_brute(db, None)
