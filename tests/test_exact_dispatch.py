"""Tests for the front-door dispatcher (algorithm selection)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute, count_valuations_brute
from repro.exact.dispatch import (
    NoPolynomialAlgorithm,
    count_completions,
    count_valuations,
    select_completion_algorithm,
    select_valuation_algorithm,
)

from tests.conftest import small_incomplete_dbs


def _codd_db():
    return IncompleteDatabase(
        [Fact("R", [Null(1), Null(2)])],
        dom={Null(1): ["a", "b"], Null(2): ["a"]},
    )


def _uniform_db():
    return IncompleteDatabase.uniform(
        [Fact("R", [Null(1)]), Fact("S", [Null(1)]), Fact("S", ["a"])],
        ["a", "b"],
    )


class TestSelection:
    def test_single_occurrence_selected_anywhere(self):
        query = BCQ([Atom("R", ["x", "y"])])
        assert select_valuation_algorithm(_codd_db(), query) == (
            "single-occurrence"
        )

    def test_codd_selected(self):
        query = BCQ([Atom("R", ["x", "x"])])
        assert select_valuation_algorithm(_codd_db(), query) == "codd"

    def test_uniform_selected(self):
        query = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
        assert select_valuation_algorithm(_uniform_db(), query) == "uniform"

    def test_hard_cell_has_no_algorithm(self):
        query = BCQ([Atom("R", ["x", "x"])])
        naive_nonuniform = IncompleteDatabase(
            [Fact("R", [Null(1), Null(1)])], dom={Null(1): ["a", "b"]}
        )
        assert select_valuation_algorithm(naive_nonuniform, query) is None

    def test_completion_selection(self):
        assert select_completion_algorithm(_uniform_db(), None) == (
            "uniform-unary"
        )
        binary = IncompleteDatabase.uniform([Fact("R", ["a", "b"])], ["a"])
        assert select_completion_algorithm(binary, None) is None
        assert select_completion_algorithm(_codd_db(), None) is None


class TestCountValuations:
    def test_poly_raises_on_hard_cell(self):
        query = BCQ([Atom("R", ["x", "x"])])
        db = IncompleteDatabase(
            [Fact("R", [Null(1), Null(1)])], dom={Null(1): ["a", "b"]}
        )
        with pytest.raises(NoPolynomialAlgorithm):
            count_valuations(db, query, method="poly")
        # but auto falls back to brute force
        assert count_valuations(db, query) == count_valuations_brute(db, query)

    def test_method_validation(self):
        with pytest.raises(ValueError):
            count_valuations(_codd_db(), BCQ([Atom("R", ["x", "y"])]),
                             method="warp")

    def test_forced_methods_agree(self):
        query = BCQ([Atom("R", ["x", "x"])])
        db = _codd_db()
        brute = count_valuations(db, query, method="brute")
        codd = count_valuations(db, query, method="codd")
        assert brute == codd

    @given(small_incomplete_dbs())
    @settings(max_examples=40, deadline=None)
    def test_auto_always_matches_brute(self, db):
        queries = [
            BCQ([Atom(r, ["x"] * a) for r, a in sorted(db.schema().items())])
        ] if db.schema() else []
        for query in queries:
            if not query.is_self_join_free:
                continue
            assert count_valuations(db, query) == count_valuations_brute(
                db, query
            )


class TestCountCompletions:
    def test_auto_uses_poly_on_uniform_unary(self):
        db = _uniform_db()
        query = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
        assert count_completions(db, query) == count_completions_brute(
            db, query
        )
        assert count_completions(db, None) == count_completions_brute(db, None)

    def test_poly_raises_on_hard_cell(self):
        db = _codd_db()
        with pytest.raises(NoPolynomialAlgorithm):
            count_completions(db, None, method="poly")

    def test_poly_succeeds_on_tractable_cell(self):
        db = _uniform_db()
        assert count_completions(db, None, method="poly") == (
            count_completions_brute(db, None)
        )

    def test_method_validation(self):
        with pytest.raises(ValueError):
            count_completions(_uniform_db(), None, method="nope")
