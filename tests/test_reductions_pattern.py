"""Tests for the executable pattern reductions (Lemmas 3.3 and 4.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.patterns import PATTERN_REPEAT, PATTERN_SHARED
from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import count_total_valuations
from repro.exact.brute import count_completions_brute, count_valuations_brute
from repro.reductions.pattern import transfer_database


CASES = [
    (BCQ([Atom("P1", ["x"])]), BCQ([Atom("R", ["x", "y"])])),
    (
        BCQ([Atom("P1", ["x"]), Atom("P2", ["x"])]),
        BCQ([Atom("R", ["x", "y"]), Atom("S", ["x"]), Atom("T", ["z"])]),
    ),
    (BCQ([Atom("P1", ["x", "x"])]), BCQ([Atom("R", ["x", "u", "x"])])),
    (BCQ([Atom("P1", ["x", "y"])]), BCQ([Atom("R", ["y", "x", "z"])])),
    (
        BCQ([Atom("P1", ["x", "y"]), Atom("P2", ["y"])]),
        BCQ([Atom("R", ["a", "x", "y"]), Atom("S", ["y", "b"])]),
    ),
]


@st.composite
def pattern_db(draw, pattern):
    constants = ["a", "b", "c"]
    nulls = [Null("n%d" % i) for i in range(draw(st.integers(1, 3)))]
    facts = []
    for atom in pattern.atoms:
        for _ in range(draw(st.integers(1, 2))):
            terms = [
                draw(st.sampled_from(nulls))
                if draw(st.booleans())
                else draw(st.sampled_from(constants))
                for _ in range(atom.arity)
            ]
            facts.append(Fact(atom.relation, terms))
    used = set()
    for fact in facts:
        used |= fact.nulls()
    if draw(st.booleans()):
        return IncompleteDatabase.uniform(facts, constants)
    dom = {
        null: constants[: draw(st.integers(1, 3))] for null in sorted(used)
    }
    return IncompleteDatabase(facts, dom=dom)


class TestLemma33:
    @given(st.sampled_from(CASES), st.data())
    @settings(max_examples=60, deadline=None)
    def test_valuation_count_preserved(self, case, data):
        pattern, query = case
        source = data.draw(pattern_db(pattern))
        target = transfer_database(pattern, query, source)
        assert count_valuations_brute(
            source, pattern
        ) == count_valuations_brute(target, query)

    @given(st.sampled_from(CASES), st.data())
    @settings(max_examples=30, deadline=None)
    def test_same_nulls_and_domains(self, case, data):
        """The construction keeps the nulls and domains of D' untouched."""
        pattern, query = case
        source = data.draw(pattern_db(pattern))
        target = transfer_database(pattern, query, source)
        assert set(target.nulls) == set(source.nulls)
        assert count_total_valuations(target) == count_total_valuations(
            source
        )
        for null in source.nulls:
            assert target.domain_of(null) == source.domain_of(null)


class TestLemma41:
    @given(st.sampled_from(CASES), st.data())
    @settings(max_examples=40, deadline=None)
    def test_completion_count_preserved(self, case, data):
        pattern, query = case
        source = data.draw(pattern_db(pattern))
        target = transfer_database(pattern, query, source)
        assert count_completions_brute(
            source, pattern
        ) == count_completions_brute(target, query)


class TestGuards:
    def test_rejects_non_pattern(self):
        with pytest.raises(ValueError):
            transfer_database(
                PATTERN_REPEAT,
                BCQ([Atom("R", ["x", "y"])]),
                IncompleteDatabase.uniform(
                    [Fact("P1", [Null(1), Null(1)])], ["a"]
                ),
            )

    def test_rejects_stray_relations(self):
        source = IncompleteDatabase.uniform(
            [Fact("P1", [Null(1)]), Fact("ZZ", ["a"])], ["a"]
        )
        with pytest.raises(ValueError):
            transfer_database(
                BCQ([Atom("P1", ["x"])]),
                BCQ([Atom("R", ["x", "y"])]),
                source,
            )

    def test_hardness_transfer_composition(self):
        """Prop. 3.4 + Lemma 3.3 in one pipeline: 3-coloring hardness lifts
        from R(x,x) to any query containing it, e.g. R(x,x) ∧ S(u)."""
        from repro.graphs.counting import count_colorings
        from repro.graphs.generators import cycle_graph
        from repro.reductions.coloring import build_three_coloring_db

        graph = cycle_graph(4)
        base_db = build_three_coloring_db(graph)
        pattern = BCQ([Atom("R", ["x", "x"])])
        query = BCQ([Atom("R", ["x", "x"]), Atom("S", ["u"])])
        lifted = transfer_database(pattern, query, base_db)
        total = count_total_valuations(lifted)
        satisfying = count_valuations_brute(lifted, query)
        assert total - satisfying == count_colorings(graph, 3)
