"""Tests for the FPRAS (Cor. 5.3) and the Monte-Carlo baseline."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.query import Atom, BCQ, Const, UCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import iter_valuations
from repro.exact.brute import count_valuations_brute
from repro.approx.events import enumerate_events
from repro.approx.fpras import KarpLubyEstimator, fpras_count_valuations
from repro.approx.montecarlo import (
    naive_monte_carlo_valuations,
    sample_valuation,
)

from tests.conftest import small_incomplete_dbs


def _default_query(db):
    if not db.schema():
        return BCQ([Atom("R", ["x"])])
    return BCQ(
        [Atom(r, ["x"] * a) for r, a in sorted(db.schema().items())]
    )


class TestEvents:
    @given(small_incomplete_dbs())
    @settings(max_examples=50, deadline=None)
    def test_union_of_events_is_val(self, db):
        """|E_1 ∪ ... ∪ E_m| = #Val(q)(D): the load-bearing fact behind
        the Karp-Luby estimator."""
        query = _default_query(db)
        if not query.is_self_join_free:
            return
        events = enumerate_events(db, query)
        union = 0
        for valuation in iter_valuations(db):
            if any(event.contains(valuation) for event in events):
                union += 1
        assert union == count_valuations_brute(db, query)

    @given(small_incomplete_dbs())
    @settings(max_examples=30, deadline=None)
    def test_weights_count_members(self, db):
        query = _default_query(db)
        events = enumerate_events(db, query)
        for event in events[:4]:
            members = sum(
                1
                for valuation in iter_valuations(db)
                if event.contains(valuation)
            )
            assert members == event.weight

    def test_sampling_stays_inside_event(self):
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null(1), Null(2)]), Fact("R", [Null(2), "a"])],
            ["a", "b"],
        )
        query = BCQ([Atom("R", ["x", "x"])])
        rng = random.Random(7)
        for event in enumerate_events(db, query):
            for _ in range(20):
                assert event.contains(event.sample(rng))

    def test_self_join_supported(self):
        """Events (unlike the dichotomies) handle self-joins: Cor. 5.3
        covers all (U)CQs."""
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null(1), "a"]), Fact("R", ["a", Null(2)])],
            ["a", "b"],
        )
        query = BCQ([Atom("R", ["x", "y"]), Atom("R", ["y", "z"])])
        events = enumerate_events(db, query)
        union = sum(
            1
            for valuation in iter_valuations(db)
            if any(e.contains(valuation) for e in events)
        )
        assert union == count_valuations_brute(db, query)

    def test_rejects_other_query_types(self):
        db = IncompleteDatabase.uniform([Fact("R", ["a"])], ["a"])
        with pytest.raises(TypeError):
            enumerate_events(db, object())


class TestKarpLuby:
    def _instance(self):
        nulls = [Null(i) for i in range(6)]
        facts = [Fact("R", [nulls[i], nulls[i + 1]]) for i in range(5)]
        facts.append(Fact("R", ["c", "c"]))
        return (
            IncompleteDatabase.uniform(facts, ["a", "b", "c"]),
            BCQ([Atom("R", ["x", "x"])]),
        )

    def test_estimate_within_epsilon(self):
        db, query = self._instance()
        exact = count_valuations_brute(db, query)
        estimator = KarpLubyEstimator(db, query, seed=1234)
        report = estimator.estimate(epsilon=0.1, delta=0.05)
        assert abs(report.estimate - exact) <= 0.1 * exact

    def test_upper_bound_property(self):
        db, query = self._instance()
        estimator = KarpLubyEstimator(db, query, seed=0)
        assert estimator.total_event_weight >= count_valuations_brute(
            db, query
        )

    def test_zero_events_means_zero(self):
        db = IncompleteDatabase.uniform([Fact("R", [Null(1)])], ["a"])
        query = BCQ([Atom("S", ["x"])])  # S empty: no event
        estimator = KarpLubyEstimator(db, query, seed=0)
        assert estimator.num_events == 0
        assert estimator.estimate(0.5).estimate == 0.0

    def test_sample_count_grows_with_precision(self):
        db, query = self._instance()
        estimator = KarpLubyEstimator(db, query, seed=0)
        assert estimator.sample_count(0.05) > estimator.sample_count(0.2)
        with pytest.raises(ValueError):
            estimator.sample_count(0.0)
        with pytest.raises(ValueError):
            estimator.estimate_with_samples(0)

    def test_ucq_support(self):
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null(1)]), Fact("S", [Null(2)])], ["a", "b"]
        )
        query = UCQ(
            [BCQ([Atom("R", [Const("a")])]), BCQ([Atom("S", ["x"])])]
        )
        exact = count_valuations_brute(db, query)
        value = fpras_count_valuations(db, query, epsilon=0.1, seed=3)
        assert abs(value - exact) <= 0.1 * exact

    @given(small_incomplete_dbs(), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_randomized_accuracy(self, db, seed):
        query = _default_query(db)
        if not query.is_self_join_free:
            return
        exact = count_valuations_brute(db, query)
        report = KarpLubyEstimator(db, query, seed=seed).estimate(
            epsilon=0.15, delta=0.02
        )
        if exact == 0:
            assert report.estimate == 0.0
        else:
            # Guaranteed within 0.15 w.p. 0.98; the slack to 0.30 makes the
            # test deterministic-in-practice across hypothesis seeds.
            assert abs(report.estimate - exact) <= 0.30 * exact


class TestMonteCarlo:
    def test_unbiased_on_easy_instance(self):
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null(1), Null(2)])], ["a", "b"]
        )
        query = BCQ([Atom("R", ["x", "x"])])
        exact = count_valuations_brute(db, query)  # 2 of 4
        estimate = naive_monte_carlo_valuations(db, query, 4000, seed=5)
        assert abs(estimate - exact) <= 0.2 * exact

    def test_sample_valuation_respects_domains(self):
        db = IncompleteDatabase(
            [Fact("R", [Null(1)])], dom={Null(1): ["a", "b"]}
        )
        rng = random.Random(0)
        for _ in range(10):
            valuation = sample_valuation(db, rng)
            assert valuation[Null(1)] in {"a", "b"}

    def test_guards(self):
        db = IncompleteDatabase.uniform([Fact("R", [Null(1)])], ["a"])
        query = BCQ([Atom("R", ["x"])])
        with pytest.raises(ValueError):
            naive_monte_carlo_valuations(db, query, 0)

    def test_misses_rare_events(self):
        """The failure mode motivating the FPRAS: a satisfying set of
        measure 2^-n is invisible to polynomially many naive samples."""
        n = 14
        nulls = [Null(i) for i in range(n)]
        facts = [Fact("R", [null, "t"]) for null in nulls]
        db = IncompleteDatabase.uniform(facts, ["t", "f"])
        # q: some null = t AND ... make it need ALL nulls = t via R(x,x)?
        # Use a query satisfied only when every null maps to 't' is not
        # expressible as BCQ; instead make satisfaction rare by asking for
        # a long chain of distinct constants - simpler: count directly.
        query = BCQ([Atom("R", ["x", "x"])])  # needs some null = 't'... common
        # Rare instead: single fact whose null must hit 1 value among many.
        rare_db = IncompleteDatabase.uniform(
            [Fact("S", [Null("z"), "w"])], ["w"] + ["v%d" % i for i in range(999)]
        )
        rare_query = BCQ([Atom("S", ["x", "x"])])
        exact = count_valuations_brute(rare_db, rare_query)
        assert exact == 1
        naive = naive_monte_carlo_valuations(rare_db, rare_query, 200, seed=9)
        fpras = fpras_count_valuations(rare_db, rare_query, 0.1, seed=9)
        assert naive == 0.0  # the baseline sees nothing
        assert abs(fpras - exact) <= 0.1 * exact
