"""Trail invariants of the in-place clause store.

The trail core's whole soundness argument is that ``propagate`` and
``backtrack`` are exact inverses over the per-clause counters — these
tests pin that down directly: every propagate/backtrack round trip (with
or without conflicts, nested to arbitrary depth) must restore the store's
full live state bit for bit, and the counters must agree at all times
with a from-scratch recount of the clause list.
"""

import random

import pytest

from repro.compile.trail import ClauseStore


def random_clauses(rng, num_variables, max_clauses=16):
    clauses = []
    for _ in range(rng.randint(0, max_clauses)):
        width = rng.randint(1, min(3, num_variables))
        variables = rng.sample(range(1, num_variables + 1), width)
        clauses.append(tuple(
            v if rng.random() < 0.5 else -v for v in variables
        ))
    return clauses


def recount(store):
    """Per-clause (satisfied, free) recomputed from scratch."""
    expected = []
    for clause in store.clauses:
        satisfied = 0
        free = 0
        for literal in clause:
            value = store.value[abs(literal)]
            if value == 0:
                free += 1
            elif (value > 0) == (literal > 0):
                satisfied += 1
        expected.append((satisfied, free))
    return expected


def assert_consistent(store):
    expected = recount(store)
    actual = list(zip(store.sat, store.free))
    assert actual == expected


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(30))
    def test_propagate_backtrack_restores_exact_state(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 8)
        store = ClauseStore(n, random_clauses(rng, n))
        baseline = store.snapshot()
        for _ in range(20):
            mark = store.mark()
            snapshot = store.snapshot()
            literals = [
                rng.choice([1, -1]) * rng.randint(1, n)
                for _ in range(rng.randint(1, 3))
            ]
            ok = store.propagate(literals)
            if ok:
                assert_consistent(store)
            store.backtrack(mark)
            assert store.snapshot() == snapshot
        assert store.snapshot() == baseline

    @pytest.mark.parametrize("seed", range(30, 50))
    def test_nested_marks_unwind_level_by_level(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 8)
        store = ClauseStore(n, random_clauses(rng, n))
        stack = []
        for _ in range(6):
            stack.append((store.mark(), store.snapshot()))
            store.propagate([rng.choice([1, -1]) * rng.randint(1, n)])
        while stack:
            mark, snapshot = stack.pop()
            store.backtrack(mark)
            assert store.snapshot() == snapshot

    def test_conflict_state_is_fully_restorable(self):
        # x1 and the implication chain x1 -> x2 -> -x1 conflict.
        store = ClauseStore(2, [(-1, 2), (-2, -1)])
        snapshot = store.snapshot()
        mark = store.mark()
        assert not store.propagate([1])
        store.backtrack(mark)
        assert store.snapshot() == snapshot
        # the other polarity is fine, and propagation reports it
        assert store.propagate([-1])
        assert store.value[1] == -1


class TestPropagation:
    def test_unit_chain_propagates_to_fixpoint(self):
        store = ClauseStore(4, [(1,), (-1, 2), (-2, 3), (-3, 4)])
        assert store.propagate(store.units)
        assert store.trail == [1, 2, 3, 4]
        assert all(satisfied > 0 for satisfied in store.sat)

    def test_contradicting_inputs_conflict(self):
        store = ClauseStore(1, [])
        mark = store.mark()
        assert not store.propagate([1, -1])
        store.backtrack(mark)
        assert store.value[1] == 0

    def test_empty_clause_flagged(self):
        store = ClauseStore(2, [(), (1, 2)])
        assert store.has_empty

    def test_live_indices_and_reduced_clause(self):
        store = ClauseStore(3, [(1, 2, 3), (2, 3)])
        store.propagate([-1])  # ternary clause shortens, nothing is unit
        assert store.live_indices() == [0, 1]
        assert store.reduced_clause(0) == (2, 3)
        store.propagate([2])
        assert store.live_indices() == []
