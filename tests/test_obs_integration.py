"""Observability across the stack: solver stats, job metrics, pool
aggregation, result round-trips, and the always-on overhead guard."""

import io
import time

from repro.complexity.cnf import CNF
from repro.compile.sharpsat import ModelCounter
from repro.engine import BatchEngine, CountJob, execute_job
from repro.engine.jsonl import RESULT_KEYS, read_results, write_results
from repro.obs import capture, default_registry, set_enabled
from repro.workloads.generators import scaling_hard_val_instance

STATS_KEYS = {
    "core", "decisions", "propagations", "conflicts", "max_trail_depth",
    "cache_hits", "cache_entries", "sat_cache_entries", "components_split",
    "width", "preprocessing",
}


def _hard_cnf(num_variables=30, seed=7):
    import random

    rng = random.Random(seed)
    cnf = CNF(num_variables)
    for _ in range(int(num_variables * 3.5)):
        chosen = rng.sample(range(1, num_variables + 1), 3)
        cnf.add_clause(
            tuple(v if rng.random() < 0.5 else -v for v in chosen)
        )
    return cnf


class TestCounterStats:
    def test_both_cores_expose_the_same_vocabulary(self):
        cnf = CNF(4, [(1, 2), (3, 4)])
        trail = ModelCounter(cnf)
        reference = ModelCounter(cnf, reference=True)
        assert trail.count() == reference.count() == 9
        trail_stats = trail.stats()
        reference_stats = reference.stats()
        assert set(trail_stats) == STATS_KEYS
        assert set(reference_stats) == STATS_KEYS
        assert trail_stats["core"] == "trail"
        assert reference_stats["core"] == "reference"

    def test_trail_core_counts_work(self):
        counter = ModelCounter(_hard_cnf())
        counter.count()
        stats = counter.stats()
        assert stats["decisions"] > 0
        assert stats["propagations"] > 0
        assert stats["max_trail_depth"] > 0

    def test_reference_core_reports_untracked_as_none(self):
        counter = ModelCounter(CNF(3, [(1, 2)]), reference=True)
        counter.count()
        stats = counter.stats()
        assert stats["propagations"] is None
        assert stats["conflicts"] is None
        assert stats["max_trail_depth"] is None
        assert stats["preprocessing"] is None

    def test_search_counters_reach_an_active_capture(self):
        with capture() as captured:
            ModelCounter(_hard_cnf()).count()
        assert captured.counters.get("sharpsat.decisions", 0) > 0
        assert "compile.search" in captured.phase_totals()


class TestJobMetrics:
    def test_execute_job_attaches_phases_and_counters(self):
        db, query = scaling_hard_val_instance(6, seed=6)
        result = execute_job(CountJob("val", db, query, label="hard"))
        assert result.ok
        metrics = result.meta["metrics"]
        assert "planner.run" in metrics["phases"]
        # The hard cell runs the trail search or (at low width) the dpdb
        # DP; either way the solver layer contributes phases.
        assert any(
            name.startswith(("compile.", "dpdb."))
            for name in metrics["phases"]
        )
        assert metrics["counters"].get("planner.decision", 0) >= 1

    def test_metrics_absent_when_disabled(self):
        db, query = scaling_hard_val_instance(5, seed=5)
        previous = set_enabled(False)
        try:
            result = execute_job(CountJob("val", db, query))
        finally:
            set_enabled(previous)
        assert result.ok
        assert "metrics" not in result.meta


class TestPoolAggregation:
    def test_worker_metrics_come_home_and_merge_into_parent(self):
        jobs = [
            CountJob("val", *scaling_hard_val_instance(size, seed=size),
                     label="s%d" % size)
            for size in (5, 6, 7)
        ]
        registry = default_registry()
        total_before = registry.histogram("engine.job.total_seconds").count
        queue_before = registry.histogram("engine.job.queue_seconds").count
        solver_before = (
            registry.counter("sharpsat.decisions").value
            + registry.counter("dpdb.runs").value
        )

        results = BatchEngine(workers=2).run(jobs)

        assert all(result.ok for result in results)
        for result in results:
            metrics = result.meta["metrics"]
            assert any(
                name.startswith(("compile.", "dpdb."))
                for name in metrics["phases"]
            ), result.label
            assert metrics["counters"], result.label
        # Pooled results carry their queue share; every job fed the
        # parent's latency histograms either way.
        pooled = [
            result for result in results
            if "queue_seconds" in result.meta["metrics"]
        ]
        assert pooled, "expected at least one pool-executed job"
        for result in pooled:
            assert result.meta["metrics"]["queue_seconds"] >= 0.0
        after = registry.histogram("engine.job.total_seconds").count
        assert after == total_before + len(jobs)
        assert (
            registry.histogram("engine.job.queue_seconds").count
            == queue_before + len(jobs)
        )
        # Worker-side solver counters were absorbed into the parent
        # (trail-search decisions or dpdb DP runs, whichever path ran).
        solver_after = (
            registry.counter("sharpsat.decisions").value
            + registry.counter("dpdb.runs").value
        )
        assert solver_after > solver_before
        # And the cache gauges were published.
        assert registry.gauge("engine.cache.hits").value is not None


class TestResultRoundTrip:
    def test_schema_is_stable(self):
        # The JSONL result contract other tooling parses: exactly these
        # top-level keys, metrics under meta with this shape.  Changing
        # either is a breaking format change — update consumers first.
        assert RESULT_KEYS == (
            "label", "problem", "count", "method", "seconds", "cache_hit",
            "error",
        )
        db, query = scaling_hard_val_instance(5, seed=5)
        result = execute_job(CountJob("val", db, query, label="pin"))
        record = result.to_dict()
        assert set(record) == set(RESULT_KEYS) | {"meta"}
        metrics = record["meta"]["metrics"]
        assert set(metrics) <= {"phases", "counters", "queue_seconds"}
        assert all(
            isinstance(seconds, float)
            for seconds in metrics["phases"].values()
        )

    def test_write_read_round_trips_metrics(self):
        db, query = scaling_hard_val_instance(5, seed=5)
        results = [
            execute_job(CountJob("val", db, query, label="a")),
            execute_job(CountJob("val", db, query, label="b")),
        ]
        results[1].meta.setdefault("metrics", {})["queue_seconds"] = 0.25
        buffer = io.StringIO()
        assert write_results(buffer, results) == 2
        buffer.seek(0)
        recovered = list(read_results(buffer))
        assert [r.label for r in recovered] == ["a", "b"]
        for original, restored in zip(results, recovered):
            assert restored.count == original.count
            assert restored.meta["metrics"] == original.meta["metrics"]
        assert recovered[1].meta["metrics"]["queue_seconds"] == 0.25


class TestOverheadGuard:
    def test_always_on_instrumentation_stays_within_tolerance(self):
        # The acceptance bar: the enabled layer costs <= 5% on the sharpsat
        # path.  Spans sit at phase boundaries (a handful per count), so
        # real overhead is microseconds; best-of-N interleaved runs plus a
        # small absolute slack keep the assertion robust to CI noise.
        cnf = _hard_cnf(num_variables=36, seed=11)

        def once() -> float:
            started = time.perf_counter()
            ModelCounter(cnf).count()
            return time.perf_counter() - started

        once()  # warm caches and code paths outside the measurement
        enabled_best = disabled_best = float("inf")
        for _ in range(5):
            enabled_best = min(enabled_best, once())
            previous = set_enabled(False)
            try:
                disabled_best = min(disabled_best, once())
            finally:
                set_enabled(previous)
        assert enabled_best <= disabled_best * 1.05 + 0.005, (
            "observability overhead too high: enabled %.6fs vs disabled %.6fs"
            % (enabled_best, disabled_best)
        )
