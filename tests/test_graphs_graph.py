"""Tests for the Graph / Multigraph substrate."""

import pytest
from hypothesis import given

from repro.graphs.graph import Graph, Multigraph
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    star_graph,
)

from tests.conftest import small_graphs


class TestGraph:
    def test_no_self_loops(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_edges_deduplicate(self):
        graph = Graph(edges=[(1, 2), (2, 1)])
        assert graph.num_edges == 1
        assert graph.has_edge(2, 1)

    def test_neighbors_and_degree(self):
        graph = star_graph(3)
        assert graph.degree(0) == 3
        assert graph.neighbors(1) == {0}

    def test_connected_components(self):
        graph = Graph(edges=[(1, 2), (3, 4)])
        graph.add_node(5)
        components = sorted(map(sorted, graph.connected_components()))
        assert components == [[1, 2], [3, 4], [5]]

    def test_bipartition(self):
        assert cycle_graph(4).is_bipartite()
        assert not cycle_graph(5).is_bipartite()
        assert not complete_graph(3).is_bipartite()
        left, right = complete_bipartite_graph(2, 3).bipartition()
        assert {len(left), len(right)} == {2, 3}

    def test_induced_subgraph(self):
        graph = complete_graph(4)
        sub = graph.induced_subgraph([0, 1, 2])
        assert sub.num_nodes == 3 and sub.num_edges == 3
        with pytest.raises(ValueError):
            graph.induced_subgraph([9])

    def test_subgraph_of_edges(self):
        graph = path_graph(4)
        sub = graph.subgraph_of_edges([(0, 1)])
        assert sub.num_nodes == 2 and sub.num_edges == 1
        with pytest.raises(ValueError):
            graph.subgraph_of_edges([(0, 3)])

    @given(small_graphs())
    def test_handshake_lemma(self, graph):
        assert sum(graph.degree(v) for v in graph.nodes) == 2 * graph.num_edges

    @given(small_graphs())
    def test_components_partition_nodes(self, graph):
        components = graph.connected_components()
        union = set()
        for component in components:
            assert not (union & component)
            union |= component
        assert union == set(graph.nodes)


class TestGenerators:
    def test_sizes(self):
        assert path_graph(5).num_edges == 4
        assert cycle_graph(5).num_edges == 5
        assert complete_graph(5).num_edges == 10
        assert star_graph(4).num_edges == 4
        assert complete_bipartite_graph(2, 3).num_edges == 6

    def test_cycle_needs_three_nodes(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_random_graph_deterministic(self):
        first = random_graph(6, 0.5, seed=42)
        second = random_graph(6, 0.5, seed=42)
        assert first.edges == second.edges

    def test_random_graph_probability_bounds(self):
        assert random_graph(5, 0.0, seed=1).num_edges == 0
        assert random_graph(5, 1.0, seed=1).num_edges == 10
        with pytest.raises(ValueError):
            random_graph(3, 1.5, seed=0)


class TestMultigraph:
    def test_parallel_edges(self):
        multigraph = Multigraph()
        multigraph.add_edge("u", "v")
        multigraph.add_edge("u", "v")
        assert multigraph.num_edges == 2
        assert multigraph.degree("u") == 2
        classes = multigraph.parallel_classes()
        assert len(classes) == 1
        assert len(next(iter(classes.values()))) == 2

    def test_no_self_loops(self):
        multigraph = Multigraph()
        with pytest.raises(ValueError):
            multigraph.add_edge("u", "u")

    def test_duplicate_edge_id_rejected(self):
        multigraph = Multigraph()
        multigraph.add_edge("u", "v", edge_id="e")
        with pytest.raises(ValueError):
            multigraph.add_edge("v", "w", edge_id="e")

    def test_from_graph(self):
        multigraph = Multigraph.from_graph(cycle_graph(4))
        assert multigraph.num_edges == 4
        assert multigraph.is_regular(2)

    def test_incident_edges(self):
        multigraph = Multigraph()
        e1 = multigraph.add_edge("u", "v")
        e2 = multigraph.add_edge("u", "w")
        assert multigraph.incident_edges("u") == {e1, e2}
        assert multigraph.endpoints(e1) == ("u", "v")
