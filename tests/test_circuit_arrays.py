"""Array-compiled circuit passes vs a direct dict-recursion evaluator.

:class:`DDNNF` executes every pass over a flat int program.  These tests
re-implement the passes the *old* way — recursive descent over the
per-node tuple view with dict-based weights — and assert the array
sweeps reproduce them exactly: ``count``, ``evaluate`` under int and
Fraction weights, ``literal_counts`` for both polarities, and sampler
determinism (same circuit, same seed, same draws — through a serialize
round trip too).
"""

import random
from fractions import Fraction

import pytest

from repro.compile.circuit import DDNNF, DECISION, PRODUCT, TRUE
from repro.compile.ddnnf_trace import TraceBuilder
from repro.compile.sharpsat import ModelCounter
from repro.complexity.cnf import CNF


def random_cnf(rng, max_variables=8, max_clauses=12):
    n = rng.randint(1, max_variables)
    cnf = CNF(n)
    for _ in range(rng.randint(0, max_clauses)):
        width = rng.randint(1, min(3, n))
        variables = rng.sample(range(1, n + 1), width)
        cnf.add_clause(
            v if rng.random() < 0.5 else -v for v in variables
        )
    return cnf


def traced_circuit(cnf, projection=None, seed=None):
    trace = TraceBuilder()
    counter = ModelCounter(cnf, projection=projection, trace=trace)
    count = counter.count()
    circuit = trace.build(
        counter.trace_root, cnf.num_variables, countable=projection
    )
    return count, circuit


def recursive_values(circuit, weights):
    """The upward pass as plain recursion over the tuple node view."""
    nodes = list(circuit.nodes())
    table = {variable: (1, 1) for variable in circuit.countable}
    for variable, pair in (weights or {}).items():
        table[variable] = tuple(pair)
    memo = {}

    def value(index):
        if index in memo:
            return memo[index]
        node = nodes[index]
        kind = node[0]
        if kind == TRUE:
            result = 1
        elif kind == PRODUCT:
            result = 1
            for child in node[1]:
                result *= value(child)
        elif kind == DECISION:
            result = 0
            for literals, free, child in node[1]:
                term = value(child)
                for literal in literals:
                    pair = table.get(abs(literal))
                    if pair is not None:
                        term *= pair[0] if literal > 0 else pair[1]
                for variable in free:
                    pair = table.get(variable)
                    if pair is not None:
                        term *= pair[0] + pair[1]
                result += term
        else:  # FALSE
            result = 0
        memo[index] = result
        return result

    return value(circuit.root), table, nodes


def random_weights(rng, circuit, fractions=False):
    weights = {}
    for variable in circuit.countable:
        if rng.random() < 0.6:
            if fractions:
                weights[variable] = (
                    Fraction(rng.randint(0, 5), rng.randint(1, 4)),
                    Fraction(rng.randint(0, 5), rng.randint(1, 4)),
                )
            else:
                weights[variable] = (rng.randint(0, 4), rng.randint(0, 4))
    return weights


class TestUpwardParity:
    @pytest.mark.parametrize("seed", range(25))
    def test_count_and_weighted_evaluate(self, seed):
        rng = random.Random(1000 + seed)
        cnf = random_cnf(rng)
        count, circuit = traced_circuit(cnf)
        recursive, _table, _nodes = recursive_values(circuit, None)
        assert circuit.count() == count == recursive
        weights = random_weights(rng, circuit)
        recursive_weighted, _t, _n = recursive_values(circuit, weights)
        assert circuit.evaluate(weights) == recursive_weighted

    @pytest.mark.parametrize("seed", range(25, 40))
    def test_fraction_weights(self, seed):
        rng = random.Random(1000 + seed)
        cnf = random_cnf(rng)
        _count, circuit = traced_circuit(cnf)
        weights = random_weights(rng, circuit, fractions=True)
        recursive, _t, _n = recursive_values(circuit, weights)
        result = circuit.evaluate(weights)
        assert result == recursive
        assert isinstance(result, (int, Fraction))

    @pytest.mark.parametrize("seed", range(40, 55))
    def test_projected_circuits(self, seed):
        rng = random.Random(1000 + seed)
        cnf = random_cnf(rng)
        if cnf.num_variables < 2:
            return
        projection = rng.sample(
            range(1, cnf.num_variables + 1),
            rng.randint(1, cnf.num_variables),
        )
        count, circuit = traced_circuit(cnf, projection=projection)
        recursive, _t, _n = recursive_values(circuit, None)
        assert circuit.count() == count == recursive


class TestLiteralCountParity:
    @pytest.mark.parametrize("seed", range(20))
    def test_both_polarities_match_conditioned_recursion(self, seed):
        rng = random.Random(2000 + seed)
        cnf = random_cnf(rng, max_variables=6)
        _count, circuit = traced_circuit(cnf)
        weights = (
            random_weights(rng, circuit) if seed % 2 else None
        )
        counts = circuit.literal_counts(weights)
        # Reference: condition each literal by zeroing the opposite
        # polarity's weight, then evaluate recursively.
        base = {variable: (1, 1) for variable in circuit.countable}
        for variable, pair in (weights or {}).items():
            base[variable] = tuple(pair)
        for variable in circuit.countable:
            true_weight, false_weight = base[variable]
            conditioned = dict(base)
            conditioned[variable] = (true_weight, 0)
            expected_true, _t, _n = recursive_values(circuit, conditioned)
            conditioned[variable] = (0, false_weight)
            expected_false, _t, _n = recursive_values(circuit, conditioned)
            assert counts[variable] == expected_true
            assert counts[-variable] == expected_false


class TestSamplerDeterminism:
    @pytest.mark.parametrize("seed", range(10))
    def test_same_seed_same_draws_across_rebuilds(self, seed):
        rng = random.Random(3000 + seed)
        cnf = random_cnf(rng)
        count, first = traced_circuit(cnf)
        if not count:
            return
        _count, second = traced_circuit(cnf)
        draws_first = [
            first.sampler().sample(random.Random(seed * 7 + i))
            for i in range(20)
        ]
        draws_second = [
            second.sampler().sample(random.Random(seed * 7 + i))
            for i in range(20)
        ]
        assert draws_first == draws_second

    @pytest.mark.parametrize("seed", range(10, 16))
    def test_serialize_round_trip_preserves_draws(self, seed):
        rng = random.Random(3000 + seed)
        cnf = random_cnf(rng)
        count, circuit = traced_circuit(cnf)
        if not count:
            return
        restored = DDNNF.from_bytes(circuit.to_bytes())
        draws = [
            circuit.sampler().sample(random.Random(100 + i))
            for i in range(20)
        ]
        restored_draws = [
            restored.sampler().sample(random.Random(100 + i))
            for i in range(20)
        ]
        assert draws == restored_draws

    def test_samples_are_models(self):
        rng = random.Random(4)
        cnf = random_cnf(rng, max_variables=6)
        count, circuit = traced_circuit(cnf)
        if not count:
            return
        sampler = circuit.sampler()
        draw_rng = random.Random(11)
        for _ in range(30):
            assignment = sampler.sample(draw_rng)
            assert set(assignment) == set(circuit.countable)
            bits = [
                assignment.get(v, False)
                for v in range(1, cnf.num_variables + 1)
            ]
            assert cnf.satisfied_by(bits)
