"""The three tractable #Val algorithms vs. brute force (Thms 3.6/3.7/3.9)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_valuations_brute
from repro.exact.val_codd import count_valuations_codd
from repro.exact.val_codd import applies_to as codd_applies
from repro.exact.val_nonuniform import (
    applies_to as single_applies,
    count_valuations_single_occurrence,
)
from repro.exact.val_uniform import (
    applies_to as uniform_applies,
    basic_singleton_components,
    count_valuations_uniform,
    shared_variables,
)

from tests.conftest import (
    pattern_free_uniform_queries,
    small_incomplete_dbs,
)


class TestSingleOccurrence:
    """Theorem 3.6: all variables occur once -> count is 0 or total."""

    QUERY = BCQ([Atom("R", ["x", "y"]), Atom("S", ["z"])])

    def test_applicability(self):
        assert single_applies(self.QUERY)
        assert not single_applies(BCQ([Atom("R", ["x", "x"])]))
        assert not single_applies(BCQ([Atom("R", ["x"]), Atom("S", ["x"])]))

    def test_empty_relation_gives_zero(self):
        db = IncompleteDatabase.uniform([Fact("R", [Null(1), "a"])], ["a"])
        assert count_valuations_single_occurrence(db, self.QUERY) == 0

    def test_rejects_hard_queries(self):
        db = IncompleteDatabase.uniform([Fact("R", ["a", "a"])], ["a"])
        with pytest.raises(ValueError):
            count_valuations_single_occurrence(
                db, BCQ([Atom("R", ["x", "x"])])
            )

    @given(
        small_incomplete_dbs(schema={"R": 2, "S": 1})
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, db):
        assert count_valuations_single_occurrence(
            db, self.QUERY
        ) == count_valuations_brute(db, self.QUERY)


class TestCodd:
    """Theorem 3.7: atoms pairwise variable-disjoint, Codd tables."""

    QUERIES = [
        BCQ([Atom("R", ["x", "x"])]),
        BCQ([Atom("R", ["x", "y"])]),
        BCQ([Atom("R", ["x", "x"]), Atom("S", ["y"])]),
        BCQ([Atom("R", ["x", "x", "y"]), Atom("S", ["z", "z"])]),
    ]

    def test_applicability(self):
        for query in self.QUERIES:
            assert codd_applies(query)
        assert not codd_applies(BCQ([Atom("R", ["x"]), Atom("S", ["x"])]))

    def test_requires_codd_table(self):
        shared = Null(1)
        db = IncompleteDatabase.uniform(
            [Fact("R", [shared, shared])], ["a", "b"]
        )
        with pytest.raises(ValueError):
            count_valuations_codd(db, self.QUERIES[0])

    def test_repeat_query_on_codd_is_easy(self):
        """The Section 3.2 closing remark: #ValCd(R(x,x)) is FP."""
        db = IncompleteDatabase(
            [Fact("R", [Null(1), Null(2)]), Fact("R", [Null(3), "a"])],
            dom={
                Null(1): ["a", "b"],
                Null(2): ["b", "c"],
                Null(3): ["a", "c"],
            },
        )
        # match fact1: values equal in {b} => 1; fact2: Null(3) = a => 1
        # total = 2*2*2 = 8; non-match = (4-1)*(2-1) = 3; result 5.
        assert count_valuations_codd(db, self.QUERIES[0]) == 5
        assert count_valuations_brute(db, self.QUERIES[0]) == 5

    @given(
        st.sampled_from(QUERIES),
        small_incomplete_dbs(schema={"R": 3, "S": 2}, codd=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, query, db):
        query_arities = {a.relation: a.arity for a in query.atoms}
        facts = [
            f
            for f in db.facts
            if f.arity == query_arities.get(f.relation, f.arity)
        ]
        db = db.with_facts(facts)
        assert count_valuations_codd(db, query) == count_valuations_brute(
            db, query
        )


class TestUniform:
    """Theorem 3.9: inclusion-exclusion over basic singletons."""

    def test_applicability(self):
        assert uniform_applies(BCQ([Atom("R", ["x"]), Atom("S", ["x"])]))
        assert not uniform_applies(BCQ([Atom("R", ["x", "x"])]))
        assert not uniform_applies(
            BCQ([Atom("R", ["x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])])
        )
        assert not uniform_applies(
            BCQ([Atom("R", ["x", "y"]), Atom("S", ["x", "y"])])
        )

    def test_requires_uniform(self):
        db = IncompleteDatabase(
            [Fact("R", [Null(1)]), Fact("S", ["a"])], dom={Null(1): ["a"]}
        )
        with pytest.raises(ValueError):
            count_valuations_uniform(
                db, BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
            )

    def test_components(self):
        query = BCQ(
            [
                Atom("R", ["x", "u"]),
                Atom("S", ["x"]),
                Atom("T", ["y"]),
                Atom("U", ["y"]),
                Atom("V", ["z"]),
            ]
        )
        shared = shared_variables(query)
        assert [v.name for v in shared] == ["x", "y"]
        components = basic_singleton_components(query)
        groups = sorted(sorted(g) for g in components.values())
        assert groups == [["R", "S"], ["T", "U"]]

    def test_example_310_shape(self):
        """Example 3.10's setting: R(x) ∧ S(x), disjoint constants, shared
        domain — cross-checked against brute force."""
        db = IncompleteDatabase.uniform(
            [
                Fact("R", ["r1"]),
                Fact("R", [Null("n1")]),
                Fact("R", [Null("n2")]),
                Fact("S", ["s1"]),
                Fact("S", [Null("m1")]),
            ],
            ["r1", "s1", "u1", "u2"],
        )
        query = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
        assert count_valuations_uniform(db, query) == count_valuations_brute(
            db, query
        )

    @given(pattern_free_uniform_queries(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, query, data):
        schema = {a.relation: a.arity for a in query.atoms}
        db = data.draw(small_incomplete_dbs(schema=schema, uniform=True))
        assert count_valuations_uniform(db, query) == count_valuations_brute(
            db, query
        )
