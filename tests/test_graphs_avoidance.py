"""Tests for avoiding assignments and the Appendix A.2 transformations."""

import pytest
from hypothesis import given, settings

from repro.graphs.avoidance import (
    count_assignments,
    count_avoiding_assignments,
    merge_degree_two_nodes,
    subdivide_edges,
)
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.graph import Graph, Multigraph

from tests.conftest import small_bipartite_graphs


def _three_regular_multigraph() -> Multigraph:
    """Two nodes joined by three parallel edges: the smallest 3-regular
    multigraph."""
    multigraph = Multigraph()
    for _ in range(3):
        multigraph.add_edge("u", "v")
    return multigraph


class TestAssignments:
    def test_total_assignments(self):
        multigraph = Multigraph.from_graph(path_graph(3))
        # degrees 1, 2, 1
        assert count_assignments(multigraph) == 2

    def test_isolated_node_kills_assignments(self):
        multigraph = Multigraph()
        multigraph.add_node("lonely")
        multigraph.add_edge("u", "v")
        assert count_assignments(multigraph) == 0
        assert count_avoiding_assignments(multigraph) == 0

    def test_single_edge_has_no_avoiding_assignment(self):
        multigraph = Multigraph()
        multigraph.add_edge("u", "v")
        # Both endpoints must pick the unique edge: never avoiding.
        assert count_avoiding_assignments(multigraph) == 0

    def test_parallel_pair(self):
        multigraph = Multigraph()
        multigraph.add_edge("u", "v")
        multigraph.add_edge("u", "v")
        # Each node picks one of the two parallel edges; avoid collisions.
        assert count_assignments(multigraph) == 4
        assert count_avoiding_assignments(multigraph) == 2

    def test_triangle(self):
        multigraph = Multigraph.from_graph(cycle_graph(3))
        # Orientations of the triangle with out-degree exactly 1 per node
        # that are injective on edges: the two rotations.
        assert count_avoiding_assignments(multigraph) == 2

    def test_figure2_object(self):
        """Avoiding assignments exist on the 3-regular two-node multigraph."""
        multigraph = _three_regular_multigraph()
        assert count_assignments(multigraph) == 9
        # u and v must pick different parallel edges: 3 * 2.
        assert count_avoiding_assignments(multigraph) == 6


class TestSubdivision:
    def test_produces_bipartite(self):
        multigraph = _three_regular_multigraph()
        subdivided = subdivide_edges(multigraph)
        assert subdivided.is_bipartite()
        assert subdivided.num_nodes == 2 + 3
        assert subdivided.num_edges == 6

    def test_prop_a8_counting_identity(self):
        """#Avoidance(G') = 2^{|E|-|V|} * #Avoidance(G) for 3-regular G."""
        multigraph = _three_regular_multigraph()
        subdivided = subdivide_edges(multigraph)
        sub_multi = Multigraph.from_graph(subdivided)
        expected = 2 ** (
            multigraph.num_edges - multigraph.num_nodes
        ) * count_avoiding_assignments(multigraph)
        assert count_avoiding_assignments(sub_multi) == expected

    def test_prop_a8_on_k4_subdivision(self):
        """The identity again on another 3-regular multigraph: K4."""
        from repro.graphs.generators import complete_graph

        k4 = Multigraph.from_graph(complete_graph(4))
        assert k4.is_regular(3)
        subdivided = subdivide_edges(k4)
        expected = 2 ** (k4.num_edges - k4.num_nodes) * (
            count_avoiding_assignments(k4)
        )
        assert count_avoiding_assignments(
            Multigraph.from_graph(subdivided)
        ) == expected


class TestMerging:
    def test_merging_inverts_subdivision(self):
        multigraph = _three_regular_multigraph()
        subdivided = subdivide_edges(multigraph)
        merged = merge_degree_two_nodes(subdivided)
        assert merged.num_nodes == multigraph.num_nodes
        assert merged.num_edges == multigraph.num_edges
        assert merged.is_regular(3)

    def test_rejects_non_bipartite(self):
        with pytest.raises(ValueError):
            merge_degree_two_nodes(cycle_graph(5))

    def test_merging_preserves_avoidance_count(self):
        """The proof of Prop. A.3 equates avoiding assignments of the
        merging with the Holant value; at minimum the merging of a
        subdivision must recover the original count."""
        multigraph = _three_regular_multigraph()
        merged = merge_degree_two_nodes(subdivide_edges(multigraph))
        assert count_avoiding_assignments(
            merged
        ) == count_avoiding_assignments(multigraph)
