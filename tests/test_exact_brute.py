"""Tests for the brute-force counters, anchored on the paper's Figure 1."""

import pytest
from hypothesis import given, settings

from repro.core.query import Atom, BCQ, Negation
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import count_total_valuations
from repro.exact.brute import (
    BruteForceBudgetExceeded,
    count_completions_brute,
    count_valuations_brute,
    valuation_completion_gap,
)

from tests.conftest import small_incomplete_dbs


class TestFigure1:
    """The worked example of Section 2: #Val = 4, #Comp = 3."""

    def test_headline_counts(self, figure1_db, figure1_query):
        assert count_valuations_brute(figure1_db, figure1_query) == 4
        assert count_completions_brute(figure1_db, figure1_query) == 3

    def test_gap_helper(self, figure1_db, figure1_query):
        assert valuation_completion_gap(figure1_db, figure1_query) == (4, 3)

    def test_total_completions(self, figure1_db):
        assert count_completions_brute(figure1_db, None) == 5


class TestBudget:
    def test_budget_guard(self):
        nulls = [Null(i) for i in range(8)]
        db = IncompleteDatabase.uniform(
            [Fact("R", [n]) for n in nulls], ["a", "b", "c"]
        )
        with pytest.raises(BruteForceBudgetExceeded):
            count_valuations_brute(db, BCQ([Atom("R", ["x"])]), budget=100)
        # None disables the guard
        assert count_valuations_brute(
            db, BCQ([Atom("R", ["x"])]), budget=None
        ) == 3**8


class TestInvariant:
    @given(small_incomplete_dbs())
    @settings(max_examples=40, deadline=None)
    def test_comp_le_val_le_total(self, db):
        """#Comp(q) <= #Val(q) <= total valuations, for any q."""
        query = BCQ(
            [Atom(r, ["x"] * a) for r, a in sorted(db.schema().items())]
        ) if db.schema() else BCQ([Atom("R", ["x"])])
        valuations = count_valuations_brute(db, query)
        completions = count_completions_brute(db, query)
        assert completions <= valuations <= count_total_valuations(db)

    @given(small_incomplete_dbs())
    @settings(max_examples=40, deadline=None)
    def test_negation_complements(self, db):
        """#Val(q) + #Val(¬q) = total; #Comp(q) + #Comp(¬q) = #Comp(all)."""
        query = (
            BCQ([Atom(r, ["x"] * a) for r, a in sorted(db.schema().items())])
            if db.schema()
            else BCQ([Atom("R", ["x"])])
        )
        negated = Negation(query)
        assert count_valuations_brute(db, query) + count_valuations_brute(
            db, negated
        ) == count_total_valuations(db)
        assert count_completions_brute(db, query) + count_completions_brute(
            db, negated
        ) == count_completions_brute(db, None)
