"""Tests for the exact graph counters (the reduction oracles)."""

from hypothesis import given, settings

from repro.graphs.counting import (
    count_bipartite_independent_sets,
    count_colorings,
    count_independent_pairs_by_size,
    count_independent_sets,
    count_independent_sets_naive,
    count_vertex_covers,
    is_colorable,
    is_independent_set,
    is_vertex_cover,
)
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph

from tests.conftest import small_bipartite_graphs, small_graphs


class TestIndependentSets:
    def test_known_counts(self):
        # Independent sets of a path are Fibonacci-counted.
        assert count_independent_sets(path_graph(1)) == 2
        assert count_independent_sets(path_graph(2)) == 3
        assert count_independent_sets(path_graph(3)) == 5
        assert count_independent_sets(path_graph(4)) == 8
        # K_n: empty set plus n singletons.
        assert count_independent_sets(complete_graph(4)) == 5
        # Empty graph: all subsets.
        assert count_independent_sets(Graph(nodes=range(4))) == 16

    def test_cycle_counts_are_lucas_numbers(self):
        assert count_independent_sets(cycle_graph(3)) == 4
        assert count_independent_sets(cycle_graph(4)) == 7
        assert count_independent_sets(cycle_graph(5)) == 11
        assert count_independent_sets(cycle_graph(6)) == 18

    @given(small_graphs())
    @settings(max_examples=40)
    def test_matches_naive_scan(self, graph):
        assert count_independent_sets(graph) == count_independent_sets_naive(
            graph
        )

    def test_is_independent_set_predicate(self):
        graph = path_graph(3)
        assert is_independent_set(graph, [0, 2])
        assert not is_independent_set(graph, [0, 1])
        assert is_independent_set(graph, [])


class TestVertexCovers:
    @given(small_graphs())
    @settings(max_examples=30)
    def test_complementation_bijection(self, graph):
        """S independent iff V \\ S is a cover (used by Theorem 5.5)."""
        from itertools import combinations

        nodes = graph.nodes
        direct = 0
        for size in range(len(nodes) + 1):
            for subset in combinations(nodes, size):
                if is_vertex_cover(graph, subset):
                    direct += 1
        assert count_vertex_covers(graph) == direct

    def test_predicate(self):
        graph = path_graph(3)
        assert is_vertex_cover(graph, [1])
        assert not is_vertex_cover(graph, [0])


class TestColorings:
    def test_known_chromatic_values(self):
        assert count_colorings(complete_graph(3), 3) == 6
        assert count_colorings(complete_graph(4), 3) == 0
        # Proper k-colorings of a path of n nodes: k * (k-1)^(n-1).
        assert count_colorings(path_graph(4), 3) == 3 * 2**3
        # Cycle: (k-1)^n + (-1)^n (k-1).
        assert count_colorings(cycle_graph(5), 3) == 2**5 - 2
        assert count_colorings(cycle_graph(4), 3) == 2**4 + 2

    def test_zero_colors(self):
        assert count_colorings(Graph(nodes=[1]), 0) == 0
        assert count_colorings(Graph(), 0) == 1  # empty product

    def test_is_colorable(self):
        assert is_colorable(cycle_graph(5), 3)
        assert not is_colorable(cycle_graph(5), 2)
        assert is_colorable(cycle_graph(4), 2)

    @given(small_graphs(max_nodes=5))
    @settings(max_examples=25)
    def test_monotone_in_colors(self, graph):
        assert count_colorings(graph, 2) <= count_colorings(graph, 3)


class TestBipartiteCounters:
    def test_independent_pairs_by_size(self):
        graph = complete_bipartite_graph(2, 2)
        left = [("a", 0), ("a", 1)]
        right = [("b", 0), ("b", 1)]
        z = count_independent_pairs_by_size(graph, left, right)
        # In K_{2,2} an independent pair has S1 or S2 empty.
        assert z[(0, 0)] == 1
        assert z[(1, 0)] == 2 and z[(0, 1)] == 2
        assert z[(1, 1)] == 0
        assert sum(z.values()) == count_independent_sets(graph)

    @given(small_bipartite_graphs())
    @settings(max_examples=30)
    def test_pair_counts_sum_to_bis(self, graph):
        """Claim (*) of Prop. 3.11: #BIS = sum Z_{i,j}."""
        left = sorted(n for n in graph.nodes if n[0] == "a")
        right = sorted(n for n in graph.nodes if n[0] == "b")
        z = count_independent_pairs_by_size(graph, left, right)
        assert sum(z.values()) == count_bipartite_independent_sets(graph)
