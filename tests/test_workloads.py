"""Tests for the workload/instance generators."""

from hypothesis import given, settings, strategies as st

from repro.exact.val_codd import applies_to as codd_applies
from repro.exact.val_nonuniform import applies_to as single_applies
from repro.exact.val_uniform import applies_to as uniform_applies
from repro.exact.comp_uniform import applies_to as comp_applies
from repro.workloads.generators import (
    random_incomplete_db,
    scaling_codd_instance,
    scaling_single_occurrence_instance,
    scaling_uniform_unary_comp_instance,
    scaling_uniform_val_instance,
)


class TestRandomIncompleteDb:
    @given(st.integers(0, 100))
    @settings(max_examples=25)
    def test_respects_flags(self, seed):
        schema = {"R": 2, "S": 1}
        codd = random_incomplete_db(schema, seed, codd=True)
        assert codd.is_codd
        uniform = random_incomplete_db(schema, seed, uniform=True)
        assert uniform.is_uniform
        non_uniform = random_incomplete_db(schema, seed, uniform=False)
        assert not non_uniform.is_uniform

    def test_deterministic(self):
        schema = {"R": 2}
        first = random_incomplete_db(schema, seed=5)
        second = random_incomplete_db(schema, seed=5)
        assert first.facts == second.facts

    def test_schema_respected(self):
        db = random_incomplete_db(
            {"R": 3}, seed=1, facts_per_relation=(2, 2)
        )
        assert all(f.arity == 3 for f in db.facts)
        assert db.relations <= {"R"}


class TestScalingFamilies:
    """Each family must target its theorem's applicability region and grow
    with its size parameter."""

    def test_single_occurrence_family(self):
        db, query = scaling_single_occurrence_instance(5)
        assert single_applies(query)
        assert not db.is_uniform
        bigger, _ = scaling_single_occurrence_instance(10)
        assert len(bigger.nulls) > len(db.nulls)

    def test_codd_family(self):
        db, query = scaling_codd_instance(5)
        assert codd_applies(query)
        assert db.is_codd
        assert not db.is_uniform

    def test_uniform_val_family(self):
        db, query = scaling_uniform_val_instance(5)
        assert uniform_applies(query)
        assert db.is_uniform
        assert not db.is_codd  # shared nulls exercise the naive case

    def test_uniform_comp_family(self):
        db, query = scaling_uniform_unary_comp_instance(6)
        assert comp_applies(query)
        assert db.is_uniform
        assert all(f.arity == 1 for f in db.facts)

    def test_families_are_deterministic(self):
        for factory in (
            scaling_single_occurrence_instance,
            scaling_codd_instance,
            scaling_uniform_val_instance,
            scaling_uniform_unary_comp_instance,
        ):
            first, _ = factory(4)
            second, _ = factory(4)
            assert first.facts == second.facts
