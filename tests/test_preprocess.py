"""Preprocessing soundness: probing, substitution and pure literals never
change a count.

The load-bearing suite is randomized and differential: hundreds of CNFs
counted by the trail core with every preprocessing stage forced on must
agree bit for bit with the retained tuple-based reference counter (which
preprocesses nothing), in full and projected mode alike.  The directed
tests then pin each stage individually — backbones found by failed
probes, equivalences substituted away, pure non-projection literals
fixed — and the policy boundaries (no substitution under a full-count
trace, no pure elimination outside projected mode).
"""

import random

from repro.compile.ddnnf_trace import TraceBuilder
from repro.compile.preprocess import preprocess_store
from repro.compile.sharpsat import ModelCounter, count_models
from repro.compile.trail import ClauseStore
from repro.complexity.cnf import CNF


def random_cnf(rng, max_variables=8, max_clauses=14):
    n = rng.randint(1, max_variables)
    cnf = CNF(n)
    for _ in range(rng.randint(0, max_clauses)):
        width = rng.randint(1, min(3, n))
        variables = rng.sample(range(1, n + 1), width)
        cnf.add_clause(
            v if rng.random() < 0.5 else -v for v in variables
        )
    return cnf


class TestRandomizedSoundness:
    def test_full_counts_unchanged_probing_forced(self):
        rng = random.Random(20250730)
        for _ in range(120):
            cnf = random_cnf(rng)
            reference = count_models(cnf, reference=True)
            assert count_models(cnf, probe=True) == reference
            assert count_models(cnf, preprocess=False) == reference

    def test_projected_counts_unchanged_probing_forced(self):
        rng = random.Random(73)
        for _ in range(120):
            cnf = random_cnf(rng)
            projection = rng.sample(
                range(1, cnf.num_variables + 1),
                rng.randint(0, cnf.num_variables),
            )
            reference = count_models(cnf, projection=projection, reference=True)
            assert (
                count_models(cnf, projection=projection, probe=True)
                == reference
            )
            assert (
                count_models(cnf, projection=projection, preprocess=False)
                == reference
            )

    def test_traced_projected_counts_unchanged_probing_forced(self):
        rng = random.Random(97)
        for _ in range(60):
            cnf = random_cnf(rng, max_variables=6)
            projection = rng.sample(
                range(1, cnf.num_variables + 1),
                rng.randint(1, cnf.num_variables),
            )
            reference = count_models(cnf, projection=projection, reference=True)
            trace = TraceBuilder()
            counter = ModelCounter(
                cnf, projection=projection, trace=trace, probe=True
            )
            assert counter.count() == reference
            circuit = trace.build(
                counter.trace_root, cnf.num_variables, countable=projection
            )
            assert circuit.count() == reference


class TestStages:
    def test_failed_literal_becomes_backbone(self):
        # x1 -> x2 and x1 -> -x2: probing x1=True conflicts, so -x1 is
        # a backbone and lands on the root trail.
        store = ClauseStore(3, [(-1, 2), (-1, -2), (1, 3)])
        report = preprocess_store(store, probe=True)
        assert not report.conflict
        assert -1 in report.forced
        assert store.value[1] == -1
        assert report.failed_literals >= 1

    def test_both_polarities_failing_is_a_conflict(self):
        store = ClauseStore(2, [(1, 2), (1, -2), (-1, 2), (-1, -2)])
        report = preprocess_store(store, probe=True)
        assert report.conflict

    def test_equivalence_substitution_in_full_untraced_mode(self):
        # x1 <-> x2 through binary clauses; probing discovers it and one
        # variable is substituted away.
        cnf = CNF(3, [(-1, 2), (1, -2), (2, 3)])
        store = ClauseStore(3, cnf.clauses)
        report = preprocess_store(store, probe=True)
        assert not report.conflict
        assert report.equivalences >= 1
        assert len(report.substitutions) == 1
        assert report.rewritten is not None
        # The count is preserved through the counter's end-to-end path.
        assert count_models(cnf, probe=True) == count_models(
            cnf, reference=True
        )

    def test_no_substitution_under_full_count_trace(self):
        store = ClauseStore(3, [(-1, 2), (1, -2), (2, 3)])
        report = preprocess_store(store, probe=True, traced=True)
        assert report.substitutions == {}
        assert report.rewritten is None

    def test_projected_substitution_spares_projection_variables(self):
        # x1 <-> x2, both countable: neither may be substituted; an
        # equivalent non-projection x3 <-> x1 may.
        store = ClauseStore(
            3, [(-1, 2), (1, -2), (-1, 3), (1, -3)]
        )
        report = preprocess_store(
            store, projection=frozenset({1, 2}), probe=True, traced=True
        )
        assert set(report.substitutions) <= {3}

    def test_pure_literal_projected_only(self):
        # x3 occurs only positively and is outside the projection: fixed.
        cnf = CNF(3, [(1, 3), (2, 3)])
        store = ClauseStore(3, cnf.clauses)
        report = preprocess_store(store, projection=frozenset({1, 2}))
        assert 3 in report.pure_fixed
        # In full mode the same formula keeps x3 untouched (fixing it
        # would drop the models with x3 false).
        store_full = ClauseStore(3, cnf.clauses)
        report_full = preprocess_store(store_full, probe=True)
        assert report_full.pure_fixed == ()
        # And the projected count survives the fix, end to end.
        assert count_models(cnf, projection=[1, 2]) == count_models(
            cnf, projection=[1, 2], reference=True
        )

    def test_unsatisfiable_input_reports_conflict(self):
        store = ClauseStore(1, [(1,), (-1,)])
        report = preprocess_store(store)
        assert report.conflict

    def test_determined_mask_names_substituted_variables(self):
        store = ClauseStore(3, [(-1, 2), (1, -2), (2, 3)])
        report = preprocess_store(store, probe=True)
        (substituted,) = report.substitutions
        assert report.determined_mask == 1 << substituted
