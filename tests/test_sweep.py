"""The vectorized sweep surface: batched circuit passes, the ``sweep``
planner problem, engine jobs, and the ``solve`` facade.

The load-bearing contract: every batched pass is a *drop-in* for looping
its scalar counterpart — bit-identical for int weights (the int64 and
object columns both produce Python ints), exactly value-equal for
Fraction weights.
"""

import io
import json
import random
from fractions import Fraction

import pytest

from repro.compile.backend import CompletionCircuit, ValuationCircuit
from repro.core.query import Atom, BCQ
from repro.engine import BatchEngine, CountJob, execute_job, needs_circuit
from repro.engine.fingerprint import fingerprint_job
from repro.engine.jsonl import (
    JobSyntaxError,
    read_jobs,
    read_results,
    write_results,
)
from repro.exact.dispatch import (
    Answer,
    count_completions,
    count_valuations,
    count_valuations_sweep,
    count_valuations_weighted,
    plan_sweep,
    resolve_sweep_method,
    solve,
)
from repro.io.databases import parse_database
from repro.io.queries import parse_query
from repro.workloads.generators import (
    random_incomplete_db,
    scaling_hard_val_instance,
)

QUERY = BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])


def _random_instance(seed):
    db = random_incomplete_db(
        {"R": 2, "S": 1}, seed=seed, num_nulls=4, domain_size=3
    )
    return db, QUERY


def _int_rows(db, rng, count, low=-3, high=6):
    """Weight rows covering negatives, zeros, None and {} rows."""
    rows = []
    for position in range(count):
        if position % 7 == 5:
            rows.append(None)
            continue
        if position % 7 == 6:
            rows.append({})
            continue
        rows.append({
            null: {
                value: rng.randrange(low, high)
                for value in sorted(db.domain_of(null), key=repr)
            }
            for null in db.nulls
        })
    return rows


class TestBatchedValuationPasses:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_int_weights_bit_identical(self, seed):
        db, query = _random_instance(seed)
        compiled = ValuationCircuit(db, query)
        rows = _int_rows(db, random.Random(seed), 12)
        batched = compiled.weighted_count_many(rows)
        looped = [compiled.weighted_count(row) for row in rows]
        assert batched == looped
        for value in batched:
            assert isinstance(value, int)

    def test_big_int_weights_use_exact_columns(self):
        db, query = _random_instance(9)
        compiled = ValuationCircuit(db, query)
        rng = random.Random(9)
        # Magnitudes far past int64: the object-column path must carry
        # exact Python ints end to end.
        rows = [
            {
                null: {
                    value: rng.randrange(1, 10) << 40
                    for value in sorted(db.domain_of(null), key=repr)
                }
                for null in db.nulls
            }
            for _ in range(6)
        ]
        batched = compiled.weighted_count_many(rows)
        looped = [compiled.weighted_count(row) for row in rows]
        assert batched == looped
        for value in batched:
            assert isinstance(value, int)

    def test_fraction_weights_exactly_rational(self):
        db, query = _random_instance(4)
        compiled = ValuationCircuit(db, query)
        rng = random.Random(4)
        rows = [
            {
                null: {
                    value: Fraction(rng.randrange(0, 9), rng.randrange(1, 7))
                    for value in sorted(db.domain_of(null), key=repr)
                }
                for null in db.nulls
            }
            for _ in range(8)
        ]
        batched = compiled.weighted_count_many(rows)
        looped = [compiled.weighted_count(row) for row in rows]
        # Exact rational equality; a scalar-side zero may be int 0 where
        # the batched column holds Fraction(0, 1), so compare by value.
        assert len(batched) == len(looped)
        for left, right in zip(batched, looped):
            assert left == right

    def test_marginals_many_matches_scalar(self):
        db, query = _random_instance(5)
        compiled = ValuationCircuit(db, query)
        rng = random.Random(5)
        rows = [None] + [
            {
                null: {
                    value: rng.randrange(1, 5)
                    for value in sorted(db.domain_of(null), key=repr)
                }
                for null in db.nulls
            }
            for _ in range(4)
        ]
        batched = compiled.marginals_many(rows)
        looped = [compiled.marginals(row) for row in rows]
        assert batched == looped

    def test_empty_batch(self):
        db, query = _random_instance(6)
        compiled = ValuationCircuit(db, query)
        assert compiled.weighted_count_many([]) == []
        assert compiled.marginals_many([]) == []


class TestBatchedCompletionPasses:
    """The projected (#Comp) circuit's batched passes."""

    @pytest.mark.parametrize("seed", [0, 2])
    def test_weighted_count_many_matches_scalar(self, seed):
        db, query = _random_instance(seed)
        compiled = CompletionCircuit(db, query)
        rng = random.Random(seed)
        facts = list(compiled._facts.facts())
        rows = [None, {}] + [
            {fact: rng.randrange(-2, 5) for fact in facts[::2]}
            for _ in range(6)
        ]
        batched = compiled.weighted_count_many(rows)
        looped = [compiled.weighted_count(row) for row in rows]
        assert batched == looped
        assert batched[0] == compiled.count()

    def test_fact_marginals_many_matches_scalar(self):
        db, query = _random_instance(3)
        compiled = CompletionCircuit(db, query)
        rng = random.Random(3)
        facts = list(compiled._facts.facts())
        rows = [None] + [
            {fact: rng.randrange(1, 4) for fact in facts}
            for _ in range(4)
        ]
        batched = compiled.fact_marginals_many(rows)
        assert batched[0] == compiled.fact_marginals()
        for row, table in zip(rows, batched):
            # Scalar reference: one weighted downward pass per row.
            weights = compiled._fact_variable_weights(row)
            counts = compiled.circuit.literal_counts(weights)
            anchor = compiled._facts.var(facts[0])
            total = counts[anchor] + counts[-anchor]
            for fact in facts:
                expected = Fraction(
                    counts[compiled._facts.var(fact)]
                ) / Fraction(total)
                assert table[fact] == expected


class TestSolveFacade:
    def test_wrappers_delegate_to_solve(self):
        db, query = _random_instance(7)
        assert count_valuations(db, query) == solve("val", db, query).count
        assert count_completions(db, query) == solve("comp", db, query).count
        weights = {
            null: {value: 2 for value in db.domain_of(null)}
            for null in db.nulls
        }
        assert (
            count_valuations_weighted(db, query, weights=weights)
            == solve("val-weighted", db, query, weights=weights).count
        )

    def test_answer_structure(self):
        db, query = _random_instance(8)
        answer = solve("val", db, query)
        assert isinstance(answer, Answer)
        assert answer.problem == "val"
        assert answer.plan.chosen == answer.method
        assert answer.seconds >= 0.0
        assert set(answer.stats) <= {"phases", "counters"}

    def test_sweep_matches_looped_weighted_counts(self):
        db, query = scaling_hard_val_instance(7, seed=7)
        rng = random.Random(7)
        rows = [None] + [
            {
                null: {
                    value: rng.randrange(1, 5)
                    for value in sorted(db.domain_of(null), key=repr)
                }
                for null in db.nulls
            }
            for _ in range(5)
        ]
        looped = [
            count_valuations_weighted(db, query, weights=row) for row in rows
        ]
        for method in ("auto", "circuit", "brute"):
            assert count_valuations_sweep(
                db, query, rows, method=method
            ) == looped

    def test_sweep_single_occurrence_cell(self):
        db = parse_database("domain a b c\nR(?n1, a)\nS(?n2)")
        query = parse_query("R(x, y), S(z)")
        assert resolve_sweep_method(db, query, "auto") == "single-occurrence"
        rows = [
            None,
            {
                null: {
                    value: 1 + position
                    for position, value in enumerate(
                        sorted(db.domain_of(null), key=repr)
                    )
                }
                for null in db.nulls
            },
        ]
        looped = [
            count_valuations_weighted(db, query, weights=row) for row in rows
        ]
        assert count_valuations_sweep(db, query, rows) == looped
        assert count_valuations_sweep(
            db, query, rows, method="circuit"
        ) == looped

    def test_plan_sweep_reports_problem(self):
        db, query = _random_instance(1)
        built = plan_sweep(db, query)
        assert built.problem == "sweep"
        assert built.chosen is not None


class TestEngineSweepJobs:
    def test_job_validation(self):
        db, query = _random_instance(0)
        with pytest.raises(ValueError):
            CountJob("sweep", db, query, weights=None)
        with pytest.raises(ValueError):
            CountJob(
                "sweep", db, query,
                weights={db.nulls[0]: {next(iter(db.domain_of(db.nulls[0]))): 1}},
            )
        job = CountJob("sweep", db, query, weights=[None, {}])
        assert isinstance(job.weights, tuple)

    def test_execute_and_dedup(self):
        db, query = _random_instance(2)
        rng = random.Random(2)
        rows = _int_rows(db, rng, 5, low=1, high=4)
        job = CountJob("sweep", db, query, weights=rows, label="a")
        twin = CountJob("sweep", db, query, weights=list(rows), label="b")
        assert fingerprint_job(job) == fingerprint_job(twin)
        assert needs_circuit(job) == (
            resolve_sweep_method(db, query, "auto") == "circuit"
        )
        result = execute_job(job)
        assert result.ok
        assert result.count == [
            count_valuations_weighted(db, query, weights=row) for row in rows
        ]
        results = BatchEngine(workers=0).run([job, twin])
        assert results[0].count == results[1].count == result.count
        assert results[1].cache_hit

    def test_jsonl_round_trip(self):
        line = json.dumps({
            "problem": "sweep",
            "db_text": "domain a b\nR(?n1, a)\nS(?n1)",
            "query": "R(x, y), S(x)",
            "weights": [{"n1": {"a": 3, "b": 1}}, None, {}],
            "label": "sweep-job",
        })
        jobs = list(read_jobs(io.StringIO(line)))
        assert jobs[0].problem == "sweep"
        assert len(jobs[0].weights) == 3
        result = execute_job(jobs[0])
        assert result.ok
        buffer = io.StringIO()
        write_results(buffer, [result])
        buffer.seek(0)
        restored = list(read_results(buffer))
        assert restored[0].count == result.count
        assert restored[0].problem == "sweep"

    def test_jsonl_rejects_non_array_sweep_weights(self):
        line = json.dumps({
            "problem": "sweep",
            "db_text": "domain a b\nR(?n1, a)",
            "query": "R(x, y)",
            "weights": {"n1": {"a": 1, "b": 1}},
        })
        with pytest.raises(JobSyntaxError):
            list(read_jobs(io.StringIO(line)))


class TestSweepCli:
    DB_TEXT = "domain a b\nR(?n1, a)\nS(?n1)\n"

    def _db_file(self, tmp_path):
        path = tmp_path / "sweep.idb"
        path.write_text(self.DB_TEXT, encoding="utf-8")
        return str(path)

    def test_inline_weights_json(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--db", self._db_file(tmp_path),
            "--query", "R(x, y), S(x)",
            "--weights", '[{"n1": {"a": 3, "b": 1}}, null]',
            "--json",
        ])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        db = parse_database(self.DB_TEXT)
        query = parse_query("R(x, y), S(x)")
        null = db.nulls[0]
        by_text = {str(v): v for v in db.domain_of(null)}
        expected = [
            count_valuations_weighted(
                db, query,
                weights={null: {by_text["a"]: 3, by_text["b"]: 1}},
            ),
            count_valuations_weighted(db, query),
        ]
        assert record["counts"] == expected
        assert record["rows"] == 2

    def test_weights_jsonl_file(self, tmp_path, capsys):
        from repro.cli import main

        rows_path = tmp_path / "rows.jsonl"
        rows_path.write_text(
            '{"n1": {"a": 2, "b": 1}}\nnull\n{}\n', encoding="utf-8"
        )
        code = main([
            "sweep", "--db", self._db_file(tmp_path),
            "--query", "R(x, y), S(x)",
            "--weights-jsonl", str(rows_path),
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3

    def test_rejects_unknown_null(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--db", self._db_file(tmp_path),
            "--query", "R(x, y), S(x)",
            "--weights", '[{"nope": {"a": 1}}]',
        ])
        assert code == 2
