"""Snapshot of the package's public surface.

``repro.__all__`` and the facade signatures are a compatibility contract:
this test pins both, so any rename, removal, or signature change shows up
as an explicit diff here instead of as a silent break for downstream code.
"""

import inspect

import repro


EXPECTED_ALL = [
    "Atom",
    "BCQ",
    "Const",
    "Negation",
    "UCQ",
    "Var",
    "classify",
    "Database",
    "Fact",
    "IncompleteDatabase",
    "Null",
    "Answer",
    "NoPolynomialAlgorithm",
    "Plan",
    "count_completions",
    "count_valuations",
    "count_valuations_sweep",
    "count_valuations_weighted",
    "plan_completions",
    "plan_sweep",
    "plan_valuations",
    "plan_valuations_weighted",
    "solve",
    "__version__",
]


class TestPublicSurface:
    def test_all_is_pinned(self):
        assert repro.__all__ == EXPECTED_ALL

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_solve_signature(self):
        assert str(inspect.signature(repro.solve)) == (
            "(problem: 'str', db: 'IncompleteDatabase', "
            "query: 'BooleanQuery | None' = None, *, method: 'str' = 'auto', "
            "weights: 'Any' = None, budget: 'int | None' = 2000000) "
            "-> 'Answer'"
        )

    def test_wrapper_signatures(self):
        assert str(inspect.signature(repro.count_valuations)) == (
            "(db: 'IncompleteDatabase', query: 'BooleanQuery', "
            "method: 'str' = 'auto', budget: 'int | None' = 2000000) "
            "-> 'int'"
        )
        assert str(inspect.signature(repro.count_valuations_sweep)) == (
            "(db: 'IncompleteDatabase', query: 'BooleanQuery', "
            "weight_rows, method: 'str' = 'auto', "
            "budget: 'int | None' = 2000000) -> 'list'"
        )

    def test_answer_fields(self):
        import dataclasses

        fields = [f.name for f in dataclasses.fields(repro.Answer)]
        assert fields == [
            "problem", "count", "method", "plan", "seconds", "stats",
        ]
