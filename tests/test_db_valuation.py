"""Tests for valuations and completions (the paper's Section 2 examples)."""

import pytest
from hypothesis import given, settings

from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import (
    apply_valuation,
    completions_with_multiplicity,
    count_total_valuations,
    iter_completions,
    iter_valuations,
)

from tests.conftest import small_incomplete_dbs


class TestExample21:
    """Example 2.1 of the paper, verbatim."""

    @pytest.fixture
    def db(self):
        facts = [Fact("S", [Null(1), Null(1)]), Fact("S", ["a", Null(2)])]
        return IncompleteDatabase(
            facts, dom={Null(1): ["a", "b"], Null(2): ["a", "c"]}
        )

    def test_valuation_nu1(self, db):
        completion = apply_valuation(db, {Null(1): "b", Null(2): "c"})
        assert completion == Database(
            [Fact("S", ["b", "b"]), Fact("S", ["a", "c"])]
        )

    def test_valuation_nu2_collapses(self, db):
        completion = apply_valuation(db, {Null(1): "a", Null(2): "a"})
        assert completion == Database([Fact("S", ["a", "a"])])
        assert len(completion) == 1

    def test_out_of_domain_map_is_not_a_valuation(self, db):
        with pytest.raises(ValueError):
            apply_valuation(db, {Null(1): "b", Null(2): "b"})

    def test_missing_null_rejected(self, db):
        with pytest.raises(ValueError):
            apply_valuation(db, {Null(1): "a"})


class TestFigure1:
    """Figure 1 / Example 2.2: all six valuations and their completions."""

    def test_six_valuations(self, figure1_db):
        assert count_total_valuations(figure1_db) == 6
        assert sum(1 for _ in iter_valuations(figure1_db)) == 6

    def test_five_distinct_completions(self, figure1_db):
        # Reading Figure 1's completion row: the valuations (a,a) and (a,b)
        # collapse to the same completion {S(a,b), S(a,a)}; the other four
        # are pairwise distinct, so 5 distinct completions in total.
        completions = list(iter_completions(figure1_db))
        assert len(completions) == 5
        histogram = completions_with_multiplicity(figure1_db)
        assert sum(histogram.values()) == 6
        assert sorted(histogram.values(), reverse=True) == [2, 1, 1, 1, 1]

    def test_multiplicity_identity(self, figure1_db):
        histogram = completions_with_multiplicity(figure1_db)
        assert sum(histogram.values()) == count_total_valuations(figure1_db)


class TestGeneralProperties:
    def test_ground_table_has_one_valuation(self):
        db = IncompleteDatabase.uniform([Fact("R", ["a"])], ["a", "b"])
        assert count_total_valuations(db) == 1
        assert list(iter_valuations(db)) == [{}]
        assert list(iter_completions(db)) == [Database([Fact("R", ["a"])])]

    def test_empty_domain_kills_valuations(self):
        db = IncompleteDatabase([Fact("R", [Null(1)])], dom={Null(1): []})
        assert count_total_valuations(db) == 0
        assert list(iter_valuations(db)) == []

    @given(small_incomplete_dbs())
    @settings(max_examples=30, deadline=None)
    def test_enumeration_matches_product(self, db):
        assert sum(1 for _ in iter_valuations(db)) == count_total_valuations(db)

    @given(small_incomplete_dbs())
    @settings(max_examples=30, deadline=None)
    def test_completions_are_deduplicated(self, db):
        completions = list(iter_completions(db))
        assert len(completions) == len(set(completions))
        assert len(completions) <= max(count_total_valuations(db), 1)

    @given(small_incomplete_dbs())
    @settings(max_examples=30, deadline=None)
    def test_completion_sizes_bounded_by_table(self, db):
        """Set semantics can only shrink the fact count."""
        for completion in iter_completions(db):
            assert len(completion) <= len(db.facts)
