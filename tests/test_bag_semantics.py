"""Tests for the bag-semantics extension (Section 8 future work)."""

import pytest
from hypothesis import given, settings

from repro.core.query import Atom, BCQ
from repro.db.bag_semantics import (
    BagDatabase,
    apply_valuation_bag,
    count_bag_completions,
    iter_bag_completions,
)
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute, count_valuations_brute

from tests.conftest import small_incomplete_dbs


class TestBagDatabase:
    def test_multiplicities(self):
        bag = BagDatabase([Fact("R", ["a"]), Fact("R", ["a"]), Fact("R", ["b"])])
        assert bag.multiplicity(Fact("R", ["a"])) == 2
        assert bag.multiplicity(Fact("R", ["z"])) == 0
        assert len(bag) == 3
        assert len(bag.to_set_database()) == 2

    def test_rejects_nulls(self):
        with pytest.raises(ValueError):
            BagDatabase([Fact("R", [Null(1)])])

    def test_equality_sees_multiplicity(self):
        once = BagDatabase([Fact("R", ["a"])])
        twice = BagDatabase([Fact("R", ["a"]), Fact("R", ["a"])])
        assert once != twice
        assert once.to_set_database() == twice.to_set_database()


class TestBagCompletions:
    def test_bag_distinguishes_collapsed_valuations(self):
        """Example 2.1 revisited: ν2 collapses S(⊥1,⊥1), S(a,⊥2) to one
        fact under set semantics, but the bag remembers both occurrences."""
        db = IncompleteDatabase(
            [Fact("S", [Null(1), Null(1)]), Fact("S", ["a", Null(2)])],
            dom={Null(1): ["a", "b"], Null(2): ["a", "c"]},
        )
        bag = apply_valuation_bag(db, {Null(1): "a", Null(2): "a"})
        assert bag.multiplicity(Fact("S", ["a", "a"])) == 2

    def test_sandwich_inequality(self):
        """#Comp <= #Comp_bag <= #Val on the Figure 1 database."""
        db = IncompleteDatabase(
            [
                Fact("S", ["a", "b"]),
                Fact("S", [Null(1), "a"]),
                Fact("S", ["a", Null(2)]),
            ],
            dom={Null(1): ["a", "b", "c"], Null(2): ["a", "b"]},
        )
        query = BCQ([Atom("S", ["x", "x"])])
        set_count = count_completions_brute(db, query)
        bag_count = count_bag_completions(db, query)
        val_count = count_valuations_brute(db, query)
        assert set_count <= bag_count <= val_count
        # Figure 1 concretely: 3 < 4 = 4 (distinct facts per valuation,
        # so every satisfying valuation gives a distinct bag).
        assert (set_count, bag_count, val_count) == (3, 4, 4)

    def test_bag_can_still_collapse(self):
        """Swapping two interchangeable nulls yields the same bag: bag
        semantics does not always equal valuation counting."""
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null(1)]), Fact("R", [Null(2)])], ["a", "b"]
        )
        bags = list(iter_bag_completions(db))
        # valuations 4; bags: {a,a},{a,b},{b,b} as multisets = 3.
        assert len(bags) == 3
        assert count_bag_completions(db) == 3
        assert count_completions_brute(db, None) == 3  # sets agree here

    def test_strict_separation_from_sets(self):
        """A case where sets < bags < valuations simultaneously."""
        db = IncompleteDatabase.uniform(
            [
                Fact("R", [Null(1)]),
                Fact("R", [Null(2)]),
                Fact("R", ["a"]),
            ],
            ["a", "b"],
        )
        sets = count_completions_brute(db, None)
        bags = count_bag_completions(db)
        vals = 4
        # sets: {a},{a,b} -> 2; bags: multiset over {a,b} with fixed 'a':
        # (a,a,a),(a,a,b),(a,b,b) -> 3
        assert (sets, bags, vals) == (2, 3, 4)

    @given(small_incomplete_dbs())
    @settings(max_examples=30, deadline=None)
    def test_sandwich_property(self, db):
        query = (
            BCQ([Atom(r, ["x"] * a) for r, a in sorted(db.schema().items())])
            if db.schema()
            else BCQ([Atom("R", ["x"])])
        )
        sets = count_completions_brute(db, query)
        bags = count_bag_completions(db, query)
        vals = count_valuations_brute(db, query)
        assert sets <= bags <= vals
