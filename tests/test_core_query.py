"""Tests for the query model (atoms, BCQ, UCQ, negation, custom)."""

import pytest

from repro.core.query import (
    Atom,
    BCQ,
    Const,
    CustomQuery,
    Negation,
    UCQ,
    Var,
    sjf_bcq,
)
from repro.db.database import Database
from repro.db.fact import Fact


class TestAtom:
    def test_string_coercion(self):
        atom = Atom("R", ["x", "y"])
        assert atom.terms == (Var("x"), Var("y"))

    def test_constants(self):
        atom = Atom("R", ["x", Const(5)])
        assert atom.variables() == [Var("x")]
        assert not atom.is_variable_only()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Atom("R", [])
        with pytest.raises(ValueError):
            Atom("", ["x"])
        with pytest.raises(TypeError):
            Atom("R", [42])  # bare non-str constants must be wrapped

    def test_occurrence_count(self):
        atom = Atom("R", ["x", "y", "x"])
        assert atom.occurrence_count(Var("x")) == 2
        assert atom.occurrence_count(Var("z")) == 0
        assert atom.has_repeated_variable()
        assert not Atom("R", ["x", "y"]).has_repeated_variable()


class TestBCQ:
    def test_needs_one_atom(self):
        with pytest.raises(ValueError):
            BCQ([])

    def test_self_join_detection(self):
        query = BCQ([Atom("R", ["x"]), Atom("R", ["y"])])
        assert not query.is_self_join_free
        assert BCQ([Atom("R", ["x"]), Atom("S", ["y"])]).is_self_join_free

    def test_variables_in_first_occurrence_order(self):
        query = BCQ([Atom("R", ["y", "x"]), Atom("S", ["z", "x"])])
        assert query.variables() == [Var("y"), Var("x"), Var("z")]
        assert query.occurrence_count(Var("x")) == 2
        assert [a.relation for a in query.atoms_containing(Var("x"))] == [
            "R",
            "S",
        ]

    def test_semantic_flags(self):
        query = BCQ([Atom("R", ["x"]), Atom("S", ["x", "y"])])
        assert query.is_monotone
        assert query.minimal_model_bound == 2

    def test_sjf_constructor_guards(self):
        with pytest.raises(ValueError):
            sjf_bcq([Atom("R", ["x"]), Atom("R", ["x"])])
        with pytest.raises(ValueError):
            sjf_bcq([Atom("R", [Const("a")])])
        assert sjf_bcq([Atom("R", ["x"])]).is_self_join_free


class TestUCQNegation:
    def test_ucq_relations(self):
        ucq = UCQ([BCQ([Atom("R", ["x"])]), BCQ([Atom("S", ["x"])])])
        assert ucq.relations == {"R", "S"}
        assert ucq.is_monotone
        assert ucq.minimal_model_bound == 1

    def test_ucq_needs_disjunct(self):
        with pytest.raises(ValueError):
            UCQ([])

    def test_negation(self):
        inner = BCQ([Atom("R", ["x"])])
        negation = Negation(inner)
        assert negation.relations == {"R"}
        assert not negation.is_monotone
        assert negation.inner is inner

    def test_equality(self):
        q1 = BCQ([Atom("R", ["x"])])
        q2 = BCQ([Atom("R", ["x"])])
        assert q1 == q2
        assert Negation(q1) == Negation(q2)
        assert UCQ([q1]) == UCQ([q2])


class TestCustomQuery:
    def test_decision_procedure(self):
        query = CustomQuery(
            "has-two-facts",
            relations=("R",),
            decide=lambda db: len(db) >= 2,
        )
        assert not query.decide(Database([Fact("R", ["a"])]))
        assert query.decide(Database([Fact("R", ["a"]), Fact("R", ["b"])]))
        assert query.relations == {"R"}
        assert query.minimal_model_bound is None
