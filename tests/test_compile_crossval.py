"""Randomized cross-validation: lineage == brute (== poly) on small instances.

Every instance is small enough for the brute-force ground truth, drawn
with fixed seeds from :mod:`repro.workloads.generators` across the four
Table 1 table-flavors (uniform/non-uniform × Codd/naive).  Where a
polynomial algorithm applies, it must agree too — three independent
implementations of the same count.
"""

import pytest

from repro.core.query import Atom, BCQ, Const, UCQ
from repro.exact.brute import count_completions_brute, count_valuations_brute
from repro.exact.dispatch import (
    NoPolynomialAlgorithm,
    count_completions,
    count_valuations,
    resolve_completion_method,
    resolve_valuation_method,
)
from repro.workloads.generators import (
    random_incomplete_db,
    scaling_hard_comp_instance,
    scaling_hard_val_instance,
)

QUERIES = [
    BCQ([Atom("R", ["x", "y"])]),
    BCQ([Atom("R", ["x", "x"])]),
    BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])]),
    BCQ([Atom("R", ["x", "x"]), Atom("S", ["x"])]),
    BCQ([Atom("R", ["x", "y"]), Atom("R", ["y", "z"])]),  # self-join
    BCQ([Atom("R", [Const("v0"), "y"]), Atom("S", ["y"])]),  # constant
    UCQ([BCQ([Atom("R", ["x", "x"])]), BCQ([Atom("S", ["z"])])]),
]

FLAVORS = [
    ("uniform-naive", True, False),
    ("uniform-codd", True, True),
    ("nonuniform-naive", False, False),
    ("nonuniform-codd", False, True),
]


@pytest.mark.parametrize("flavor,uniform,codd", FLAVORS)
@pytest.mark.parametrize("seed", range(8))
def test_valuations_lineage_matches_brute_and_poly(seed, flavor, uniform, codd):
    db = random_incomplete_db(
        {"R": 2, "S": 1},
        seed=seed,
        num_nulls=3,
        domain_size=3,
        uniform=uniform,
        codd=codd,
    )
    for query in QUERIES:
        expected = count_valuations_brute(db, query)
        assert count_valuations(db, query, method="lineage") == expected
        try:
            poly = count_valuations(db, query, method="poly")
        except NoPolynomialAlgorithm:
            pass
        else:
            assert poly == expected


@pytest.mark.parametrize("flavor,uniform,codd", FLAVORS)
@pytest.mark.parametrize("seed", range(8))
def test_completions_lineage_matches_brute_and_poly(seed, flavor, uniform, codd):
    db = random_incomplete_db(
        {"R": 2, "S": 1},
        seed=seed,
        num_nulls=3,
        domain_size=3,
        uniform=uniform,
        codd=codd,
    )
    for query in list(QUERIES) + [None]:
        expected = count_completions_brute(db, query)
        assert count_completions(db, query, method="lineage") == expected
        try:
            poly = count_completions(db, query, method="poly")
        except NoPolynomialAlgorithm:
            pass
        else:
            assert poly == expected


@pytest.mark.parametrize("size", [3, 5, 7])
def test_hard_val_family_small_sizes(size):
    db, query = scaling_hard_val_instance(size, chord_probability=0.3, seed=size)
    # Small cycles keep the lineage treewidth low, so auto now routes the
    # hard cell to the tree-decomposition DP instead of the trail search.
    assert resolve_valuation_method(db, query) == "dpdb"
    assert count_valuations(db, query) == count_valuations_brute(db, query)


@pytest.mark.parametrize("size", [3, 5, 7])
def test_hard_comp_family_small_sizes(size):
    db, query = scaling_hard_comp_instance(size, seed=size)
    for q in (None, query):
        # At these sizes the projection-constrained width is still small,
        # so auto picks the projected DP over the trail search.
        assert resolve_completion_method(db, q) == "dpdb"
        assert count_completions(db, q) == count_completions_brute(db, q)


class TestAutoSelection:
    def test_auto_prefers_poly_then_lineage(self):
        # Hard cell (R(x,x), naive non-uniform): auto resolves to the
        # width-bounded DP (the instance's elimination width is tiny).
        from repro.db.fact import Fact
        from repro.db.incomplete import IncompleteDatabase
        from repro.db.terms import Null

        db = IncompleteDatabase(
            [Fact("R", [Null(1), Null(1)])], dom={Null(1): ["a", "b"]}
        )
        assert resolve_valuation_method(db, BCQ([Atom("R", ["x", "x"])])) == (
            "dpdb"
        )
        # Tractable cell: auto keeps the polynomial algorithm.
        assert resolve_valuation_method(db, BCQ([Atom("R", ["x", "y"])])) == (
            "single-occurrence"
        )

    def test_auto_falls_back_to_brute_for_opaque_queries(self):
        from repro.core.query import CustomQuery
        from repro.db.fact import Fact
        from repro.db.incomplete import IncompleteDatabase
        from repro.db.terms import Null

        db = IncompleteDatabase(
            [Fact("R", [Null(1)])], dom={Null(1): ["a", "b"]}
        )
        opaque = CustomQuery("nonempty", ["R"], lambda d: len(d) > 0)
        assert resolve_valuation_method(db, opaque) == "brute"
        assert resolve_completion_method(db, opaque) == "brute"
        assert count_valuations(db, opaque) == 2
