"""Delta records and the update surface of :class:`IncompleteDatabase`.

Covers the four delta kinds (resolve, restrict, insert, delete), the
``apply`` provenance chain, the ``without_facts``/``resolve`` helpers,
validation errors, canonical delta forms, and the derivation
fingerprints layered on top.
"""

import pytest

from repro.db.deltas import (
    DeleteFacts,
    InsertFacts,
    ResolveNull,
    RestrictDomain,
    delta_form,
    is_delta,
    resolution_only,
)
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.engine.fingerprint import (
    fingerprint_delta,
    fingerprint_derivation,
    fingerprint_instance,
)
from repro.io.databases import DatabaseSyntaxError, parse_delta

N1 = Null("n1")
N2 = Null("n2")


def small_db():
    return IncompleteDatabase(
        [Fact("R", ("a", N1)), Fact("R", (N2, "b")), Fact("S", ("a", "b"))],
        uniform_domain=["a", "b", "c"],
    )


# -- record validation ------------------------------------------------------


def test_resolve_record_validation():
    delta = ResolveNull(N1, "a")
    assert is_delta(delta) and resolution_only(delta)
    with pytest.raises(ValueError):
        ResolveNull("n1", "a")  # null must be a Null
    with pytest.raises(ValueError):
        ResolveNull(N1, N2)  # value must be a constant


def test_restrict_record_validation():
    delta = RestrictDomain(N1, frozenset({"a", "b"}))
    assert resolution_only(delta)
    assert delta.values == frozenset({"a", "b"})
    with pytest.raises(ValueError):
        RestrictDomain(N1, frozenset())
    with pytest.raises(ValueError):
        RestrictDomain(N1, frozenset({N2}))


def test_insert_delete_record_validation():
    insert = InsertFacts(frozenset({Fact("R", ("a",))}))
    delete = DeleteFacts(frozenset({Fact("R", ("a",))}))
    assert not resolution_only(insert)
    assert not resolution_only(delete)
    with pytest.raises(ValueError):
        InsertFacts(frozenset())
    with pytest.raises(ValueError):
        DeleteFacts(frozenset())
    assert not is_delta("resolve")


def test_delta_forms_are_canonical():
    a = RestrictDomain(N1, frozenset({"b", "a"}))
    b = RestrictDomain(N1, frozenset({"a", "b"}))
    assert delta_form(a) == delta_form(b)
    assert fingerprint_delta(a) == fingerprint_delta(b)
    assert delta_form(a) != delta_form(ResolveNull(N1, "a"))
    two = InsertFacts(frozenset({Fact("R", ("a",)), Fact("R", ("b",))}))
    assert delta_form(two)[0] == "insert"


# -- apply semantics --------------------------------------------------------


def test_apply_resolve_substitutes_and_links_provenance():
    db = small_db()
    child = db.apply(ResolveNull(N1, "b"))
    assert Fact("R", ("a", "b")) in child.facts
    assert N1 not in child.nulls
    assert child.parent is db
    assert child.delta == ResolveNull(N1, "b")
    assert db.parent is None and db.delta is None


def test_apply_restrict_shrinks_domain():
    db = small_db()
    child = db.apply(RestrictDomain(N2, frozenset({"a", "c"})))
    assert set(child.domain_of(N2)) == {"a", "c"}
    # untouched null keeps its full domain
    assert set(child.domain_of(N1)) == {"a", "b", "c"}
    with pytest.raises(ValueError):
        db.apply(RestrictDomain(N2, frozenset({"z"})))  # outside the domain


def test_apply_restrict_to_full_domain_stays_uniform():
    db = small_db()
    child = db.apply(RestrictDomain(N2, frozenset({"a", "b", "c"})))
    assert child.is_uniform


def test_apply_insert_and_delete():
    db = small_db()
    grown = db.apply(InsertFacts(frozenset({Fact("T", ("c",))})))
    assert Fact("T", ("c",)) in grown.facts
    shrunk = grown.apply(DeleteFacts(frozenset({Fact("T", ("c",))})))
    assert Fact("T", ("c",)) not in shrunk.facts
    assert shrunk.parent is grown and grown.parent is db


def test_apply_insert_with_new_null_domain():
    db = small_db()
    n3 = Null("n3")
    child = db.apply(
        InsertFacts(
            frozenset({Fact("T", (n3,))}), dom={n3: frozenset({"a", "b"})}
        )
    )
    assert set(child.domain_of(n3)) == {"a", "b"}
    # a uniform table gives an undeclared new null the shared domain
    inherited = db.apply(InsertFacts(frozenset({Fact("T", (Null("n4"),))})))
    assert set(inherited.domain_of(Null("n4"))) == {"a", "b", "c"}
    # a non-uniform table has no domain to fall back to: rejected
    non_uniform = IncompleteDatabase(
        [Fact("R", (N1,))], dom={N1: ["a", "b"]}
    )
    with pytest.raises((ValueError, KeyError)):
        non_uniform.apply(InsertFacts(frozenset({Fact("T", (Null("n5"),))})))


def test_apply_rejects_unknown_delta():
    with pytest.raises(TypeError):
        small_db().apply("resolve n1=a")


def test_provenance_is_excluded_from_equality():
    db = small_db()
    child = db.apply(ResolveNull(N1, "b"))
    twin = IncompleteDatabase(
        child.facts, uniform_domain=child.uniform_domain
    )
    assert child == twin
    assert hash(child) == hash(twin)
    assert twin.parent is None


# -- satellite helpers ------------------------------------------------------


def test_without_facts_is_strict():
    db = small_db()
    child = db.without_facts([Fact("S", ("a", "b"))])
    assert Fact("S", ("a", "b")) not in child.facts
    with pytest.raises(ValueError):
        db.without_facts([Fact("S", ("zzz", "zzz"))])


def test_resolve_helper_validates_domain():
    db = small_db()
    child = db.resolve(N1, "c")
    assert Fact("R", ("a", "c")) in child.facts
    with pytest.raises(KeyError):
        db.resolve(Null("ghost"), "a")
    with pytest.raises(ValueError):
        db.resolve(N1, "zzz")


# -- chains and fingerprints ------------------------------------------------


def test_chain_provenance_and_fingerprints():
    db = small_db()
    c1 = db.apply(ResolveNull(N1, "b"))
    c2 = c1.apply(RestrictDomain(N2, frozenset({"a"})))
    assert c2.parent is c1 and c1.parent is db

    # content-based instance fingerprint: derived child and from-scratch
    # twin share one fingerprint (and hence one cache slot)
    twin = IncompleteDatabase(c2.facts, dom={N2: c2.domain_of(N2)})
    assert fingerprint_instance(c2, None, "val") == fingerprint_instance(
        twin, None, "val"
    )

    # derivation fingerprint exists only with provenance, and separates
    # different deltas from the same parent
    assert fingerprint_derivation(db, None) is None
    d1 = fingerprint_derivation(c1, None)
    other = db.apply(ResolveNull(N1, "a"))
    assert d1 is not None
    assert d1 != fingerprint_derivation(other, None)


# -- text parsing -----------------------------------------------------------


def test_parse_delta_round_trips_each_kind():
    assert parse_delta("resolve", "n1=a") == ResolveNull(N1, "a")
    assert parse_delta("resolve", "?n1=a") == ResolveNull(N1, "a")
    assert parse_delta("restrict", "n2=a,b") == RestrictDomain(
        N2, frozenset({"a", "b"})
    )
    assert parse_delta("delete", "R(a, b)") == DeleteFacts(
        frozenset({Fact("R", ("a", "b"))})
    )
    parsed = parse_delta("insert", "T(?n3); U(c) where n3: a b")
    assert parsed.facts == frozenset(
        {Fact("T", (Null("n3"),)), Fact("U", ("c",))}
    )
    assert parsed.domains() == {Null("n3"): frozenset({"a", "b"})}


def test_parse_delta_rejects_malformed_text():
    with pytest.raises(DatabaseSyntaxError):
        parse_delta("resolve", "n1")  # no '='
    with pytest.raises(DatabaseSyntaxError):
        parse_delta("insert", "   ")  # no facts
    with pytest.raises(DatabaseSyntaxError):
        parse_delta("delete", "R(a) where n: a")  # delete takes no domains
    with pytest.raises(DatabaseSyntaxError):
        parse_delta("mutate", "R(a)")  # unknown kind
