"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "instance.idb"
    path.write_text(
        "domain a b\nR(?n1)\nS(?n1)\nS(a)\n", encoding="utf-8"
    )
    return str(path)


@pytest.fixture
def nonuniform_db_file(tmp_path):
    path = tmp_path / "nu.idb"
    path.write_text(
        "null n1: a b\nnull n2: a\nR(?n1, ?n2)\n", encoding="utf-8"
    )
    return str(path)


class TestClassify:
    def test_prints_table(self, capsys):
        assert main(["classify", "R(x,x)"]) == 0
        out = capsys.readouterr().out
        assert "#ValuCd" in out
        assert "#P-complete" in out

    def test_rejects_non_bcq(self, capsys):
        assert main(["classify", "!R(x)"]) == 2


class TestCount:
    def test_val(self, db_file, capsys):
        assert main(
            ["count", "--mode", "val", "--db", db_file, "--query", "R(x), S(x)"]
        ) == 0
        value = int(capsys.readouterr().out.strip())
        # brute-force check: n1 in {a,b}; R={n1}, S={n1,a}; always satisfied
        # when n1=a (R(a),S(a)); when n1=b: R(b), S contains b and a => need
        # common element: b in both => satisfied. So 2.
        assert value == 2

    def test_val_total(self, db_file, capsys):
        assert main(["count", "--mode", "val", "--db", db_file]) == 0
        assert int(capsys.readouterr().out.strip()) == 2

    def test_comp_total(self, db_file, capsys):
        assert main(["count", "--mode", "comp", "--db", db_file]) == 0
        assert int(capsys.readouterr().out.strip()) == 2

    def test_comp_poly_method(self, db_file, capsys):
        assert main(
            [
                "count", "--mode", "comp", "--db", db_file,
                "--query", "R(x), S(x)", "--method", "poly",
            ]
        ) == 0
        assert int(capsys.readouterr().out.strip()) == 2

    def test_nonuniform(self, nonuniform_db_file, capsys):
        assert main(
            [
                "count", "--mode", "val", "--db", nonuniform_db_file,
                "--query", "R(x, y)",
            ]
        ) == 0
        assert int(capsys.readouterr().out.strip()) == 2


class TestApproxAndShow:
    def test_approx(self, db_file, capsys):
        assert main(
            [
                "approx", "--db", db_file, "--query", "R(x), S(x)",
                "--epsilon", "0.2", "--seed", "7",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "events=" in out
        estimate = float(out.split()[0])
        assert abs(estimate - 2.0) <= 0.5

    def test_show(self, db_file, capsys):
        assert main(["show", "--db", db_file]) == 0
        out = capsys.readouterr().out
        assert "relations: R, S" in out
        assert "total valuations: 2" in out
