"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "instance.idb"
    path.write_text(
        "domain a b\nR(?n1)\nS(?n1)\nS(a)\n", encoding="utf-8"
    )
    return str(path)


@pytest.fixture
def nonuniform_db_file(tmp_path):
    path = tmp_path / "nu.idb"
    path.write_text(
        "null n1: a b\nnull n2: a\nR(?n1, ?n2)\n", encoding="utf-8"
    )
    return str(path)


class TestClassify:
    def test_prints_table(self, capsys):
        assert main(["classify", "R(x,x)"]) == 0
        out = capsys.readouterr().out
        assert "#ValuCd" in out
        assert "#P-complete" in out

    def test_rejects_non_bcq(self, capsys):
        assert main(["classify", "!R(x)"]) == 2


class TestCount:
    def test_val(self, db_file, capsys):
        assert main(
            ["count", "--mode", "val", "--db", db_file, "--query", "R(x), S(x)"]
        ) == 0
        value = int(capsys.readouterr().out.strip())
        # brute-force check: n1 in {a,b}; R={n1}, S={n1,a}; always satisfied
        # when n1=a (R(a),S(a)); when n1=b: R(b), S contains b and a => need
        # common element: b in both => satisfied. So 2.
        assert value == 2

    def test_val_total(self, db_file, capsys):
        assert main(["count", "--mode", "val", "--db", db_file]) == 0
        assert int(capsys.readouterr().out.strip()) == 2

    def test_comp_total(self, db_file, capsys):
        assert main(["count", "--mode", "comp", "--db", db_file]) == 0
        assert int(capsys.readouterr().out.strip()) == 2

    def test_comp_poly_method(self, db_file, capsys):
        assert main(
            [
                "count", "--mode", "comp", "--db", db_file,
                "--query", "R(x), S(x)", "--method", "poly",
            ]
        ) == 0
        assert int(capsys.readouterr().out.strip()) == 2

    def test_nonuniform(self, nonuniform_db_file, capsys):
        assert main(
            [
                "count", "--mode", "val", "--db", nonuniform_db_file,
                "--query", "R(x, y)",
            ]
        ) == 0
        assert int(capsys.readouterr().out.strip()) == 2


class TestPlan:
    def test_val_auto_explains_choice_and_rejections(self, db_file, capsys):
        assert main(
            ["plan", "--db", db_file, "--query", "R(x), S(x)"]
        ) == 0
        out = capsys.readouterr().out
        assert "chosen:" in out
        assert "considered:" in out
        # The R(x),S(x) join rules out the Theorem 3.6 closed form — the
        # rejection and its reason must both be printed.
        assert "single-occurrence" in out
        assert "share a variable" in out

    def test_comp_without_query(self, db_file, capsys):
        assert main(["plan", "--problem", "comp", "--db", db_file]) == 0
        out = capsys.readouterr().out
        assert "problem:    comp" in out
        assert "uniform-unary" in out

    def test_weighted_and_marginals_problems(self, db_file, capsys):
        assert main(
            [
                "plan", "--problem", "val-weighted", "--db", db_file,
                "--query", "R(x), S(x)",
            ]
        ) == 0
        assert "chosen:     circuit" in capsys.readouterr().out
        assert main(
            [
                "plan", "--problem", "marginals", "--db", db_file,
                "--query", "R(x), S(x)",
            ]
        ) == 0
        assert "chosen:     circuit" in capsys.readouterr().out

    def test_poly_on_hard_cell_exits_nonzero_with_analysis(
        self, tmp_path, capsys
    ):
        # R(x,x) over a non-Codd naive table: every Table 1 closed form
        # is rejected, so a poly plan cannot choose.
        hard = tmp_path / "hard.idb"
        hard.write_text("domain a b\nR(?n1, ?n1)\nR(a, b)\n", encoding="utf-8")
        assert main(
            [
                "plan", "--db", str(hard), "--query", "R(x,x)",
                "--method", "poly",
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "#P-hard" in out
        assert "considered:" in out

    def test_json_plan(self, db_file, capsys):
        import json

        assert main(
            ["plan", "--db", db_file, "--query", "R(x), S(x)", "--json"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["problem"] == "val"
        assert record["chosen"]
        assert any(
            not item["applicable"] and item["reason"]
            for item in record["considered"]
        )

    def test_unknown_method_is_a_usage_error(self, db_file, capsys):
        assert main(
            [
                "plan", "--db", db_file, "--query", "R(x), S(x)",
                "--method", "warp",
            ]
        ) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_missing_query_is_a_usage_error(self, db_file, capsys):
        assert main(["plan", "--db", db_file]) == 2


class TestBatchSummary:
    def test_summary_counts_fallbacks_and_worker_circuits(
        self, tmp_path, db_file, capsys
    ):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            '{"problem": "val", "db": "%s", "query": "R(x), S(x)"}\n'
            '{"problem": "marginals", "db": "%s", "query": "R(x), S(x)"}\n'
            % ("instance.idb", "instance.idb"),
            encoding="utf-8",
        )
        assert main(["batch", "--jobs", str(jobs), "--workers", "0"]) == 0
        err = capsys.readouterr().err
        assert "serial fallbacks" in err
        assert "worker-compiled" in err


class TestApproxAndShow:
    def test_approx(self, db_file, capsys):
        assert main(
            [
                "approx", "--db", db_file, "--query", "R(x), S(x)",
                "--epsilon", "0.2", "--seed", "7",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "events=" in out
        estimate = float(out.split()[0])
        assert abs(estimate - 2.0) <= 0.5

    def test_show(self, db_file, capsys):
        assert main(["show", "--db", db_file]) == 0
        out = capsys.readouterr().out
        assert "relations: R, S" in out
        assert "total valuations: 2" in out
