"""Tests for the pattern preorder (Definition 3.1) and its detectors."""

from hypothesis import given, settings, strategies as st

from repro.core.patterns import (
    PATTERN_BINARY,
    PATTERN_DOUBLE_EDGE,
    PATTERN_PATH,
    PATTERN_REPEAT,
    PATTERN_SHARED,
    PATTERN_UNARY,
    find_pattern_embedding,
    find_table1_patterns,
    has_atom_with_two_variables,
    has_double_edge_pattern,
    has_path_pattern,
    has_repeated_variable_atom,
    has_shared_variable,
    is_pattern_of,
)
from repro.core.query import Atom, BCQ


def q(*atoms):
    return BCQ(list(atoms))


class TestExample32:
    def test_paper_example(self):
        """Example 3.2: R'(u,u,y) ∧ S'(z) is a pattern of
        R(u,x,u) ∧ S'(y,y) ∧ T(x,s,z,s)."""
        query = q(
            Atom("R", ["u", "x", "u"]),
            Atom("Sp", ["y", "y"]),
            Atom("T", ["x", "s", "z", "s"]),
        )
        pattern = q(Atom("Rp", ["u", "u", "y"]), Atom("Sq", ["z"]))
        assert is_pattern_of(pattern, query)


class TestPreorderBasics:
    def test_reflexive(self):
        for query in (PATTERN_REPEAT, PATTERN_PATH, PATTERN_DOUBLE_EDGE):
            assert is_pattern_of(query, query)

    def test_unary_is_pattern_of_everything(self):
        for query in (
            PATTERN_REPEAT,
            PATTERN_BINARY,
            PATTERN_PATH,
            PATTERN_DOUBLE_EDGE,
            q(Atom("A", ["x", "y", "z"])),
        ):
            assert is_pattern_of(PATTERN_UNARY, query)

    def test_occurrence_deletion_not_duplication(self):
        # R(x,x) is not a pattern of R(x,y): occurrences cannot be merged.
        assert not is_pattern_of(PATTERN_REPEAT, PATTERN_BINARY)
        # R(x,y) is not a pattern of R(x,x): renaming renames *all*
        # occurrences, so the two positions cannot take different names.
        assert not is_pattern_of(PATTERN_BINARY, PATTERN_REPEAT)

    def test_atom_deletion(self):
        assert is_pattern_of(PATTERN_SHARED, PATTERN_PATH)
        assert is_pattern_of(
            PATTERN_SHARED, q(Atom("A", ["x", "u"]), Atom("B", ["x"]))
        )

    def test_atom_count_bounds(self):
        assert not is_pattern_of(PATTERN_SHARED, PATTERN_REPEAT)
        assert not is_pattern_of(PATTERN_PATH, PATTERN_DOUBLE_EDGE)

    def test_variable_injectivity(self):
        # R(x) ∧ S(y) is a pattern of R(u) ∧ S(v), but R(x) ∧ S(x) is not:
        # distinct pattern variables need distinct (shared) originals.
        two_free = q(Atom("R", ["x"]), Atom("S", ["y"]))
        assert is_pattern_of(two_free, q(Atom("R", ["u"]), Atom("S", ["v"])))
        assert not is_pattern_of(
            PATTERN_SHARED, q(Atom("R", ["u"]), Atom("S", ["v"]))
        )

    def test_reordering(self):
        assert is_pattern_of(
            q(Atom("P", ["x", "y"]), Atom("Q", ["y"])),
            q(Atom("A", ["u", "v"]), Atom("B", ["u"])),
        )

    def test_transitivity_on_table1(self):
        # chains through the canonical patterns
        assert is_pattern_of(PATTERN_UNARY, PATTERN_SHARED)
        assert is_pattern_of(PATTERN_SHARED, PATTERN_PATH)
        assert is_pattern_of(PATTERN_UNARY, PATTERN_PATH)


@st.composite
def random_sjf_queries(draw):
    """Small random variable-only sjfBCQs."""
    num_atoms = draw(st.integers(1, 3))
    variables = ["x", "y", "z", "w"]
    atoms = []
    for index in range(num_atoms):
        arity = draw(st.integers(1, 3))
        terms = [draw(st.sampled_from(variables)) for _ in range(arity)]
        atoms.append(Atom("R%d" % index, terms))
    return BCQ(atoms)


class TestDetectorsAgainstGeneralProcedure:
    """The closed-form detectors must agree with the Definition-3.1 search
    — two independent implementations of each Table-1 membership test."""

    @given(random_sjf_queries())
    @settings(max_examples=120, deadline=None)
    def test_all_detectors(self, query):
        assert has_repeated_variable_atom(query) == is_pattern_of(
            PATTERN_REPEAT, query
        )
        assert has_atom_with_two_variables(query) == is_pattern_of(
            PATTERN_BINARY, query
        )
        assert has_shared_variable(query) == is_pattern_of(
            PATTERN_SHARED, query
        )
        assert has_path_pattern(query) == is_pattern_of(PATTERN_PATH, query)
        assert has_double_edge_pattern(query) == is_pattern_of(
            PATTERN_DOUBLE_EDGE, query
        )

    @given(random_sjf_queries())
    @settings(max_examples=60, deadline=None)
    def test_find_table1_patterns_consistency(self, query):
        found = find_table1_patterns(query)
        assert found["R(x)"] is True  # always a pattern
        assert found["R(x,x)"] == has_repeated_variable_atom(query)
        assert found["R(x,y)∧S(x,y)"] == has_double_edge_pattern(query)


class TestEmbeddings:
    def test_embedding_structure(self):
        query = q(Atom("R", ["u", "x", "u"]), Atom("S", ["y"]))
        pattern = q(Atom("P", ["a", "a"]))
        embedding = find_pattern_embedding(pattern, query)
        assert embedding is not None
        assert embedding.atom_map == (0,)
        target = embedding.variable_map[pattern.atoms[0].variables()[0]]
        assert target.name == "u"
        # both pattern positions land on the two 'u' positions of R
        assert sorted(embedding.position_maps[0].values()) == [0, 2]

    def test_no_embedding_when_not_pattern(self):
        assert find_pattern_embedding(PATTERN_REPEAT, PATTERN_BINARY) is None

    @given(random_sjf_queries(), random_sjf_queries())
    @settings(max_examples=80, deadline=None)
    def test_embedding_iff_pattern(self, pattern, query):
        assert (find_pattern_embedding(pattern, query) is not None) == (
            is_pattern_of(pattern, query)
        )

    @given(random_sjf_queries(), random_sjf_queries())
    @settings(max_examples=60, deadline=None)
    def test_embedding_is_valid(self, pattern, query):
        embedding = find_pattern_embedding(pattern, query)
        if embedding is None:
            return
        # atom map injective, position maps injective & consistent
        assert len(set(embedding.atom_map)) == len(embedding.atom_map)
        assert len(set(embedding.variable_map.values())) == len(
            embedding.variable_map
        )
        for k, pattern_atom in enumerate(pattern.atoms):
            query_atom = query.atoms[embedding.atom_map[k]]
            mapping = embedding.position_maps[k]
            assert len(set(mapping.values())) == len(mapping)
            assert set(mapping) == set(range(pattern_atom.arity))
            for src, dst in mapping.items():
                source_var = pattern_atom.terms[src]
                assert (
                    query_atom.terms[dst]
                    == embedding.variable_map[source_var]
                )
