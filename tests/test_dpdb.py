"""The tree-decomposition DP backend: differential, structural, planner.

Three layers of coverage for ``method='dpdb'``:

* randomized differential — dpdb == trail core == reference core,
  bit-identically, on full *and* projected counts, plus exact weighted
  evaluation (negative ints and Fractions) against brute enumeration;
* directed structure — the decomposition's join/introduce/forget shape,
  bag invariants, the numpy/object-table boundary and the no-numpy
  scalar fallback;
* the planner seam — the width probe, the width-threshold fallback, and
  the width detail surfaced in plans.
"""

import random
from fractions import Fraction

import pytest

import repro.compile.dpdb as dpdb_module
from repro.compile.backend import (
    ValuationCircuit,
    count_completions_lineage,
    count_valuations_lineage,
)
from repro.compile.decompose import decompose
from repro.compile.dpdb import (
    DPDB_HARD_WIDTH_CAP,
    DPDB_WIDTH_LIMIT,
    count_completions_dpdb,
    count_models_dpdb,
    count_valuations_dpdb,
    count_valuations_weighted_dpdb,
    dpdb_probe,
    probe_cache_clear,
)
from repro.compile.ordering import elimination_width, primal_masks
from repro.compile.sharpsat import count_models
from repro.complexity.cnf import CNF, count_models_brute
from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.planner import plan
from repro.obs import capture
from repro.workloads.generators import (
    random_incomplete_db,
    scaling_block_comp_instance,
    scaling_grid_val_instance,
    scaling_hard_comp_instance,
    scaling_hard_val_instance,
    scaling_long_cycle_val_instance,
)


def _random_cnf(rng, max_variables=9, max_clauses=14):
    num_variables = rng.randint(1, max_variables)
    cnf = CNF(num_variables)
    for _ in range(rng.randint(0, max_clauses)):
        width = rng.randint(1, min(3, num_variables))
        chosen = rng.sample(range(1, num_variables + 1), width)
        cnf.add_clause(
            variable if rng.random() < 0.5 else -variable
            for variable in chosen
        )
    return cnf


def _weighted_brute(cnf, weights):
    """Exact weighted model 'count' by full enumeration (tiny CNFs only)."""
    total = 0
    for assignment in range(1 << cnf.num_variables):
        satisfied = all(
            any(
                (assignment >> (literal - 1)) & 1
                if literal > 0
                else not (assignment >> (-literal - 1)) & 1
                for literal in clause
            )
            for clause in cnf.clauses
        )
        if not satisfied:
            continue
        product = 1
        for variable in range(1, cnf.num_variables + 1):
            w_pos, w_neg = weights.get(variable, (1, 1))
            product *= w_pos if (assignment >> (variable - 1)) & 1 else w_neg
        total += product
    return total


class TestDifferentialSolver:
    """dpdb == trail core == reference core, bit for bit."""

    def test_full_and_projected_counts_match_both_cores(self):
        rng = random.Random(20260807)
        for _ in range(60):
            cnf = _random_cnf(rng)
            projection = frozenset(
                rng.sample(
                    range(1, cnf.num_variables + 1),
                    rng.randint(0, cnf.num_variables),
                )
            )
            full = count_models_dpdb(cnf)
            assert full == count_models(cnf)
            assert full == count_models(cnf, reference=True)
            projected = count_models_dpdb(cnf, projection=projection)
            assert projected == count_models(cnf, projection=projection)
            assert projected == count_models(
                cnf, projection=projection, reference=True
            )

    def test_weighted_counts_match_brute_enumeration(self):
        rng = random.Random(42)
        for _ in range(40):
            cnf = _random_cnf(rng, max_variables=7, max_clauses=10)
            weights = {}
            for variable in range(1, cnf.num_variables + 1):
                if rng.random() < 0.7:
                    if rng.random() < 0.5:
                        weights[variable] = (
                            rng.randint(-3, 5),
                            rng.randint(-2, 4),
                        )
                    else:
                        weights[variable] = (
                            Fraction(rng.randint(-3, 5), rng.randint(1, 4)),
                            Fraction(rng.randint(-2, 4), rng.randint(1, 3)),
                        )
            assert count_models_dpdb(cnf, weights=weights) == (
                _weighted_brute(cnf, weights)
            )

    def test_empty_clause_short_circuits_to_zero(self):
        cnf = CNF(3, [(1, 2), ()])
        stats = {}
        assert count_models_dpdb(cnf, stats=stats) == 0
        assert stats["path"] == "empty-clause"

    def test_weights_and_projection_are_mutually_exclusive(self):
        cnf = CNF(2, [(1, 2)])
        with pytest.raises(ValueError):
            count_models_dpdb(cnf, projection=[1], weights={1: (2, 1)})


class TestDifferentialFrontDoors:
    """The #Val / #Comp / weighted front doors against lineage and circuit."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances_val_and_comp(self, seed):
        db = random_incomplete_db(
            {"R": 2, "S": 1}, seed=seed, num_nulls=3, domain_size=3
        )
        query = BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])
        assert count_valuations_dpdb(db, query) == (
            count_valuations_lineage(db, query)
        )
        for q in (query, None):
            assert count_completions_dpdb(db, q) == (
                count_completions_lineage(db, q)
            )

    @pytest.mark.parametrize(
        "instance",
        [
            scaling_hard_val_instance(8),
            scaling_grid_val_instance(3, 5),
            scaling_grid_val_instance(2, 6, num_colors=3),
            scaling_long_cycle_val_instance(10, 2),
        ],
        ids=["cycle", "grid", "grid3", "ring"],
    )
    def test_low_width_val_workloads(self, instance):
        db, query = instance
        assert count_valuations_dpdb(db, query) == (
            count_valuations_lineage(db, query)
        )

    def test_block_comp_workload_projected(self):
        db, query = scaling_block_comp_instance(6, seed=3)
        probe = dpdb_probe("comp", db, query)
        assert probe.ok and probe.width <= DPDB_WIDTH_LIMIT
        assert count_completions_dpdb(db, query) == (
            count_completions_lineage(db, query)
        )

    def test_weighted_front_door_matches_circuit(self):
        db, query = scaling_hard_val_instance(7)
        rng = random.Random(7)
        weights = {
            null: {
                value: Fraction(rng.randint(-3, 5), rng.randint(1, 4))
                for value in db.domain_of(null)
            }
            for null in db.nulls
        }
        expected = ValuationCircuit(db, query).weighted_count(weights)
        assert count_valuations_weighted_dpdb(db, query, weights) == expected
        assert count_valuations_weighted_dpdb(db, query) == (
            ValuationCircuit(db, query).weighted_count()
        )


class TestTableDtypes:
    """The numpy int64 / guard / object ladder and the scalar fallback."""

    def test_small_int_counts_take_the_int64_path(self):
        stats = {}
        count_models_dpdb(CNF(4, [(1, 2), (-2, 3)]), stats=stats)
        if dpdb_module._np is None:  # pragma: no cover - no-numpy machines
            assert stats["path"] == "python"
        else:
            assert stats["path"] == "int64"

    def test_huge_counts_cross_the_int64_boundary_exactly(self):
        if dpdb_module._np is None:  # pragma: no cover
            pytest.skip("numpy unavailable")
        # 40 independent triangles: count 7^40 > 2^62, but every DP
        # intermediate is small — the guard pass proves int64 is safe and
        # the free/root combination happens in Python ints.
        cnf = CNF(120)
        for triangle in range(40):
            base = 3 * triangle
            cnf.add_clause((base + 1, base + 2, base + 3))
        stats = {}
        assert count_models_dpdb(cnf, stats=stats) == 7**40
        assert stats["path"] == "int64+guard"

    def test_huge_weights_fall_back_to_object_tables(self):
        if dpdb_module._np is None:  # pragma: no cover
            pytest.skip("numpy unavailable")
        cnf = CNF(4, [(1, 2), (3, 4)])
        big = 1 << 40
        weights = {v: (big, big) for v in range(1, 5)}
        stats = {}
        result = count_models_dpdb(cnf, weights=weights, stats=stats)
        assert stats["path"] == "object+guard"
        assert result == _weighted_brute(cnf, weights)

    def test_fraction_weights_take_the_object_path(self):
        if dpdb_module._np is None:  # pragma: no cover
            pytest.skip("numpy unavailable")
        cnf = CNF(3, [(1, -2), (2, 3)])
        weights = {1: (Fraction(1, 3), Fraction(2, 3))}
        stats = {}
        result = count_models_dpdb(cnf, weights=weights, stats=stats)
        assert stats["path"] == "object"
        assert result == _weighted_brute(cnf, weights)

    def test_python_fallback_runs_without_numpy(self, monkeypatch):
        monkeypatch.setattr(dpdb_module, "_np", None)
        rng = random.Random(99)
        for _ in range(25):
            cnf = _random_cnf(rng, max_variables=7, max_clauses=10)
            projection = frozenset(
                rng.sample(
                    range(1, cnf.num_variables + 1),
                    rng.randint(0, cnf.num_variables),
                )
            )
            stats = {}
            assert count_models_dpdb(cnf, stats=stats) == (
                count_models_brute(cnf)
            )
            assert stats["path"] == "python"
            assert count_models_dpdb(cnf, projection=projection) == (
                count_models_brute(cnf, projection=projection)
            )


class TestDecompositionStructure:
    """Directed checks of bags, parents, clause homes, and node kinds."""

    def _check_invariants(self, cnf, decomposition):
        order = decomposition.order
        for node in range(len(decomposition)):
            bag = decomposition.bags[node]
            assert (bag >> order[node]) & 1  # own vertex in own bag
            parent = decomposition.parent[node]
            if parent >= 0:
                assert parent > node  # parents later: ascending schedule
                separator = decomposition.separator(node)
                assert separator & ~decomposition.bags[parent] == 0
            else:
                assert node in decomposition.roots
        homed = 0
        for node, clauses in enumerate(decomposition.node_clauses):
            for clause in clauses:
                homed += 1
                for literal in clause:
                    assert (decomposition.bags[node] >> abs(literal)) & 1
        assert homed == sum(1 for clause in cnf.clauses if clause)

    def test_chain_is_width_one_all_forget_or_introduce(self):
        cnf = CNF(6, [(-v, v + 1) for v in range(1, 6)])
        decomposition = decompose(cnf)
        assert decomposition.width == 1
        self._check_invariants(cnf, decomposition)
        kinds = decomposition.node_kinds()
        assert kinds["join"] == 0
        assert kinds["leaf"] >= 1
        assert kinds["introduce"] + kinds["forget"] == (
            len(decomposition) - kinds["leaf"]
        )

    def test_star_of_chains_has_a_join_node(self):
        # Three chains meeting at variable 1: the shared endpoint joins.
        cnf = CNF(7, [(1, 2), (2, 3), (1, 4), (4, 5), (1, 6), (6, 7)])
        decomposition = decompose(cnf)
        self._check_invariants(cnf, decomposition)
        assert decomposition.node_kinds()["join"] >= 1
        assert count_models_dpdb(cnf) == count_models_brute(cnf)

    def test_disconnected_formula_yields_a_forest(self):
        cnf = CNF(6, [(1, 2), (3, 4), (5, 6)])
        decomposition = decompose(cnf)
        assert len(decomposition.roots) == 3
        self._check_invariants(cnf, decomposition)

    def test_free_variables_never_enter_bags(self):
        cnf = CNF(5, [(1, 2)])  # 3, 4, 5 occur in no clause
        decomposition = decompose(cnf)
        assert set(decomposition.free_variables) == {3, 4, 5}
        assert count_models_dpdb(cnf) == count_models_brute(cnf)

    def test_projected_decomposition_delays_projection_variables(self):
        cnf = CNF(4, [(1, 2), (2, 3), (3, 4)])
        projection = (2, 4)
        decomposition = decompose(cnf, projection=projection)
        positions = {
            variable: index
            for index, variable in enumerate(decomposition.order)
        }
        assert max(positions[1], positions[3]) < min(
            positions[2], positions[4]
        )
        stats = decomposition.stats()
        assert stats["width"] == decomposition.width
        assert stats["nodes"] == len(decomposition)


class TestWidthProbe:
    def test_elimination_width_on_known_graphs(self):
        chain = CNF(5, [(v, v + 1) for v in range(1, 5)])
        assert elimination_width(chain) == 1
        triangle = CNF(3, [(1, 2), (2, 3), (1, 3)])
        assert elimination_width(triangle) == 2
        clique = CNF(5, [(u, v) for u in range(1, 6) for v in range(u + 1, 6)])
        assert elimination_width(clique) == 4

    def test_primal_masks_are_cached_per_cnf(self):
        cnf = CNF(4, [(1, 2), (3, 4)])
        first = primal_masks(cnf)
        assert primal_masks(cnf) is first  # same build returned
        cnf.add_clause((2, 3))  # the builder grew: cache must invalidate
        second = primal_masks(cnf)
        assert second is not first
        assert second[2] & (1 << 3)

    def test_probe_is_memoized_and_carries_detail(self):
        probe_cache_clear()
        db, query = scaling_hard_val_instance(6)
        first = dpdb_probe("val", db, query)
        assert dpdb_probe("val", db, query) is first
        detail = first.detail()
        assert detail["width"] == first.width
        assert detail["width_limit"] == DPDB_WIDTH_LIMIT

    def test_probe_budget_overrun_reports_itself(self):
        domain = ["a", "b"]
        facts = [Fact("R", [Null(i)]) for i in range(2_100)]
        db = IncompleteDatabase(facts, uniform_domain=domain)
        probe = dpdb_probe("val", db, BCQ([Atom("R", ["x"])]))
        assert not probe.ok
        assert "over budget" in probe.reason


class TestWidthThresholdFallback:
    def test_high_width_comp_delegates_to_the_trail_core(self):
        # The projection-constrained width of this family grows linearly;
        # at size 20 it exceeds the hard cap, so the runner must delegate
        # (and say so in the obs stream) while staying bit-identical.
        db, query = scaling_hard_comp_instance(20)
        probe = dpdb_probe("comp", db, query)
        assert probe.ok and probe.width > DPDB_HARD_WIDTH_CAP
        with capture() as captured:
            result = count_completions_dpdb(db, query)
        assert result == count_completions_lineage(db, query)
        assert captured.counters.get("dpdb.fallback", 0) >= 1

    def test_planner_prefers_dpdb_only_below_the_width_limit(self):
        low_db, low_query = scaling_long_cycle_val_instance(12, 1)
        low = plan("val", low_db, low_query, "auto")
        assert low.chosen == "dpdb"
        assert "width" in low.explain()

        high_db, high_query = scaling_hard_comp_instance(20)
        high = plan("comp", high_db, high_query, "auto")
        assert high.chosen == "lineage"
        dpdb_row = next(
            item for item in high.considered if item.method == "dpdb"
        )
        assert dpdb_row.applicable  # forced dpdb stays honorable
        assert dpdb_row.cost > 10.0  # costed above the lineage tier
        assert dpdb_row.detail["width"] > DPDB_WIDTH_LIMIT

    def test_forced_dpdb_above_the_cap_still_answers_correctly(self):
        db, query = scaling_hard_comp_instance(20)
        built = plan("comp", db, query, "dpdb")
        assert built.chosen == "dpdb"
        assert count_completions_dpdb(db, query) == (
            count_completions_lineage(db, query)
        )

    def test_plan_json_carries_the_width_detail(self):
        db, query = scaling_grid_val_instance(3, 4)
        record = plan("val", db, query, "auto").to_dict()
        row = next(
            item for item in record["considered"] if item["method"] == "dpdb"
        )
        assert row["detail"]["width"] <= row["detail"]["width_limit"]
