"""Tests for the union-find structure."""

from hypothesis import given, strategies as st

from repro.util.unionfind import UnionFind, merge_tables


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(["a", "b"])
        assert uf.find("a") == "a"
        assert not uf.same("a", "b")

    def test_union_links(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.same("a", "c")
        assert not uf.same("a", "d")

    def test_lazy_registration(self):
        uf = UnionFind()
        assert "x" not in uf
        uf.find("x")
        assert "x" in uf

    def test_classes(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        uf.add(5)
        groups = {frozenset(v) for v in uf.classes().values()}
        assert groups == {frozenset({1, 2}), frozenset({3, 4}), frozenset({5})}

    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=20
        )
    )
    def test_matches_naive_partition(self, unions):
        """Union-find agrees with a naive connected-components refinement."""
        uf = UnionFind(range(10))
        parent = {i: {i} for i in range(10)}
        lookup = {i: i for i in range(10)}
        for a, b in unions:
            uf.union(a, b)
            ra, rb = lookup[a], lookup[b]
            if ra != rb:
                parent[ra] |= parent[rb]
                for member in parent[rb]:
                    lookup[member] = ra
                del parent[rb]
        for i in range(10):
            for j in range(10):
                assert uf.same(i, j) == (lookup[i] == lookup[j])


class TestMergeTables:
    def test_combines_payloads(self):
        uf = UnionFind()
        uf.union("a", "b")
        table = {"a": {1}, "b": {2}, "c": {3}}
        merged = merge_tables(uf, table, lambda x, y: x | y)
        values = sorted(map(sorted, merged.values()))
        assert values == [[1, 2], [3]]
