"""The d-DNNF circuit layer: trace recording, passes, store, CLI surface.

Circuit-level properties are checked against brute-force enumeration of
random CNFs (the circuit must reproduce the exact model count of the
search it recorded, bit for bit); the engine tests pin the amortization
contract — one instance, many question modes, one compilation — and the
cache-bound semantics (evicting a circuit drops the answers derived from
it).  Instance-level cross-validation lives in
``test_circuit_crossval.py``.
"""

import json
import random
from fractions import Fraction

import pytest

from repro.cli import main
from repro.complexity.cnf import CNF, count_models_brute
from repro.compile import ValuationCircuit
from repro.compile.circuit import DDNNF, draw_index
from repro.compile.ddnnf_trace import TraceBuilder
from repro.compile.sharpsat import ModelCounter
from repro.engine import BatchEngine, CountCache, CountJob
from repro.workloads.generators import scaling_hard_val_instance


def random_cnf(rng, max_variables=9, max_clauses=12):
    n = rng.randint(1, max_variables)
    cnf = CNF(n)
    for _ in range(rng.randint(0, max_clauses)):
        width = rng.randint(1, min(3, n))
        variables = rng.sample(range(1, n + 1), width)
        cnf.add_clause(
            v if rng.random() < 0.5 else -v for v in variables
        )
    return cnf


def traced_circuit(cnf, projection=None):
    trace = TraceBuilder()
    counter = ModelCounter(cnf, projection=projection, trace=trace)
    count = counter.count()
    assert counter.trace_root is not None
    circuit = trace.build(
        counter.trace_root, cnf.num_variables, countable=projection
    )
    return count, circuit


class TestTraceEqualsSearch:
    """The recorded circuit reproduces the search count bit for bit."""

    @pytest.mark.parametrize("seed", range(40))
    def test_full_counting(self, seed):
        rng = random.Random(seed)
        cnf = random_cnf(rng)
        brute = count_models_brute(cnf)
        plain = ModelCounter(cnf).count()
        traced, circuit = traced_circuit(cnf)
        assert plain == brute
        assert traced == brute
        assert circuit.count() == brute

    @pytest.mark.parametrize("seed", range(40, 70))
    def test_projected_counting(self, seed):
        rng = random.Random(seed)
        cnf = random_cnf(rng)
        if cnf.num_variables < 2:
            return
        projection = rng.sample(
            range(1, cnf.num_variables + 1),
            rng.randint(1, cnf.num_variables),
        )
        brute = count_models_brute(cnf, projection=projection)
        traced, circuit = traced_circuit(cnf, projection=projection)
        assert traced == brute
        assert circuit.count() == brute

    def test_unsatisfiable_formula(self):
        cnf = CNF(2, [(1,), (-1,)])
        count, circuit = traced_circuit(cnf)
        assert count == 0 == circuit.count()

    def test_empty_formula_counts_free_space(self):
        count, circuit = traced_circuit(CNF(5))
        assert count == 32 == circuit.count()

    def test_cache_hits_become_shared_nodes(self):
        # The cycle instance re-derives the same residual components from
        # both sides; every cache hit reuses a node, so the DAG is
        # smaller than a hit-free tree would be.
        from repro.compile.encode import compile_valuation_cnf

        encoding = compile_valuation_cnf(*scaling_hard_val_instance(10))
        trace = TraceBuilder()
        counter = ModelCounter(encoding.cnf, trace=trace)
        count = counter.count()
        assert counter.cache_hits > 10
        circuit = trace.build(
            counter.trace_root, encoding.cnf.num_variables
        )
        assert circuit.count() == count
        assert circuit.num_nodes <= len(counter._cache) * 4


class TestPasses:
    """Weighted evaluation, literal counts and sampling on one circuit."""

    @pytest.mark.parametrize("seed", range(12))
    def test_literal_counts_match_brute(self, seed):
        rng = random.Random(100 + seed)
        cnf = random_cnf(rng, max_variables=7)
        count, circuit = traced_circuit(cnf)
        counts = circuit.literal_counts()
        models = [
            bits
            for bits in _assignments(cnf.num_variables)
            if cnf.satisfied_by(bits)
        ]
        for variable in range(1, cnf.num_variables + 1):
            expected = sum(1 for bits in models if bits[variable - 1])
            assert counts[variable] == expected
            assert counts[-variable] == count - expected

    @pytest.mark.parametrize("seed", range(12))
    def test_weighted_evaluation_matches_brute(self, seed):
        rng = random.Random(200 + seed)
        cnf = random_cnf(rng, max_variables=7)
        _count, circuit = traced_circuit(cnf)
        weights = {
            v: (rng.randint(0, 3), rng.randint(1, 3))
            for v in range(1, cnf.num_variables + 1)
        }
        expected = 0
        for bits in _assignments(cnf.num_variables):
            if cnf.satisfied_by(bits):
                product = 1
                for v in range(1, cnf.num_variables + 1):
                    product *= weights[v][0] if bits[v - 1] else weights[v][1]
                expected += product
        assert circuit.evaluate(weights) == expected

    def test_smoothness_invariant(self):
        rng = random.Random(7)
        cnf = random_cnf(rng, max_variables=8)
        count, circuit = traced_circuit(cnf)
        counts = circuit.literal_counts()
        for variable in circuit.countable:
            assert counts[variable] + counts[-variable] == count

    def test_weight_outside_countable_rejected(self):
        cnf = CNF(3, [(1, 2)])
        _count, circuit = traced_circuit(cnf, projection=[1, 2])
        with pytest.raises(ValueError):
            circuit.evaluate({3: (2, 1)})

    def test_sampler_covers_exactly_the_models(self):
        cnf = CNF(4, [(1, 2), (-2, 3)])
        count, circuit = traced_circuit(cnf)
        models = {
            bits
            for bits in _assignments(4)
            if cnf.satisfied_by(bits)
        }
        sampler = circuit.sampler()
        rng = random.Random(99)
        seen = set()
        for _ in range(600):
            assignment = sampler.sample(rng)
            bits = tuple(assignment[v] for v in range(1, 5))
            assert bits in models
            seen.add(bits)
        assert seen == models

    def test_sampler_refuses_unsatisfiable(self):
        cnf = CNF(1, [(1,), (-1,)])
        _count, circuit = traced_circuit(cnf)
        with pytest.raises(ValueError):
            circuit.sampler()

    def test_draw_index_exact_for_fractions(self):
        rng = random.Random(5)
        weights = [Fraction(1, 3), Fraction(2, 3), 0]
        draws = [draw_index(rng, weights) for _ in range(300)]
        assert set(draws) <= {0, 1}
        assert 60 < draws.count(0) < 140  # expectation 100

    def test_structure_and_memory_accounting(self):
        db, query = scaling_hard_val_instance(8)
        compiled = ValuationCircuit(db, query)
        circuit = compiled.circuit
        assert isinstance(circuit, DDNNF)
        assert circuit.num_nodes > 2
        assert circuit.num_edges > 0
        assert circuit.memory_bytes() > 0
        assert compiled.memory_bytes() > circuit.memory_bytes()
        assert repr(circuit).startswith("DDNNF(")


class TestEngineCircuitStore:
    """One instance, many modes, one compilation — and bounded memory."""

    def setup_method(self):
        self.db, self.query = scaling_hard_val_instance(7)
        null = self.db.nulls[0]
        self.weights = {
            null: {
                value: 2 if position == 0 else 1
                for position, value in enumerate(
                    sorted(self.db.domain_of(null), key=repr)
                )
            }
        }

    def modes(self):
        return [
            CountJob("val", self.db, self.query, method="circuit", label="c"),
            CountJob(
                "val-weighted", self.db, self.query,
                weights=self.weights, label="w",
            ),
            CountJob("marginals", self.db, self.query, label="m"),
        ]

    def test_three_modes_compile_once(self):
        cache = CountCache()
        engine = BatchEngine(workers=0, cache=cache)
        results = engine.run(self.modes())
        assert all(result.ok for result in results)
        stats = cache.stats()
        assert stats["circuits"] == 1
        assert stats["circuit_misses"] == 1
        assert stats["circuit_hits"] == 2

    def test_circuit_problems_bypass_worker_pool(self):
        # Circuit jobs must amortize through the parent's store even when
        # a pool is configured.
        cache = CountCache()
        engine = BatchEngine(workers=4, cache=cache)
        results = engine.run(self.modes())
        assert all(result.ok for result in results)
        assert cache.stats()["circuits"] == 1

    def test_weighted_job_reports_circuit_method(self):
        engine = BatchEngine(workers=0)
        [result] = engine.run([self.modes()[1]])
        assert result.method == "circuit"
        assert result.count == ValuationCircuit(
            self.db, self.query
        ).weighted_count(self.weights)

    def test_marginals_job_record_is_json_ready(self):
        engine = BatchEngine(workers=0)
        [result] = engine.run([self.modes()[2]])
        assert result.ok
        json.dumps(result.to_dict())
        exact = ValuationCircuit(self.db, self.query).marginals()
        null = self.db.nulls[0]
        value = sorted(self.db.domain_of(null), key=repr)[0]
        assert result.count[repr(null)][repr(value)] == pytest.approx(
            float(exact[null][value])
        )

    def test_eviction_drops_circuit_and_memo_together(self):
        other_db, other_query = scaling_hard_val_instance(
            7, seed=4, chord_probability=0.2
        )
        size = max(
            ValuationCircuit(self.db, self.query).memory_bytes(),
            ValuationCircuit(other_db, other_query).memory_bytes(),
        )
        cache = CountCache(max_circuit_bytes=size + 100)
        engine = BatchEngine(workers=0, cache=cache)
        results = engine.run(
            [
                CountJob("marginals", self.db, self.query, label="a"),
                CountJob("marginals", other_db, other_query, label="b"),
            ]
        )
        assert all(result.ok for result in results)
        stats = cache.stats()
        assert stats["circuits"] == 1
        assert stats["circuit_evictions"] == 1
        # instance a's memo entry went down with its circuit...
        assert len(cache) == 1
        # ...so only instance b is served from cache afterwards.
        [again] = engine.run(
            [CountJob("marginals", other_db, other_query, label="b2")]
        )
        assert again.cache_hit

    def test_oversized_circuit_is_not_stored(self):
        cache = CountCache(max_circuit_bytes=1)
        engine = BatchEngine(workers=0, cache=cache)
        results = engine.run(self.modes())
        assert all(result.ok for result in results)
        assert cache.stats()["circuits"] == 0

    def test_weights_rejected_on_plain_problems(self):
        with pytest.raises(ValueError):
            CountJob("val", self.db, self.query, weights=self.weights)

    def test_non_circuit_resolutions_stay_memoizable(self):
        # A weighted job on the Theorem 3.6 cell resolves to the closed
        # form — no circuit is compiled, so the memo entry must not be
        # instance-linked (a link to an absent circuit would make the
        # cache refuse to store the answer).
        from repro.core.query import Atom, BCQ
        from repro.engine.jobs import needs_circuit
        from repro.workloads.generators import (
            scaling_single_occurrence_instance,
        )

        db, query = scaling_single_occurrence_instance(3, seed=1)
        job = CountJob("val-weighted", db, query, label="w")
        assert not needs_circuit(job)
        cache = CountCache()
        engine = BatchEngine(workers=0, cache=cache)
        [first] = engine.run([job])
        assert first.ok and first.method == "single-occurrence"
        [second] = engine.run([CountJob("val-weighted", db, query)])
        assert second.cache_hit
        # method='circuit' on an opaque query degrades to brute: same rule.
        from repro.core.query import CustomQuery

        opaque = CountJob(
            "val", db, CustomQuery("t", ["R"], lambda database: True),
            method="circuit",
        )
        assert not needs_circuit(opaque)

    def test_poisoned_jobs_stay_per_job_errors(self):
        # Batch isolation: a weights table naming an unknown null, or a
        # method invalid for the weighted problem, must surface in that
        # job's result record — never crash the whole batch (fingerprint
        # and partition paths both run before the solver catches).
        from repro.db.terms import Null

        bogus_weights = CountJob(
            "val-weighted", self.db, self.query,
            weights={Null("not-a-null"): {"c0": 1}}, label="bad-null",
        )
        bogus_method = CountJob(
            "val-weighted", self.db, self.query,
            method="lineage", label="bad-method",
        )
        good = CountJob("val", self.db, self.query, label="good")
        for workers in (0, 2):
            engine = BatchEngine(workers=workers)
            results = engine.run([bogus_weights, bogus_method, good])
            assert not results[0].ok and "not-a-null" in results[0].error
            assert not results[1].ok and "lineage" in results[1].error
            assert results[2].ok

    def test_stats_shape(self):
        stats = CountCache().stats()
        for key in (
            "entries", "hits", "misses", "hit_rate", "circuits",
            "circuit_bytes", "circuit_hits", "circuit_misses",
            "circuit_evictions", "max_circuit_bytes",
        ):
            assert key in stats


class TestCliSurface:
    @pytest.fixture
    def db_file(self, tmp_path):
        path = tmp_path / "instance.idb"
        path.write_text(
            "domain a b c\nR(?x, ?y)\nR(?y, ?x)\n", encoding="utf-8"
        )
        return str(path)

    def test_count_method_circuit(self, db_file, capsys):
        assert main(
            [
                "count", "--mode", "val", "--db", db_file,
                "--query", "R(u,u)", "--method", "circuit", "--json",
            ]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["count"] == 3
        assert record["method"] == "circuit"

    def test_explain_marginals(self, db_file, capsys):
        assert main(
            [
                "explain", "--db", db_file, "--query", "R(u,u)",
                "--marginals", "--json",
            ]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["count"] == 3
        assert record["circuit_nodes"] > 0
        for table in record["marginals"].values():
            assert sum(table.values()) == pytest.approx(1.0)

    def test_explain_weighted_marginals(self, db_file, capsys):
        assert main(
            [
                "explain", "--db", db_file, "--query", "R(u,u)",
                "--marginals", "--json",
                "--weights", '{"x": {"a": 3, "b": 1, "c": 1}}',
            ]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        table = record["marginals"]["⊥x"]
        assert table["'a'"] == pytest.approx(0.6)

    def test_explain_text_output(self, db_file, capsys):
        assert main(
            ["explain", "--db", db_file, "--query", "R(u,u)"]
        ) == 0
        out = capsys.readouterr().out
        assert "circuit:" in out
        assert "count:" in out

    def test_explain_comp_rejects_marginals(self, db_file, capsys):
        assert main(
            ["explain", "--db", db_file, "--mode", "comp", "--marginals"]
        ) == 2

    def test_explain_weights_require_marginals(self, db_file, capsys):
        assert main(
            [
                "explain", "--db", db_file, "--query", "R(u,u)",
                "--weights", '{"x": {"a": 2, "b": 1, "c": 1}}',
            ]
        ) == 2
        assert "--marginals" in capsys.readouterr().err

    def test_explain_zero_weight_marginals_fail_cleanly(self, db_file, capsys):
        assert main(
            [
                "explain", "--db", db_file, "--query", "R(u,u)",
                "--marginals",
                "--weights", '{"x": {"a": 0, "b": 0, "c": 0}}',
            ]
        ) == 1
        err = capsys.readouterr().err
        assert "nonzero weight" in err

    def test_batch_cache_mb_and_mixed_modes(self, db_file, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            "\n".join(
                [
                    json.dumps(
                        {
                            "problem": "val", "db": "instance.idb",
                            "query": "R(u,u)", "method": "circuit",
                            "label": "count",
                        }
                    ),
                    json.dumps(
                        {
                            "problem": "val-weighted", "db": "instance.idb",
                            "query": "R(u,u)",
                            "weights": {"x": {"a": 2, "b": 1, "c": 1}},
                            "label": "weighted",
                        }
                    ),
                    json.dumps(
                        {
                            "problem": "marginals", "db": "instance.idb",
                            "query": "R(u,u)", "label": "marginals",
                        }
                    ),
                ]
            )
            + "\n",
            encoding="utf-8",
        )
        assert main(
            [
                "batch", "--jobs", str(jobs), "--workers", "0",
                "--cache-mb", "16",
            ]
        ) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines()]
        assert [line["count"] for line in lines[:2]] == [3, 4]
        assert lines[2]["count"]["⊥x"]["'a'"] == pytest.approx(1 / 3)
        assert "circuits" in captured.err


def _assignments(num_variables):
    from itertools import product

    return product((False, True), repeat=num_variables)
