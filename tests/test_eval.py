"""Tests for query evaluation, certainty and the Prop. 5.2 hypotheses."""

from fractions import Fraction
from itertools import product

import pytest
from hypothesis import given, settings

from repro.core.query import Atom, BCQ, Const, CustomQuery, Negation, UCQ
from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.eval.certainty import (
    completion_support,
    is_certain,
    is_possible,
    valuation_support,
)
from repro.eval.evaluate import evaluate
from repro.eval.homomorphism import (
    count_homomorphisms,
    find_homomorphism,
    satisfies_bcq,
)
from repro.eval.minimal_models import (
    has_bounded_minimal_models,
    is_monotone_on,
    minimal_models,
)

from tests.conftest import small_incomplete_dbs


def _brute_force_satisfies(query: BCQ, database: Database) -> bool:
    """Independent evaluator: try every variable assignment."""
    domain = sorted(database.active_domain(), key=repr)
    variables = query.variables()
    for values in product(domain, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        good = True
        for atom in query.atoms:
            image = tuple(
                assignment[t] if t in assignment else t.value
                for t in atom.terms
            )
            if Fact(atom.relation, image) not in database:
                good = False
                break
        if good:
            return True
    return False


class TestHomomorphism:
    def test_simple_match(self):
        db = Database([Fact("R", ["a", "b"]), Fact("S", ["b"])])
        query = BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])
        hom = find_homomorphism(query, db)
        assert hom is not None
        assert hom[Atom("R", ["x", "y"]).terms[1]] == "b"
        assert satisfies_bcq(db, query)

    def test_join_failure(self):
        db = Database([Fact("R", ["a", "b"]), Fact("S", ["c"])])
        query = BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])
        assert not satisfies_bcq(db, query)

    def test_repeated_variable(self):
        query = BCQ([Atom("R", ["x", "x"])])
        assert not satisfies_bcq(db := Database([Fact("R", ["a", "b"])]), query)
        assert satisfies_bcq(Database([Fact("R", ["a", "a"])]), query)

    def test_constants_in_atoms(self):
        query = BCQ([Atom("R", [Const("a"), "y"])])
        assert satisfies_bcq(Database([Fact("R", ["a", "b"])]), query)
        assert not satisfies_bcq(Database([Fact("R", ["b", "a"])]), query)

    def test_empty_relation(self):
        query = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
        assert not satisfies_bcq(Database([Fact("R", ["a"])]), query)

    def test_count_homomorphisms(self):
        db = Database([Fact("R", ["a"]), Fact("R", ["b"]), Fact("S", ["a"])])
        assert count_homomorphisms(BCQ([Atom("R", ["x"])]), db) == 2
        assert (
            count_homomorphisms(
                BCQ([Atom("R", ["x"]), Atom("S", ["y"])]), db
            )
            == 2
        )
        assert (
            count_homomorphisms(
                BCQ([Atom("R", ["x"]), Atom("S", ["x"])]), db
            )
            == 1
        )

    @given(small_incomplete_dbs())
    @settings(max_examples=40, deadline=None)
    def test_matches_assignment_enumeration(self, db):
        from repro.db.valuation import apply_valuation, iter_valuations

        queries = [
            BCQ([Atom(r, ["x"] * a) for r, a in sorted(db.schema().items())])
        ] if db.schema() else []
        for query in queries:
            for valuation in iter_valuations(db):
                complete = apply_valuation(db, valuation)
                assert satisfies_bcq(complete, query) == (
                    _brute_force_satisfies(query, complete)
                )
                break  # one valuation per db keeps the test fast


class TestEvaluateDispatch:
    def test_ucq_and_negation(self):
        db = Database([Fact("R", ["a"])])
        r = BCQ([Atom("R", ["x"])])
        s = BCQ([Atom("S", ["x"])])
        assert evaluate(UCQ([s, r]), db)
        assert not evaluate(UCQ([s]), db)
        assert evaluate(Negation(s), db)
        assert not evaluate(Negation(r), db)

    def test_custom(self):
        query = CustomQuery("even", ("R",), lambda db: len(db) % 2 == 0)
        assert evaluate(query, Database())
        assert not evaluate(query, Database([Fact("R", ["a"])]))

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            evaluate(object(), Database())


class TestCertainty:
    @pytest.fixture
    def db(self):
        return IncompleteDatabase(
            [Fact("R", [Null(1)])], dom={Null(1): ["a", "b"]}
        )

    def test_certain_vs_possible(self, db):
        anything = BCQ([Atom("R", ["x"])])
        specific = BCQ([Atom("R", [Const("a")])])
        impossible = BCQ([Atom("R", [Const("z")])])
        assert is_certain(anything, db)
        assert not is_certain(specific, db)
        assert is_possible(specific, db)
        assert not is_possible(impossible, db)

    def test_supports(self, db):
        specific = BCQ([Atom("R", [Const("a")])])
        assert valuation_support(specific, db) == Fraction(1, 2)
        assert completion_support(specific, db) == Fraction(1, 2)

    def test_support_of_certain_query_is_one(self, figure1_db):
        anything = BCQ([Atom("S", ["x", "y"])])
        assert valuation_support(anything, figure1_db) == 1
        assert completion_support(anything, figure1_db) == 1

    def test_figure1_supports(self, figure1_db, figure1_query):
        """Figure 1: 4 of 6 valuations, 3 of 5 completions satisfy q."""
        assert valuation_support(figure1_query, figure1_db) == Fraction(4, 6)
        assert completion_support(figure1_query, figure1_db) == Fraction(3, 5)


class TestMinimalModels:
    def test_minimal_models_of_bcq(self):
        db = Database(
            [Fact("R", ["a"]), Fact("R", ["b"]), Fact("S", ["a"])]
        )
        query = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
        models = minimal_models(query, db)
        assert models == [Database([Fact("R", ["a"]), Fact("S", ["a"])])]

    def test_bound_check(self):
        db = Database([Fact("R", ["a"]), Fact("S", ["a"])])
        query = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
        assert has_bounded_minimal_models(query, db, bound=2)
        assert not has_bounded_minimal_models(query, db, bound=1)

    def test_bcqs_report_monotone(self):
        dbs = [
            Database(),
            Database([Fact("R", ["a"])]),
            Database([Fact("R", ["a"]), Fact("R", ["b"])]),
        ]
        assert is_monotone_on(BCQ([Atom("R", ["x"])]), dbs)
        assert not is_monotone_on(
            Negation(BCQ([Atom("R", ["x"])])), dbs
        )
