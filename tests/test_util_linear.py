"""Tests for the exact rational linear solver (Prop. 3.11 machinery)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.util.combinatorics import surjections
from repro.util.linear import (
    SingularMatrixError,
    invert_rational_matrix,
    kronecker_product,
    solve_rational_system,
)


class TestSolve:
    def test_simple_system(self):
        solution = solve_rational_system([[2, 1], [1, 3]], [5, 10])
        assert solution == [Fraction(1), Fraction(3)]

    def test_rational_solution(self):
        solution = solve_rational_system([[2]], [1])
        assert solution == [Fraction(1, 2)]

    def test_singular_raises(self):
        with pytest.raises(SingularMatrixError):
            solve_rational_system([[1, 2], [2, 4]], [1, 2])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            solve_rational_system([[1, 2]], [1])

    @given(
        st.lists(
            st.lists(st.integers(-5, 5), min_size=3, max_size=3),
            min_size=3,
            max_size=3,
        ),
        st.lists(st.integers(-5, 5), min_size=3, max_size=3),
    )
    def test_solution_satisfies_system(self, matrix, rhs):
        try:
            solution = solve_rational_system(matrix, rhs)
        except SingularMatrixError:
            return
        for row, target in zip(matrix, rhs):
            assert sum(
                Fraction(a) * x for a, x in zip(row, solution)
            ) == Fraction(target)


class TestInverse:
    def test_identity(self):
        inverse = invert_rational_matrix([[1, 0], [0, 1]])
        assert inverse == [[1, 0], [0, 1]]

    def test_inverse_multiplies_to_identity(self):
        matrix = [[2, 1], [5, 3]]
        inverse = invert_rational_matrix(matrix)
        for i in range(2):
            for j in range(2):
                entry = sum(
                    Fraction(matrix[i][k]) * inverse[k][j] for k in range(2)
                )
                assert entry == (1 if i == j else 0)


class TestSurjectionMatrix:
    """The structure Prop. 3.11 relies on."""

    def test_triangular_with_nonzero_diagonal(self):
        n = 4
        matrix = [
            [surjections(a, i) for i in range(n + 1)] for a in range(n + 1)
        ]
        for a in range(n + 1):
            assert matrix[a][a] != 0  # a! on the diagonal
            for i in range(a + 1, n + 1):
                assert matrix[a][i] == 0  # upper triangle vanishes

    def test_kronecker_square_is_invertible(self):
        n = 2
        base = [
            [surjections(a, i) for i in range(n + 1)] for a in range(n + 1)
        ]
        square = kronecker_product(base, base)
        inverse = invert_rational_matrix(square)
        size = (n + 1) ** 2
        for i in range(size):
            entry = sum(square[i][k] * inverse[k][i] for k in range(size))
            assert entry == 1

    def test_kronecker_entries(self):
        product = kronecker_product([[1, 2]], [[3], [4]])
        assert product == [[3, 6], [4, 8]]
