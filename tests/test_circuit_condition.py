"""Differential tests: conditioning and componentwise compilation must be
bit-identical to compiling the updated instance from scratch.

Every delta kind is exercised on randomized instances: counts, weighted
counts (exact :class:`~fractions.Fraction` weights included), marginal
tables, seeded sampling, chains of deltas, and the projected ``#Comp``
splice path.  The only acceptable difference between ``condition`` and
``recompile`` is wall time.
"""

import random
from fractions import Fraction

import pytest

from repro.compile.backend import (
    CompletionCircuit,
    ValuationCircuit,
    count_completions_delta,
    count_valuations_delta,
)
from repro.compile.circuit import DDNNF
from repro.compile.lineage import clause_components, component_key
from repro.complexity.cnf import CNF, count_models_brute
from repro.compile.ddnnf_trace import TraceBuilder
from repro.compile.sharpsat import ModelCounter
from repro.core.query import Atom, BCQ
from repro.db.deltas import (
    DeleteFacts,
    InsertFacts,
    ResolveNull,
    RestrictDomain,
)
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.workloads.generators import random_incomplete_db

QUERY = BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])
SCHEMA = {"R": 2, "S": 1}


def random_update_db(seed):
    return random_incomplete_db(
        SCHEMA,
        seed=seed,
        num_nulls=3,
        facts_per_relation=(2, 4),
        domain_size=3,
        null_probability=0.6,
    )


def random_delta(rng, db):
    """One applicable random delta for ``db`` (None when none applies)."""
    kind = rng.choice(("resolve", "restrict", "insert", "delete"))
    nulls = sorted(db.nulls, key=repr)
    if kind in ("resolve", "restrict") and not nulls:
        kind = "insert"
    if kind == "resolve":
        null = rng.choice(nulls)
        return ResolveNull(null, rng.choice(sorted(db.domain_of(null), key=repr)))
    if kind == "restrict":
        null = rng.choice(nulls)
        domain = sorted(db.domain_of(null), key=repr)
        keep = rng.randint(1, len(domain))
        return RestrictDomain(null, frozenset(rng.sample(domain, keep)))
    if kind == "insert":
        relation = rng.choice(("R", "S"))
        arity = SCHEMA[relation]
        pool = ["v0", "v1", "v2"] + nulls
        terms = tuple(rng.choice(pool) for _ in range(arity))
        fact = Fact(relation, terms)
        if fact in db.facts:
            return None
        return InsertFacts(frozenset({fact}))
    victims = sorted(db.facts)
    if len(victims) <= 1:
        return None
    return DeleteFacts(frozenset({rng.choice(victims)}))


# -- DDNNF.condition against raw CNFs ---------------------------------------


def random_cnf(rng, max_variables=8, max_clauses=10):
    n = rng.randint(2, max_variables)
    cnf = CNF(n)
    for _ in range(rng.randint(1, max_clauses)):
        width = rng.randint(1, min(3, n))
        variables = rng.sample(range(1, n + 1), width)
        cnf.add_clause(v if rng.random() < 0.5 else -v for v in variables)
    return cnf


def traced(cnf):
    trace = TraceBuilder()
    counter = ModelCounter(cnf, trace=trace)
    count = counter.count()
    return trace.build(counter.trace_root, cnf.num_variables), count


def test_ddnnf_condition_matches_brute_force():
    rng = random.Random(20240807)
    for _ in range(60):
        cnf = random_cnf(rng)
        circuit, count = traced(cnf)
        assert circuit.count() == count
        pinned = {
            v: rng.random() < 0.5
            for v in rng.sample(
                range(1, cnf.num_variables + 1),
                rng.randint(1, cnf.num_variables),
            )
        }
        conditioned = circuit.condition(pinned)
        # brute-force the conditioned count over the full variable set
        expected = 0
        for model in range(1 << cnf.num_variables):
            assignment = {
                v: bool(model >> (v - 1) & 1)
                for v in range(1, cnf.num_variables + 1)
            }
            if any(assignment[v] != want for v, want in pinned.items()):
                continue
            if all(
                any(
                    assignment[abs(l)] == (l > 0) for l in clause
                )
                for clause in cnf.clauses
            ):
                expected += 1
        assert conditioned.count() == expected
        # node ids survive: the conditioned program keeps the same shape
        assert conditioned.num_variables == circuit.num_variables


def test_ddnnf_condition_rejects_uncountable_variables():
    cnf = CNF(2)
    cnf.add_clause([1, 2])
    trace = TraceBuilder()
    counter = ModelCounter(cnf, projection=frozenset({1}), trace=trace)
    counter.count()
    circuit = trace.build(counter.trace_root, 2, countable=frozenset({1}))
    with pytest.raises(ValueError):
        circuit.condition({2: True})
    with pytest.raises(ValueError):
        circuit.condition({7: True})


def test_ddnnf_condition_empty_assignment_is_identity():
    rng = random.Random(7)
    circuit, _count = traced(random_cnf(rng))
    assert circuit.condition({}) is circuit


# -- ValuationCircuit.condition: every question mode ------------------------


def test_condition_resolution_deltas_match_recompile():
    rng = random.Random(99)
    checked = 0
    for seed in range(40):
        db = random_update_db(seed)
        if not db.nulls:
            continue
        parent = ValuationCircuit(db, QUERY)
        delta = random_delta(rng, db)
        if delta is None or not isinstance(
            delta, (ResolveNull, RestrictDomain)
        ):
            continue
        child_db = db.apply(delta)
        derived = parent.condition(delta)
        fresh = ValuationCircuit(child_db, QUERY)
        assert derived.count() == fresh.count()
        assert derived.total_valuations == fresh.total_valuations
        checked += 1
    assert checked >= 10


def test_condition_weighted_and_fraction_weights():
    for seed in (3, 11, 19):
        db = random_update_db(seed)
        if not db.nulls:
            continue
        null = sorted(db.nulls, key=repr)[0]
        domain = sorted(db.domain_of(null), key=repr)
        if len(domain) < 2:
            continue
        delta = RestrictDomain(null, frozenset(domain[:2]))
        derived = ValuationCircuit(db, QUERY).condition(delta)
        fresh = ValuationCircuit(db.apply(delta), QUERY)
        assert derived.weighted_count() == fresh.weighted_count()
        weights = {
            n: {
                value: Fraction(1, 2 + i)
                for i, value in enumerate(
                    sorted(db.apply(delta).domain_of(n), key=repr)
                )
            }
            for n in db.apply(delta).nulls
        }
        assert derived.weighted_count(weights) == fresh.weighted_count(
            weights
        )
        assert isinstance(derived.weighted_count(weights), Fraction)


def test_condition_vectorized_sweep_both_lanes():
    # a conditioned circuit must agree with the fresh compile through the
    # batched pass on both lanes: small weights ride the numpy int64
    # column, huge weights overflow the magnitude bound onto the exact
    # object column
    db = random_update_db(3)
    nulls = sorted(db.nulls, key=repr)
    assert nulls
    null = nulls[0]
    domain = sorted(db.domain_of(null), key=repr)
    delta = RestrictDomain(null, frozenset(domain))
    derived = ValuationCircuit(db, QUERY).condition(delta)
    fresh = ValuationCircuit(db.apply(delta), QUERY)
    for scale in (1, 10**30):
        rows = [
            {
                n: {
                    value: scale * (1 + (index + position) % 3)
                    for position, value in enumerate(
                        sorted(db.domain_of(n), key=repr)
                    )
                }
                for n in db.apply(delta).nulls
            }
            for index in range(5)
        ]
        assert derived.weighted_count_many(rows) == fresh.weighted_count_many(
            rows
        )


def test_condition_marginals_and_sampling_match():
    db = random_update_db(5)
    nulls = sorted(db.nulls, key=repr)
    assert nulls
    null = nulls[0]
    value = sorted(db.domain_of(null), key=repr)[0]
    delta = ResolveNull(null, value)
    derived = ValuationCircuit(db, QUERY).condition(delta)
    fresh = ValuationCircuit(db.apply(delta), QUERY)
    if fresh.count() == 0:
        pytest.skip("query unsatisfiable after this delta")
    assert derived.marginals() == fresh.marginals()
    assert derived.sample_valuation(seed=123) == fresh.sample_valuation(
        seed=123
    )


def test_condition_chain_matches_recompile():
    rng = random.Random(2718)
    for seed in range(12):
        db = random_update_db(seed)
        node = db
        parent = ValuationCircuit(db, QUERY)
        for _step in range(3):
            nulls = sorted(node.nulls, key=repr)
            if not nulls:
                break
            null = rng.choice(nulls)
            domain = sorted(node.domain_of(null), key=repr)
            if rng.random() < 0.5:
                delta = ResolveNull(null, rng.choice(domain))
            else:
                keep = rng.randint(1, len(domain))
                delta = RestrictDomain(null, frozenset(rng.sample(domain, keep)))
            node = node.apply(delta)
            parent = parent.condition(delta)
            assert parent.count() == ValuationCircuit(node, QUERY).count()


def test_condition_rejects_insert_delete():
    db = random_update_db(1)
    circuit = ValuationCircuit(db, QUERY)
    with pytest.raises(ValueError):
        circuit.condition(InsertFacts(frozenset({Fact("S", ("v0",))})))


# -- componentwise compilation (the insert/delete splice path) ---------------


def test_componentwise_val_matches_plain_compile():
    rng = random.Random(424242)
    checked = 0
    for seed in range(30):
        db = random_update_db(seed)
        delta = random_delta(rng, db)
        if delta is None:
            continue
        try:
            child = db.apply(delta)
        except (ValueError, KeyError):
            continue
        split = ValuationCircuit.compile_componentwise(child, QUERY)
        plain = ValuationCircuit(child, QUERY)
        assert split.count() == plain.count()
        assert split.total_valuations == plain.total_valuations
        checked += 1
    assert checked >= 10


def test_componentwise_comp_matches_plain_compile():
    for seed in range(8):
        db = random_incomplete_db(
            {"R": 1, "S": 1}, seed=seed, num_nulls=2,
            facts_per_relation=(1, 3), domain_size=3,
        )
        split = CompletionCircuit.compile_componentwise(db, None)
        plain = CompletionCircuit(db, None)
        assert split.count() == plain.count()
        split_q = CompletionCircuit.compile_componentwise(
            db, BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
        )
        plain_q = CompletionCircuit(
            db, BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
        )
        assert split_q.count() == plain_q.count()


def test_count_delta_helpers_require_and_use_provenance():
    db = random_update_db(2)
    with pytest.raises(ValueError):
        count_valuations_delta(db, QUERY)
    nulls = sorted(db.nulls, key=repr)
    null = nulls[0]
    value = sorted(db.domain_of(null), key=repr)[0]
    child = db.apply(ResolveNull(null, value))
    assert count_valuations_delta(child, QUERY) == ValuationCircuit(
        child, QUERY
    ).count()
    grown = db.apply(InsertFacts(frozenset({Fact("S", ("v1",))})))
    assert count_valuations_delta(grown, QUERY) == ValuationCircuit(
        grown, QUERY
    ).count()
    assert count_completions_delta(child) == CompletionCircuit(
        child, None
    ).count()


def test_completion_condition_facts_partitions_the_count():
    db = random_incomplete_db(
        {"R": 1}, seed=9, num_nulls=2, facts_per_relation=(2, 3),
        domain_size=3,
    )
    circuit = CompletionCircuit(db, None)
    fact = sorted(circuit._facts.facts())[0]
    with_fact = circuit.condition_facts({fact: True})
    without = circuit.condition_facts({fact: False})
    assert with_fact.count() + without.count() == circuit.count()


# -- component keys ----------------------------------------------------------


def test_component_key_is_position_stable():
    # the same local structure under shifted global numbering shares a key
    clauses_a = [[1, -2], [2, 3]]
    clauses_b = [[4, -5], [5, 6]]
    key_a = component_key("val", [1, 2, 3], clauses_a)
    key_b = component_key("val", [4, 5, 6], clauses_b)
    assert key_a == key_b
    assert key_a != component_key("comp", [1, 2, 3], clauses_a)
    assert key_a != component_key(
        "val", [1, 2, 3], clauses_a, countable=[2]
    )


def test_clause_components_partition():
    parts = clause_components(6, [[1, -2], [2, 3], [5, 6], []])
    assert parts == [((1, 2, 3), (0, 1)), ((5, 6), (2,))]
    counts = []
    for variables, indices in parts:
        local = {v: i + 1 for i, v in enumerate(variables)}
        cnf = CNF(len(variables))
        for index in indices:
            cnf.add_clause(
                (1 if l > 0 else -1) * local[abs(l)]
                for l in [[1, -2], [2, 3], [5, 6], []][index]
            )
        counts.append(count_models_brute(cnf))
    # model counts multiply across components (free var 4 doubles)
    full = CNF(6)
    for clause in [[1, -2], [2, 3], [5, 6]]:
        full.add_clause(clause)
    assert counts[0] * counts[1] * 2 == count_models_brute(full)
