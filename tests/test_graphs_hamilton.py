"""Tests for Hamiltonicity and #HamSubgraphs (Theorem 6.4 substrate)."""

from itertools import combinations, permutations

from hypothesis import given, settings

from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.hamilton import (
    count_hamiltonian_induced_subgraphs,
    hamiltonian_subsets,
    is_hamiltonian,
)

from tests.conftest import small_graphs


def _hamiltonian_by_permutations(graph: Graph) -> bool:
    nodes = graph.nodes
    if len(nodes) < 3:
        return False
    first, rest = nodes[0], nodes[1:]
    for order in permutations(rest):
        cycle = [first, *order, first]
        if all(graph.has_edge(a, b) for a, b in zip(cycle, cycle[1:])):
            return True
    return False


class TestIsHamiltonian:
    def test_known_graphs(self):
        assert is_hamiltonian(cycle_graph(3))
        assert is_hamiltonian(cycle_graph(6))
        assert is_hamiltonian(complete_graph(5))
        assert not is_hamiltonian(path_graph(4))
        assert not is_hamiltonian(star_graph(3))

    def test_small_conventions(self):
        assert not is_hamiltonian(Graph())
        assert not is_hamiltonian(Graph(nodes=[1]))
        assert not is_hamiltonian(Graph(edges=[(1, 2)]))

    def test_balanced_bipartite(self):
        assert is_hamiltonian(complete_bipartite_graph(3, 3))
        assert not is_hamiltonian(complete_bipartite_graph(2, 3))

    @given(small_graphs(max_nodes=6))
    @settings(max_examples=40, deadline=None)
    def test_matches_permutation_search(self, graph):
        assert is_hamiltonian(graph) == _hamiltonian_by_permutations(graph)


class TestCountHamSubgraphs:
    def test_cycle(self):
        graph = cycle_graph(5)
        # Only the full cycle induces a Hamiltonian subgraph.
        assert count_hamiltonian_induced_subgraphs(graph, 5) == 1
        assert count_hamiltonian_induced_subgraphs(graph, 4) == 0
        assert count_hamiltonian_induced_subgraphs(graph, 3) == 0

    def test_complete_graph(self):
        graph = complete_graph(5)
        from math import comb

        for k in (3, 4, 5):
            assert count_hamiltonian_induced_subgraphs(graph, k) == comb(5, k)

    def test_out_of_range(self):
        graph = cycle_graph(4)
        assert count_hamiltonian_induced_subgraphs(graph, 9) == 0
        import pytest

        with pytest.raises(ValueError):
            count_hamiltonian_induced_subgraphs(graph, -1)

    def test_witnesses_are_consistent(self):
        graph = complete_graph(4)
        subsets = hamiltonian_subsets(graph, 3)
        assert len(subsets) == count_hamiltonian_induced_subgraphs(graph, 3)
        for subset in subsets:
            assert is_hamiltonian(graph.induced_subgraph(subset))

    @given(small_graphs(max_nodes=5))
    @settings(max_examples=20, deadline=None)
    def test_matches_direct_enumeration(self, graph):
        for k in range(min(graph.num_nodes, 4) + 1):
            direct = sum(
                1
                for subset in combinations(graph.nodes, k)
                if _hamiltonian_by_permutations(graph.induced_subgraph(subset))
            )
            assert count_hamiltonian_induced_subgraphs(graph, k) == direct
