"""Canonical-fingerprint soundness and invariance (repro.engine.fingerprint)."""

import pytest

from repro.core.query import Atom, BCQ, Const, CustomQuery, Negation, UCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.engine import CountJob, fingerprint_db, fingerprint_job, fingerprint_query


def _db(null_a="n1", null_b="n2"):
    a, b = Null(null_a), Null(null_b)
    return IncompleteDatabase(
        [Fact("R", [a, b]), Fact("R", [b, a]), Fact("S", [a])],
        dom={a: ["x", "y"], b: ["y", "z"]},
    )


class TestQueryFingerprint:
    def test_variable_renaming_invariant(self):
        original = BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])
        renamed = BCQ([Atom("R", ["u", "v"]), Atom("S", ["v"])])
        assert fingerprint_query(original) == fingerprint_query(renamed)

    def test_atom_order_invariant(self):
        one = BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])
        two = BCQ([Atom("S", ["a"]), Atom("R", ["b", "a"])])
        assert fingerprint_query(one) == fingerprint_query(two)

    def test_equality_pattern_distinguished(self):
        repeated = BCQ([Atom("R", ["x", "x"])])
        distinct = BCQ([Atom("R", ["x", "y"])])
        assert fingerprint_query(repeated) != fingerprint_query(distinct)

    def test_constants_distinguished_by_type(self):
        as_int = BCQ([Atom("R", ["x", Const(1)])])
        as_str = BCQ([Atom("R", ["x", Const("1")])])
        assert fingerprint_query(as_int) != fingerprint_query(as_str)

    def test_ucq_disjunct_order_invariant(self):
        p = BCQ([Atom("R", ["x", "y"])])
        q = BCQ([Atom("S", ["x"])])
        assert fingerprint_query(UCQ([p, q])) == fingerprint_query(UCQ([q, p]))

    def test_negation_wraps_inner(self):
        inner = BCQ([Atom("R", ["x", "y"])])
        assert fingerprint_query(Negation(inner)) != fingerprint_query(inner)

    def test_custom_query_has_no_fingerprint(self):
        opaque = CustomQuery("opaque", ["R"], lambda db: True)
        assert fingerprint_query(opaque) is None
        assert fingerprint_query(Negation(opaque)) is None

    def test_none_is_the_trivial_query(self):
        assert fingerprint_query(None) == ("none",)


class TestDatabaseFingerprint:
    def test_null_renaming_invariant(self):
        assert fingerprint_db(_db("n1", "n2")) == fingerprint_db(_db("a", "b"))

    def test_swapped_labels_invariant(self):
        # Same structure with the two null labels exchanged.
        assert fingerprint_db(_db("n1", "n2")) == fingerprint_db(_db("n2", "n1"))

    def test_domains_matter(self):
        a = Null("n")
        small = IncompleteDatabase([Fact("R", [a])], dom={a: ["x"]})
        large = IncompleteDatabase([Fact("R", [a])], dom={a: ["x", "y"]})
        assert fingerprint_db(small) != fingerprint_db(large)

    def test_uniform_flag_matters(self):
        a = Null("n")
        facts = [Fact("R", [a])]
        uniform = IncompleteDatabase.uniform(facts, ["x", "y"])
        non_uniform = IncompleteDatabase(facts, dom={a: ["x", "y"]})
        assert fingerprint_db(uniform) != fingerprint_db(non_uniform)

    def test_structure_matters(self):
        a, b = Null("n1"), Null("n2")
        shared = IncompleteDatabase(
            [Fact("R", [a, a])], dom={a: ["x", "y"]}
        )
        split = IncompleteDatabase(
            [Fact("R", [a, b])], dom={a: ["x", "y"], b: ["x", "y"]}
        )
        assert fingerprint_db(shared) != fingerprint_db(split)


class TestJobFingerprint:
    def test_exact_methods_share_the_key(self):
        query = BCQ([Atom("R", ["x", "x"])])
        auto = CountJob("val", _db(), query, method="auto")
        lineage = CountJob("val", _db(), query, method="lineage")
        assert fingerprint_job(auto) == fingerprint_job(lineage)

    def test_problems_are_disjoint(self):
        query = BCQ([Atom("R", ["x", "x"])])
        val = CountJob("val", _db(), query)
        comp = CountJob("comp", _db(), query)
        assert fingerprint_job(val) != fingerprint_job(comp)

    def test_approx_parameters_are_part_of_the_key(self):
        query = BCQ([Atom("R", ["x", "y"])])
        base = CountJob("approx-val", _db(), query, seed=1, epsilon=0.2)
        other_seed = CountJob("approx-val", _db(), query, seed=2, epsilon=0.2)
        other_eps = CountJob("approx-val", _db(), query, seed=1, epsilon=0.3)
        assert fingerprint_job(base) != fingerprint_job(other_seed)
        assert fingerprint_job(base) != fingerprint_job(other_eps)

    def test_unseeded_approx_is_uncacheable(self):
        query = BCQ([Atom("R", ["x", "y"])])
        job = CountJob("approx-val", _db(), query, seed=None)
        assert fingerprint_job(job) is None

    def test_custom_query_job_is_uncacheable(self):
        opaque = CustomQuery("opaque", ["R"], lambda db: True)
        job = CountJob("val", _db(), opaque)
        assert fingerprint_job(job) is None

    def test_label_does_not_affect_the_key(self):
        query = BCQ([Atom("R", ["x", "y"])])
        assert fingerprint_job(
            CountJob("val", _db(), query, label="a")
        ) == fingerprint_job(CountJob("val", _db(), query, label="b"))


class TestValidation:
    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError):
            CountJob("nope", _db(), BCQ([Atom("R", ["x", "y"])]))

    def test_val_requires_query(self):
        with pytest.raises(ValueError):
            CountJob("val", _db(), None)
