"""Dispatch edge cases the batch engine meets in real workloads.

Empty databases, singleton domains, atomless queries, and forced methods
that do not apply — each must resolve to a clean answer or a clean error,
never a crash deep inside a solver.
"""

import pytest

from repro.core.query import Atom, BCQ, CustomQuery, Negation
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.engine import BatchEngine, CountJob
from repro.exact.brute import count_valuations_brute
from repro.exact.dispatch import (
    count_completions,
    count_valuations,
    resolve_completion_method,
    resolve_valuation_method,
)


def _empty_db():
    return IncompleteDatabase([], dom={})


def _singleton_db():
    a = Null("only")
    return IncompleteDatabase(
        [Fact("R", [a, a]), Fact("R", [a, "c"])], dom={a: ["c"]}
    )


class TestEmptyDatabase:
    def test_val_is_zero(self):
        query = BCQ([Atom("R", ["x", "y"])])
        for method in ("auto", "brute", "lineage"):
            assert count_valuations(_empty_db(), query, method=method) == 0

    def test_comp_counts_the_empty_completion(self):
        # A ground (here: empty) table has exactly one completion.
        for method in ("auto", "brute", "lineage"):
            assert count_completions(_empty_db(), method=method) == 1

    def test_comp_with_query_on_empty_db(self):
        query = BCQ([Atom("R", ["x", "y"])])
        assert count_completions(_empty_db(), query) == 0


class TestSingletonDomain:
    """A null with |dom| = 1 admits exactly one valuation choice."""

    def test_val_all_methods_agree(self):
        query = BCQ([Atom("R", ["x", "x"])])
        expected = count_valuations_brute(_singleton_db(), query)
        for method in ("auto", "brute", "lineage"):
            assert (
                count_valuations(_singleton_db(), query, method=method)
                == expected
            )

    def test_comp_is_one(self):
        assert count_completions(_singleton_db()) == 1

    def test_engine_handles_it(self):
        query = BCQ([Atom("R", ["x", "x"])])
        results = BatchEngine(workers=0).run(
            [CountJob("val", _singleton_db(), query)]
        )
        assert results[0].ok
        assert results[0].count == count_valuations_brute(
            _singleton_db(), query
        )


class TestAtomlessQuery:
    """The paper assumes queries have at least one atom; the constructors
    enforce it, so an atomless query can never reach the dispatcher."""

    def test_bcq_requires_an_atom(self):
        with pytest.raises(ValueError, match="at least one atom"):
            BCQ([])

    def test_atom_requires_a_term(self):
        with pytest.raises(ValueError, match="arity >= 1"):
            Atom("R", [])

    def test_comp_accepts_no_query_instead(self):
        # The supported way to ask an unconstrained count.
        db = _singleton_db()
        assert count_completions(db, None) == 1


class TestLineageOnNonUCQ:
    """``method='lineage'`` on queries the compiler cannot encode must
    fall back to ``brute`` cleanly (same count, no compiler crash)."""

    def _db(self):
        a = Null("n")
        return IncompleteDatabase(
            [Fact("R", [a]), Fact("S", ["c"])], dom={a: ["b", "c"]}
        )

    def test_negation_falls_back(self):
        negated = Negation(BCQ([Atom("R", ["x"]), Atom("S", ["x"])]))
        assert (
            resolve_valuation_method(self._db(), negated, "lineage")
            == "brute"
        )
        assert count_valuations(
            self._db(), negated, method="lineage"
        ) == count_valuations_brute(self._db(), negated)

    def test_custom_query_falls_back(self):
        opaque = CustomQuery(
            "nonempty", ["R", "S"], lambda database: len(database) >= 2
        )
        assert (
            resolve_valuation_method(self._db(), opaque, "lineage")
            == "brute"
        )
        assert count_valuations(self._db(), opaque, method="lineage") == (
            count_valuations_brute(self._db(), opaque)
        )

    def test_comp_negation_falls_back(self):
        negated = Negation(BCQ([Atom("R", ["x"]), Atom("S", ["x"])]))
        assert (
            resolve_completion_method(self._db(), negated, "lineage")
            == "brute"
        )
        assert count_completions(self._db(), negated, method="lineage") == (
            count_completions(self._db(), negated, method="brute")
        )

    def test_ucq_still_uses_lineage(self):
        query = BCQ([Atom("R", ["x"])])
        assert (
            resolve_valuation_method(self._db(), query, "lineage")
            == "lineage"
        )

    def test_engine_batch_with_mixed_support(self):
        negated = Negation(BCQ([Atom("R", ["x"])]))
        plain = BCQ([Atom("R", ["x"])])
        jobs = [
            CountJob("val", self._db(), negated, method="lineage"),
            CountJob("val", self._db(), plain, method="lineage"),
        ]
        results = BatchEngine(workers=0).run(jobs)
        assert all(result.ok for result in results)
        assert results[0].method == "brute"
        assert results[1].method == "lineage"
        total = 2  # |dom(n)| valuations in all
        assert results[0].count + results[1].count == total
