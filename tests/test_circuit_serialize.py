"""Circuit artifact serialization: round-trips, rejection, accounting.

The batch engine ships circuits compiled in worker processes back to the
parent as versioned binary payloads, so the codec must preserve every
question a circuit answers — bit for bit — and must reject anything it
cannot trust (wrong version, corruption, wrong instance).
"""

from __future__ import annotations

import random

import pytest

from repro.compile.backend import (
    CompletionCircuit,
    ValuationCircuit,
    artifact_from_bytes,
)
from repro.compile.serialize import (
    CircuitFormatError,
    FORMAT_VERSION,
    Reader,
    Writer,
    dumps_circuit,
    frame,
    loads_circuit,
    unframe,
)
from repro.core.query import Atom, BCQ
from repro.workloads.generators import (
    random_incomplete_db,
    scaling_hard_comp_instance,
    scaling_hard_val_instance,
)


def _weights_for(db, salt=0):
    return {
        null: {
            value: 1 + (index + position + salt) % 4
            for position, value in enumerate(
                sorted(db.domain_of(null), key=repr)
            )
        }
        for index, null in enumerate(db.nulls)
    }


class TestVarints:
    def test_uint_roundtrip_includes_bigints(self):
        writer = Writer()
        values = [0, 1, 127, 128, 300, 2**31, 2**64 + 17, 3**200]
        for value in values:
            writer.uint(value)
        reader = Reader(writer.getvalue())
        assert [reader.uint() for _ in values] == values
        reader.expect_end()

    def test_signed_roundtrip(self):
        writer = Writer()
        values = [0, -1, 1, -2, 2, 12345, -12345, -(2**70), 2**70]
        for value in values:
            writer.int(value)
        reader = Reader(writer.getvalue())
        assert [reader.int() for _ in values] == values

    def test_truncated_varint_rejected(self):
        with pytest.raises(CircuitFormatError, match="truncated"):
            Reader(b"\xff").uint()

    def test_trailing_bytes_rejected(self):
        reader = Reader(b"\x01\x02")
        reader.uint()
        with pytest.raises(CircuitFormatError, match="trailing"):
            reader.expect_end()


class TestFraming:
    def test_bad_magic(self):
        payload = frame(b"GOOD", b"body")
        with pytest.raises(CircuitFormatError, match="magic"):
            unframe(payload, b"EVIL")

    def test_version_mismatch_rejected(self):
        payload = frame(b"GOOD", b"body", version=FORMAT_VERSION + 1)
        with pytest.raises(CircuitFormatError, match="version"):
            unframe(payload, b"GOOD")

    def test_corrupted_body_rejected(self):
        payload = bytearray(frame(b"GOOD", b"body-bytes"))
        payload[-1] ^= 0xFF
        with pytest.raises(CircuitFormatError, match="checksum"):
            unframe(bytes(payload), b"GOOD")

    def test_short_payload_rejected(self):
        with pytest.raises(CircuitFormatError, match="shorter"):
            unframe(b"GO", b"GOOD")


class TestDDNNFRoundtrip:
    def _circuits(self):
        for size in (6, 8, 10):
            db, query = scaling_hard_val_instance(size, seed=size)
            yield ValuationCircuit(db, query).circuit

    def test_counts_and_structure_preserved(self):
        for circuit in self._circuits():
            data = circuit.to_bytes()
            restored = type(circuit).from_bytes(data)
            assert restored.count() == circuit.count()
            assert restored.num_nodes == circuit.num_nodes
            assert restored.num_edges == circuit.num_edges
            assert restored.countable == circuit.countable
            assert restored.root == circuit.root
            assert restored.num_variables == circuit.num_variables
            # A second serialization of the restored circuit is identical.
            assert restored.to_bytes() == data

    def test_evaluate_and_literal_counts_preserved(self):
        rng = random.Random(5)
        for circuit in self._circuits():
            restored = type(circuit).from_bytes(circuit.to_bytes())
            weights = {
                variable: (rng.randrange(4), rng.randrange(1, 4))
                for variable in sorted(circuit.countable)
            }
            assert restored.evaluate(weights) == circuit.evaluate(weights)
            assert restored.literal_counts(weights) == circuit.literal_counts(
                weights
            )

    def test_sampler_determinism(self):
        for circuit in self._circuits():
            restored = type(circuit).from_bytes(circuit.to_bytes())
            original = circuit.sampler()
            rehydrated = restored.sampler()
            assert rehydrated.total == original.total
            for seed in range(5):
                assert rehydrated.sample(
                    random.Random(seed)
                ) == original.sample(random.Random(seed))

    def test_tampered_node_table_rejected(self):
        circuit = next(iter(self._circuits()))
        data = bytearray(circuit.to_bytes())
        data[20] ^= 0x55  # body byte: crc must catch it
        with pytest.raises(CircuitFormatError):
            loads_circuit(bytes(data))

    def test_zero_delta_in_countable_list_rejected(self):
        # A CRC-valid payload whose countable list starts at variable 0
        # (first delta 0) must be rejected by structural validation.
        from repro.compile.serialize import CIRCUIT_MAGIC

        writer = Writer()
        writer.uint(2)  # num_variables
        writer.uint(1)  # root -> the TRUE constant
        writer.uint(2)  # two countable entries...
        writer.uint(0)  # ...the first with delta 0 (variable 0)
        writer.uint(1)
        writer.uint(2)  # node table: FALSE, TRUE
        writer.uint(0)
        writer.uint(1)
        with pytest.raises(CircuitFormatError, match="ascending"):
            loads_circuit(frame(CIRCUIT_MAGIC, writer.getvalue()))

    def test_version_bump_rejected_before_body(self):
        circuit = next(iter(self._circuits()))
        data = bytearray(circuit.to_bytes())
        data[4] = 0x63  # version field of the frame header
        with pytest.raises(CircuitFormatError, match="version 99"):
            loads_circuit(bytes(data))


class TestValuationCircuitRoundtrip:
    def _instances(self):
        for size in (8, 10, 12):
            yield scaling_hard_val_instance(size, seed=size + 1)
        query = BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])
        for seed in range(4):
            db = random_incomplete_db(
                {"R": 2, "S": 1}, seed=seed, num_nulls=4, domain_size=3
            )
            yield db, query

    def test_every_question_preserved(self):
        for db, query in self._instances():
            compiled = ValuationCircuit(db, query)
            restored = ValuationCircuit.from_bytes(compiled.to_bytes(), db)
            weights = _weights_for(db)
            assert restored.count() == compiled.count()
            assert restored.total_valuations == compiled.total_valuations
            assert restored.weighted_count() == compiled.weighted_count()
            assert restored.weighted_count(weights) == compiled.weighted_count(
                weights
            )
            if compiled.count():
                assert restored.marginals(weights) == compiled.marginals(
                    weights
                )
                for seed in range(3):
                    assert restored.sample_valuation(
                        seed=seed, weights=weights
                    ) == compiled.sample_valuation(seed=seed, weights=weights)

    def test_statistics_preserved(self):
        db, query = scaling_hard_val_instance(9, seed=3)
        compiled = ValuationCircuit(db, query)
        restored = ValuationCircuit.from_bytes(compiled.to_bytes(), db)
        assert restored.num_matches == compiled.num_matches
        assert restored.num_clauses == compiled.num_clauses
        assert restored.heuristic_width == compiled.heuristic_width
        assert restored.cache_entries == compiled.cache_entries
        assert restored.components_split == compiled.components_split

    def test_wire_bytes_recorded_and_accounting_symmetric(self):
        db, query = scaling_hard_val_instance(9, seed=3)
        compiled = ValuationCircuit(db, query)
        data = compiled.to_bytes()
        restored = ValuationCircuit.from_bytes(data, db)
        assert restored.wire_bytes == len(data)
        assert compiled.wire_bytes is None
        # Resident accounting is identical for a local compile and its
        # rehydrated twin (the wire form is compact, the object is not).
        assert restored.memory_bytes() == compiled.memory_bytes()
        assert restored.memory_bytes() >= len(data)

    def test_wrong_database_rejected(self):
        db, query = scaling_hard_val_instance(8, seed=1)
        other_db, _ = scaling_hard_val_instance(9, seed=2)
        data = ValuationCircuit(db, query).to_bytes()
        with pytest.raises(CircuitFormatError):
            ValuationCircuit.from_bytes(data, other_db)


class TestCompletionCircuitRoundtrip:
    def test_every_question_preserved(self):
        for size in (5, 6, 7):
            db, query = scaling_hard_comp_instance(size, seed=size)
            compiled = CompletionCircuit(db, query)
            restored = CompletionCircuit.from_bytes(compiled.to_bytes(), db)
            assert restored.count() == compiled.count()
            if compiled.count():
                assert restored.fact_marginals() == compiled.fact_marginals()
                for seed in range(3):
                    assert restored.sample_completion(
                        seed=seed
                    ) == compiled.sample_completion(seed=seed)

    def test_no_query_instance(self):
        db, _query = scaling_hard_comp_instance(5, seed=9)
        compiled = CompletionCircuit(db, None)
        restored = CompletionCircuit.from_bytes(compiled.to_bytes(), db)
        assert restored.count() == compiled.count()

    def test_wrong_database_rejected(self):
        db, query = scaling_hard_comp_instance(5, seed=1)
        other_db, _ = scaling_hard_comp_instance(6, seed=2)
        data = CompletionCircuit(db, query).to_bytes()
        with pytest.raises(CircuitFormatError):
            CompletionCircuit.from_bytes(data, other_db)


class TestArtifactDispatch:
    def test_dispatch_on_magic(self):
        db, query = scaling_hard_val_instance(8, seed=4)
        valuation = ValuationCircuit(db, query)
        assert isinstance(
            artifact_from_bytes(valuation.to_bytes(), db), ValuationCircuit
        )
        cdb, cquery = scaling_hard_comp_instance(5, seed=4)
        completion = CompletionCircuit(cdb, cquery)
        assert isinstance(
            artifact_from_bytes(completion.to_bytes(), cdb), CompletionCircuit
        )

    def test_garbage_rejected(self):
        db, _ = scaling_hard_val_instance(8, seed=4)
        with pytest.raises(CircuitFormatError, match="magic"):
            artifact_from_bytes(b"JUNKJUNKJUNKJUNK", db)

    def test_bare_circuit_payload_is_not_a_wrapper(self):
        db, query = scaling_hard_val_instance(8, seed=4)
        bare = dumps_circuit(ValuationCircuit(db, query).circuit)
        with pytest.raises(CircuitFormatError):
            artifact_from_bytes(bare, db)
