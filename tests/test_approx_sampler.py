"""Tests for uniform generation of satisfying valuations."""

from collections import Counter

import pytest

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import apply_valuation, iter_valuations
from repro.eval.evaluate import evaluate
from repro.approx.sampler import (
    NoSatisfyingValuation,
    SatisfyingValuationSampler,
)


def _satisfying_valuations(db, query):
    return [
        valuation
        for valuation in iter_valuations(db)
        if evaluate(query, apply_valuation(db, valuation))
    ]


class TestCorrectness:
    def _instance(self):
        db = IncompleteDatabase(
            [Fact("R", [Null(1), Null(2)]), Fact("R", ["a", Null(2)])],
            dom={Null(1): ["a", "b"], Null(2): ["a", "b", "c"]},
        )
        return db, BCQ([Atom("R", ["x", "x"])])

    def test_samples_are_satisfying(self):
        db, query = self._instance()
        sampler = SatisfyingValuationSampler(db, query, seed=5)
        for valuation in sampler.sample_many(50):
            assert evaluate(query, apply_valuation(db, valuation))

    def test_every_satisfying_valuation_is_reachable(self):
        db, query = self._instance()
        satisfying = _satisfying_valuations(db, query)
        sampler = SatisfyingValuationSampler(db, query, seed=9)
        seen = {
            tuple(sorted((repr(k), repr(v)) for k, v in s.items()))
            for s in sampler.sample_many(300)
        }
        expected = {
            tuple(sorted((repr(k), repr(v)) for k, v in s.items()))
            for s in satisfying
        }
        assert seen == expected

    def test_distribution_is_close_to_uniform(self):
        """Frequency test with a generous tolerance (seeded, deterministic)."""
        db, query = self._instance()
        satisfying = _satisfying_valuations(db, query)
        support = len(satisfying)
        sampler = SatisfyingValuationSampler(db, query, seed=123)
        draws = 3000
        counts = Counter(
            tuple(sorted((repr(k), repr(v)) for k, v in s.items()))
            for s in sampler.sample_many(draws)
        )
        expected = draws / support
        for frequency in counts.values():
            assert abs(frequency - expected) < 0.25 * expected + 10

    def test_unsatisfiable_raises(self):
        db = IncompleteDatabase.uniform([Fact("R", [Null(1)])], ["a"])
        sampler = SatisfyingValuationSampler(
            db, BCQ([Atom("S", ["x"])]), seed=0
        )
        with pytest.raises(NoSatisfyingValuation):
            sampler.sample()

    def test_max_rounds_guard(self):
        db, query = self._instance()
        sampler = SatisfyingValuationSampler(db, query, seed=0)
        # max_rounds=0 can never accept
        with pytest.raises(RuntimeError):
            sampler.sample(max_rounds=0)

    def test_num_events_exposed(self):
        db, query = self._instance()
        sampler = SatisfyingValuationSampler(db, query, seed=0)
        assert sampler.num_events == 2
