"""Cross-cutting integration properties tying the paper's claims together."""

from hypothesis import given, settings, strategies as st

from repro.core.classify import Tractability, classify
from repro.core.problems import (
    COMP_UNIFORM,
    VAL,
    VAL_CODD,
    VAL_UNIFORM,
)
from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute, count_valuations_brute
from repro.exact.dispatch import (
    count_completions,
    count_valuations,
    select_completion_algorithm,
    select_valuation_algorithm,
)
from repro.workloads.generators import random_incomplete_db

from tests.conftest import small_incomplete_dbs


QUERIES = [
    BCQ([Atom("R", ["x", "x"])]),
    BCQ([Atom("R", ["x", "y"])]),
    BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])]),
    BCQ([Atom("R", ["x", "x"]), Atom("S", ["y"])]),
]

UNARY_QUERIES = [
    BCQ([Atom("R", ["x"])]),
    BCQ([Atom("R", ["x"]), Atom("S", ["x"])]),
    BCQ([Atom("R", ["x"]), Atom("S", ["y"])]),
]


class TestUniformIsSpecialCaseOfNonUniform:
    """The paper treats uniform databases as non-uniform ones with equal
    domains; counts must agree under the embedding."""

    @given(st.sampled_from(QUERIES), st.data())
    @settings(max_examples=30, deadline=None)
    def test_val_counts_agree(self, query, data):
        schema = {a.relation: a.arity for a in query.atoms}
        db = data.draw(small_incomplete_dbs(schema=schema, uniform=True))
        view = db.as_non_uniform()
        assert count_valuations_brute(db, query) == count_valuations_brute(
            view, query
        )

    @given(st.sampled_from(UNARY_QUERIES), st.data())
    @settings(max_examples=20, deadline=None)
    def test_comp_counts_agree(self, query, data):
        schema = {a.relation: a.arity for a in query.atoms}
        db = data.draw(small_incomplete_dbs(schema=schema, uniform=True))
        view = db.as_non_uniform()
        assert count_completions_brute(db, query) == count_completions_brute(
            view, query
        )


class TestClassifierConsistentWithDispatcher:
    """If the classifier says FP for the variant matching the instance, the
    dispatcher must actually have a polynomial algorithm (and vice versa
    the poly methods never disagree with brute force)."""

    @given(st.sampled_from(QUERIES + UNARY_QUERIES), st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_fp_cells_have_algorithms(self, query, seed):
        schema = {a.relation: a.arity for a in query.atoms}
        db = random_incomplete_db(schema, seed=seed, domain_size=2)
        report = classify(query)
        if db.is_uniform and not db.is_codd:
            val_variant, comp_variant = VAL_UNIFORM, COMP_UNIFORM
        elif not db.is_uniform and db.is_codd:
            val_variant, comp_variant = VAL_CODD, None
        else:
            val_variant, comp_variant = VAL, None
        if report.entry(val_variant).tractability is Tractability.FP:
            assert select_valuation_algorithm(db, query) is not None
        if (
            comp_variant is not None
            and report.entry(comp_variant).tractability is Tractability.FP
            and all(f.arity == 1 for f in db.facts)
        ):
            assert select_completion_algorithm(db, query) is not None

    @given(st.sampled_from(QUERIES + UNARY_QUERIES), st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_dispatcher_matches_brute(self, query, seed):
        schema = {a.relation: a.arity for a in query.atoms}
        for uniform in (True, False):
            for codd in (True, False):
                db = random_incomplete_db(
                    schema,
                    seed=seed,
                    uniform=uniform,
                    codd=codd,
                    domain_size=2,
                    num_nulls=2,
                )
                assert count_valuations(db, query) == (
                    count_valuations_brute(db, query)
                )
                if all(f.arity == 1 for f in db.facts):
                    assert count_completions(db, query) == (
                        count_completions_brute(db, query)
                    )


class TestValCompRelationship:
    """#Comp(q) <= #Val(q), with equality exactly when no two satisfying
    valuations collide — the Example 2.2 phenomenon."""

    @given(st.sampled_from(QUERIES), st.data())
    @settings(max_examples=25, deadline=None)
    def test_inequality(self, query, data):
        schema = {a.relation: a.arity for a in query.atoms}
        db = data.draw(small_incomplete_dbs(schema=schema))
        assert count_completions_brute(db, query) <= count_valuations_brute(
            db, query
        )

    def test_codd_with_distinct_constants_collapses_nothing(self):
        """On a Codd table whose facts all carry a distinguishing constant,
        valuations are injective on completions: #Val = #Comp."""
        db = IncompleteDatabase.uniform(
            [
                Fact("R", ["row1", Null(1)]),
                Fact("R", ["row2", Null(2)]),
            ],
            ["a", "b"],
        )
        query = BCQ([Atom("R", ["x", "y"])])
        assert count_valuations_brute(db, query) == count_completions_brute(
            db, query
        ) == 4
