"""Tests for the Section 6 reductions (SpanP) and the CNF substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.complexity.cnf import CNF3, Clause, count_k3sat, count_sat
from repro.complexity.classes import (
    CLASSES,
    inclusion_chain,
    is_known_subclass,
)
from repro.exact.brute import count_completions_brute, count_valuations_brute
from repro.graphs.counting import count_independent_sets
from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.graphs.hamilton import count_hamiltonian_induced_subgraphs
from repro.reductions.hamiltonian import (
    build_hamiltonian_db,
    count_ham_subgraphs_via_valuations,
    make_hamiltonian_query,
)
from repro.reductions.spanp import (
    NEGATED_QUERY,
    SPANP_QUERY,
    build_k3sat_db,
    count_k3sat_via_completions,
    pad_with_fresh_facts,
)


class TestCNF:
    def test_clause_semantics(self):
        clause = Clause((1, 2, 3), (True, False, True))
        assert clause.satisfied_by([True, True, False])
        assert not clause.satisfied_by([False, True, False])
        assert clause.sign_tuple() == (1, 0, 1)

    def test_clause_guards(self):
        with pytest.raises(ValueError):
            Clause((0, 1, 2), (True, True, True))

    def test_from_literals(self):
        formula = CNF3.from_literals(3, [(1, -2, 3)])
        assert formula.clauses[0].signs == (True, False, True)
        with pytest.raises(ValueError):
            CNF3.from_literals(3, [(1, 2)])
        with pytest.raises(ValueError):
            CNF3.from_literals(2, [(1, 2, 3)])

    def test_count_sat(self):
        # x1 ∨ x1 ∨ x1: half the assignments
        formula = CNF3.from_literals(2, [(1, 1, 1)])
        assert count_sat(formula) == 2
        # unsatisfiable pair
        formula = CNF3.from_literals(
            1, [(1, 1, 1), (-1, -1, -1)]
        )
        assert count_sat(formula) == 0

    def test_count_k3sat_projects(self):
        # F = x2 (as a padded clause): satisfying assignments project onto
        # both values of x1.
        formula = CNF3.from_literals(2, [(2, 2, 2)])
        assert count_k3sat(formula, 1) == 2
        assert count_k3sat(formula, 2) == 2
        with pytest.raises(ValueError):
            count_k3sat(formula, 0)


class TestTheorem63:
    def test_query_shape(self):
        assert SPANP_QUERY.is_self_join_free
        assert len(SPANP_QUERY.atoms) == 9  # S plus the eight C_abc
        assert NEGATED_QUERY.inner is SPANP_QUERY

    @given(
        st.lists(
            st.tuples(
                st.integers(1, 3), st.integers(1, 3), st.integers(1, 3),
                st.booleans(), st.booleans(), st.booleans(),
            ),
            min_size=1,
            max_size=3,
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_parsimonious_identity(self, raw_clauses, k):
        clauses = [
            Clause((a, b, c), (sa, sb, sc))
            for a, b, c, sa, sb, sc in raw_clauses
        ]
        formula = CNF3(3, clauses)
        assert count_k3sat_via_completions(formula, k) == count_k3sat(
            formula, k
        )

    def test_unsatisfiable_formula(self):
        formula = CNF3.from_literals(2, [(1, 1, 1), (-1, -1, -1)])
        assert count_k3sat_via_completions(formula, 1) == 0

    def test_relations_start_with_seven_triples(self):
        formula = CNF3.from_literals(3, [(1, 2, 3)])
        db = build_k3sat_db(formula, 1)
        # C111 has 7 ground triples + the clause fact on nulls
        assert len(db.relation("C111")) == 8
        assert len(db.relation("C000")) == 7

    def test_lemma_d1_padding(self):
        """#Compu(all)(D) = #Compu(q)(pad(D)) — the Prop. 6.1 accounting."""
        formula = CNF3.from_literals(2, [(1, -2, 2)])
        db = build_k3sat_db(formula, 2)
        padded = pad_with_fresh_facts(db)
        total = count_completions_brute(db, None)
        via_query = count_completions_brute(padded, SPANP_QUERY)
        assert total == via_query


class TestTheorem64:
    def test_query_model_checking(self):
        query = make_hamiltonian_query()
        db = build_hamiltonian_db(cycle_graph(3), k=3)
        from repro.db.valuation import apply_valuation, iter_valuations
        from repro.eval.evaluate import evaluate

        satisfied = sum(
            1
            for valuation in iter_valuations(db)
            if evaluate(query, apply_valuation(db, valuation))
        )
        assert satisfied == 1  # only the all-ones valuation

    def test_parsimonious_identity(self):
        for graph, k in [
            (cycle_graph(4), 4),
            (cycle_graph(4), 3),
            (complete_graph(4), 3),
            (path_graph(4), 3),
        ]:
            assert count_ham_subgraphs_via_valuations(
                graph, k
            ) == count_hamiltonian_induced_subgraphs(graph, k)

    def test_k_guard(self):
        with pytest.raises(ValueError):
            build_hamiltonian_db(cycle_graph(3), k=0)


class TestComplexityTaxonomy:
    def test_chain(self):
        assert inclusion_chain() == ["FP", "SpanL", "#P", "SpanP"]

    def test_transitive_inclusions(self):
        assert is_known_subclass("FP", "SpanP")
        assert is_known_subclass("SpanL", "#P")
        assert not is_known_subclass("SpanP", "FP")
        assert not is_known_subclass("SpanP", "#P")

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            is_known_subclass("FP", "NPO")

    def test_collapse_conditions_recorded(self):
        spanp = CLASSES["SpanP"]
        assert any("NP = UP" in cond for cond in spanp.collapse_conditions)
