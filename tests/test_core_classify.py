"""Tests that the classifier reproduces Table 1 cell by cell."""

import pytest

from repro.core.classify import Approximability, Tractability, classify
from repro.core.patterns import (
    PATTERN_BINARY,
    PATTERN_DOUBLE_EDGE,
    PATTERN_PATH,
    PATTERN_REPEAT,
    PATTERN_SHARED,
    PATTERN_UNARY,
)
from repro.core.problems import (
    COMP,
    COMP_CODD,
    COMP_UNIFORM,
    COMP_UNIFORM_CODD,
    VAL,
    VAL_CODD,
    VAL_UNIFORM,
    VAL_UNIFORM_CODD,
    ALL_VARIANTS,
    Mode,
    ProblemVariant,
)
from repro.core.query import Atom, BCQ


def q(*atoms):
    return BCQ(list(atoms))


FP = Tractability.FP
HARD = Tractability.SHARP_P_HARD
COMPLETE = Tractability.SHARP_P_COMPLETE
OPEN = Tractability.OPEN


class TestTable1Valuations:
    """Columns 1-2 of Table 1."""

    def test_repeat_pattern_row(self):
        report = classify(PATTERN_REPEAT)
        assert report.entry(VAL).tractability == COMPLETE  # Prop. 3.4
        assert report.entry(VAL_UNIFORM).tractability == COMPLETE
        assert report.entry(VAL_CODD).tractability == FP  # Thm. 3.7
        assert report.entry(VAL_UNIFORM_CODD).tractability == FP

    def test_shared_pattern_row(self):
        report = classify(PATTERN_SHARED)
        assert report.entry(VAL).tractability == COMPLETE  # Prop. 3.5
        assert report.entry(VAL_CODD).tractability == COMPLETE
        # uniform: R(x)∧S(x) avoids all three Theorem 3.9 patterns
        assert report.entry(VAL_UNIFORM).tractability == FP
        assert report.entry(VAL_UNIFORM_CODD).tractability == FP

    def test_path_pattern_row(self):
        report = classify(PATTERN_PATH)
        for variant in (VAL, VAL_CODD, VAL_UNIFORM, VAL_UNIFORM_CODD):
            assert report.entry(variant).tractability == COMPLETE

    def test_double_edge_row(self):
        report = classify(PATTERN_DOUBLE_EDGE)
        assert report.entry(VAL_UNIFORM).tractability == COMPLETE  # Prop. 3.8
        assert report.entry(VAL).tractability == COMPLETE  # via R(x)∧S(x)
        assert report.entry(VAL_CODD).tractability == COMPLETE
        # The open cell: R(x,y)∧S(x,y) has no path pattern, but has the
        # double-edge pattern, so uniform Codd is OPEN.
        assert report.entry(VAL_UNIFORM_CODD).tractability == OPEN

    def test_single_binary_atom_is_easy_for_valuations(self):
        report = classify(PATTERN_BINARY)
        for variant in (VAL, VAL_CODD, VAL_UNIFORM, VAL_UNIFORM_CODD):
            assert report.entry(variant).tractability == FP

    def test_repeat_on_codd_uniform_open_cell(self):
        """R(x,x): no path pattern => #ValuCd is FP?  No — R(x,x) is one of
        the three naive-uniform patterns but Theorem 3.7 already gives FP on
        Codd tables (non-uniform, hence uniform too)."""
        report = classify(PATTERN_REPEAT)
        assert report.entry(VAL_UNIFORM_CODD).tractability == FP

    def test_valuations_always_admit_fpras(self):
        for query in (PATTERN_REPEAT, PATTERN_PATH, PATTERN_DOUBLE_EDGE):
            report = classify(query)
            for variant in ALL_VARIANTS:
                if variant.mode is not Mode.VALUATIONS:
                    continue
                assert report.entry(variant).approximability in (
                    Approximability.FPRAS,
                    Approximability.EXACT_FP,
                )


class TestTable1Completions:
    """Columns 3-4 of Table 1."""

    def test_unary_query_row(self):
        report = classify(PATTERN_UNARY)
        assert report.entry(COMP).tractability == HARD  # Thm. 4.3
        assert report.entry(COMP_CODD).tractability == COMPLETE  # Thm. 4.4
        assert report.entry(COMP_UNIFORM).tractability == FP  # Thm. 4.6
        assert report.entry(COMP_UNIFORM_CODD).tractability == FP

    def test_binary_patterns_hard_everywhere(self):
        for query in (PATTERN_REPEAT, PATTERN_BINARY):
            report = classify(query)
            assert report.entry(COMP).tractability == HARD
            assert report.entry(COMP_CODD).tractability == COMPLETE
            assert report.entry(COMP_UNIFORM).tractability == HARD
            assert report.entry(COMP_UNIFORM_CODD).tractability == COMPLETE

    def test_unary_multi_atom_uniform_fp(self):
        report = classify(q(Atom("R", ["x"]), Atom("S", ["x"])))
        assert report.entry(COMP_UNIFORM).tractability == FP
        assert report.entry(COMP_UNIFORM_CODD).tractability == FP
        assert report.entry(COMP).tractability == HARD

    def test_no_fpras_for_nonuniform_completions(self):
        """Theorem 5.5 applies to every sjfBCQ."""
        for query in (PATTERN_UNARY, PATTERN_REPEAT, PATTERN_PATH):
            report = classify(query)
            assert (
                report.entry(COMP).approximability
                == Approximability.NO_FPRAS_UNLESS_NP_EQ_RP
            )
            assert (
                report.entry(COMP_CODD).approximability
                == Approximability.NO_FPRAS_UNLESS_NP_EQ_RP
            )

    def test_uniform_codd_approximation_open(self):
        """The Section 5.2 open question."""
        report = classify(PATTERN_BINARY)
        assert (
            report.entry(COMP_UNIFORM_CODD).approximability
            == Approximability.OPEN
        )

    def test_membership_annotations(self):
        report = classify(PATTERN_REPEAT)
        assert "#P" in report.entry(COMP_CODD).membership
        assert "SpanP" in report.entry(COMP).membership


class TestReportRendering:
    def test_to_table_contains_all_variants(self):
        text = classify(PATTERN_PATH).to_table()
        for variant in ALL_VARIANTS:
            assert variant.paper_name in text

    def test_rejects_self_joins(self):
        with pytest.raises(ValueError):
            classify(BCQ([Atom("R", ["x"]), Atom("R", ["y"])]))


class TestProblemVariantParsing:
    def test_paper_names(self):
        assert ProblemVariant.parse("#ValuCd") == VAL_UNIFORM_CODD
        assert ProblemVariant.parse("#Comp") == COMP
        assert str(COMP_UNIFORM) == "#Compu"

    def test_slash_form(self):
        assert ProblemVariant.parse("val/uniform/codd") == VAL_UNIFORM_CODD
        assert ProblemVariant.parse("comp") == COMP
        assert ProblemVariant.parse("comp/codd") == COMP_CODD

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            ProblemVariant.parse("#Nope")
        with pytest.raises(ValueError):
            ProblemVariant.parse("val/sideways")
        with pytest.raises(ValueError):
            ProblemVariant.parse("")

    def test_eight_variants(self):
        assert len(ALL_VARIANTS) == 8
        assert len({v.paper_name for v in ALL_VARIANTS}) == 8
