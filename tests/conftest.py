"""Shared fixtures and hypothesis strategies for the test suite.

The strategies generate *small* instances by design: brute-force oracles are
exponential, and the point of the property tests is count equality between
independent implementations, not scale.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.graphs.graph import Graph

# ---------------------------------------------------------------------------
# graphs
# ---------------------------------------------------------------------------


@st.composite
def small_graphs(draw, max_nodes: int = 6) -> Graph:
    """Random simple graphs with up to ``max_nodes`` nodes."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    graph = Graph(nodes=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                graph.add_edge(i, j)
    return graph


@st.composite
def small_bipartite_graphs(
    draw, max_side: int = 3, min_degree: int = 0
) -> Graph:
    """Random bipartite graphs over parts ``('a', i)`` / ``('b', j)``."""
    m = draw(st.integers(min_value=1, max_value=max_side))
    n = draw(st.integers(min_value=1, max_value=max_side))
    graph = Graph()
    left = [("a", i) for i in range(m)]
    right = [("b", j) for j in range(n)]
    for node in left + right:
        graph.add_node(node)
    for u in left:
        for v in right:
            if draw(st.booleans()):
                graph.add_edge(u, v)
    if min_degree > 0:
        for u in left:
            if graph.degree(u) == 0:
                graph.add_edge(u, draw(st.sampled_from(right)))
        for v in right:
            if graph.degree(v) == 0:
                graph.add_edge(v, draw(st.sampled_from(left)))
    return graph


# ---------------------------------------------------------------------------
# incomplete databases
# ---------------------------------------------------------------------------

CONSTANT_POOL = ["a", "b", "c", "out"]


@st.composite
def small_incomplete_dbs(
    draw,
    schema: dict[str, int] | None = None,
    uniform: bool | None = None,
    codd: bool | None = None,
    max_facts: int = 3,
    max_nulls: int = 3,
    max_domain: int = 3,
) -> IncompleteDatabase:
    """Random incomplete databases over a (possibly drawn) small schema."""
    if schema is None:
        num_relations = draw(st.integers(min_value=1, max_value=2))
        schema = {
            "R%d" % i: draw(st.integers(min_value=1, max_value=2))
            for i in range(num_relations)
        }
    make_uniform = draw(st.booleans()) if uniform is None else uniform
    make_codd = draw(st.booleans()) if codd is None else codd
    domain = CONSTANT_POOL[: draw(st.integers(min_value=1, max_value=max_domain))]

    fresh = [0]

    def fresh_null() -> Null:
        fresh[0] += 1
        return Null("f%d" % fresh[0])

    shared = [Null("s%d" % i) for i in range(max_nulls)]
    facts = []
    for relation in sorted(schema):
        arity = schema[relation]
        for _ in range(draw(st.integers(min_value=0, max_value=max_facts))):
            terms = []
            for _ in range(arity):
                if draw(st.booleans()):
                    terms.append(
                        fresh_null() if make_codd else draw(st.sampled_from(shared))
                    )
                else:
                    terms.append(draw(st.sampled_from(CONSTANT_POOL)))
            facts.append(Fact(relation, terms))

    if make_uniform:
        return IncompleteDatabase.uniform(facts, domain)
    used = set()
    for fact in facts:
        used |= fact.nulls()
    dom = {}
    for null in sorted(used):
        size = draw(st.integers(min_value=1, max_value=len(domain)))
        dom[null] = domain[:size]
    return IncompleteDatabase(facts, dom=dom)


@st.composite
def pattern_free_uniform_queries(draw) -> BCQ:
    """sjfBCQs avoiding all three Theorem 3.9 hard patterns."""
    queries = [
        BCQ([Atom("R", ["x"]), Atom("S", ["x"])]),
        BCQ([Atom("R", ["x"]), Atom("S", ["x"]), Atom("T", ["x"])]),
        BCQ([Atom("R", ["x"]), Atom("S", ["x"]), Atom("T", ["y"]), Atom("U", ["y"])]),
        BCQ([Atom("R", ["x", "z"]), Atom("S", ["x"])]),
        BCQ([Atom("R", ["x"]), Atom("S", ["y"])]),
    ]
    return draw(st.sampled_from(queries))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


# ---------------------------------------------------------------------------
# canonical paper objects
# ---------------------------------------------------------------------------


@pytest.fixture
def figure1_db() -> IncompleteDatabase:
    """The running example of Figure 1 / Example 2.2."""
    n1, n2 = Null(1), Null(2)
    facts = [Fact("S", ["a", "b"]), Fact("S", [n1, "a"]), Fact("S", ["a", n2])]
    return IncompleteDatabase(
        facts, dom={n1: ["a", "b", "c"], n2: ["a", "b"]}
    )


@pytest.fixture
def figure1_query() -> BCQ:
    return BCQ([Atom("S", ["x", "x"])])
