"""Tests for the paper-result index (traceability layer)."""

import importlib
import pathlib

import pytest

from repro.paperindex import all_results, find_results, format_result


class TestIndexIntegrity:
    def test_identifiers_unique(self):
        identifiers = [r.identifier for r in all_results()]
        assert len(set(identifiers)) == len(identifiers)

    def test_every_result_has_implementation_and_verification(self):
        for result in all_results():
            assert result.implemented_by
            assert result.verified_by

    def test_implementing_modules_importable(self):
        """Every `implemented_by` entry must resolve to a real module or a
        real attribute of one — the index cannot rot silently."""
        for result in all_results():
            for target in result.implemented_by:
                module_name, attribute = target, None
                try:
                    importlib.import_module(module_name)
                    continue
                except ImportError:
                    module_name, _, attribute = target.rpartition(".")
                module = importlib.import_module(module_name)
                assert hasattr(module, attribute), target

    def test_verifying_files_exist(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        for result in all_results():
            for target in result.verified_by:
                assert (root / target).exists(), target

    def test_headline_results_present(self):
        identifiers = " | ".join(r.identifier for r in all_results())
        for needle in (
            "Theorem 3.6", "Theorem 3.7", "Theorem 3.9",
            "Theorems 4.3", "Theorems 4.6", "Corollary 5.3",
            "Theorem 6.3", "Theorem 6.4", "Table 1", "Figure 1",
        ):
            assert needle in identifiers


class TestSearch:
    def test_find_by_identifier_fragment(self):
        assert len(find_results("6.3")) == 1
        assert find_results("6.3")[0].identifier == "Theorem 6.3"

    def test_find_by_statement_fragment(self):
        hits = find_results("fpras")
        assert any("5.3" in r.identifier for r in hits)

    def test_find_is_case_insensitive(self):
        assert find_results("TABLE 1")

    def test_no_match(self):
        assert find_results("nonexistent theorem 99") == []

    def test_format_contains_sections(self):
        text = format_result(all_results()[0])
        assert "implemented by:" in text
        assert "verified by:" in text
