"""End-to-end tests for the #Comp hardness reductions (Sections 4-5)."""

import pytest
from hypothesis import given, settings

from repro.exact.brute import count_completions_brute
from repro.graphs.counting import (
    count_colorings,
    count_independent_sets,
    count_vertex_covers,
)
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.pseudoforest import count_induced_pseudoforests
from repro.reductions.gap3col import (
    build_gap_db,
    decide_three_colorability_via_approximation,
    is_three_colorable_via_completions,
)
from repro.reductions.independent_set import (
    build_is_completion_db,
    count_independent_sets_via_completions,
)
from repro.reductions.pseudoforest import (
    build_pseudoforest_db,
    count_pseudoforests_via_completions,
)
from repro.reductions.vertex_cover import (
    build_vertex_cover_db,
    count_vertex_covers_via_completions,
)

from tests.conftest import small_bipartite_graphs, small_graphs


class TestProp42VertexCovers:
    @given(small_graphs(max_nodes=5))
    @settings(max_examples=20, deadline=None)
    def test_parsimonious_identity(self, graph):
        assert count_vertex_covers_via_completions(
            graph
        ) == count_vertex_covers(graph)

    def test_database_is_unary_codd_nonuniform(self):
        db = build_vertex_cover_db(complete_graph(3))
        assert db.is_codd
        assert not db.is_uniform
        assert db.schema() == {"R": 1}

    def test_matches_independent_sets_too(self):
        """Theorem 5.5's bridge: #VC = #IS via complementation."""
        graph = cycle_graph(5)
        assert count_vertex_covers_via_completions(
            graph
        ) == count_independent_sets(graph)


class TestProp45aIndependentSets:
    @given(small_graphs(max_nodes=4))
    @settings(max_examples=15, deadline=None)
    def test_count_identity(self, graph):
        assert count_independent_sets_via_completions(
            graph
        ) == count_independent_sets(graph)

    def test_all_completions_satisfy_loop_query(self):
        from repro.core.query import Atom, BCQ
        from repro.db.valuation import iter_completions
        from repro.eval.evaluate import evaluate

        db = build_is_completion_db(path_graph(3))
        query = BCQ([Atom("R", ["x", "x"])])
        for completion in iter_completions(db):
            assert evaluate(query, completion)

    def test_fixed_domain_01(self):
        db = build_is_completion_db(path_graph(2))
        assert db.uniform_domain == frozenset({0, 1})


class TestProp45bPseudoforests:
    @given(small_bipartite_graphs(max_side=2))
    @settings(max_examples=10, deadline=None)
    def test_parsimonious_identity(self, graph):
        assert count_pseudoforests_via_completions(
            graph
        ) == count_induced_pseudoforests(graph)

    def test_k22(self):
        graph = complete_bipartite_graph(2, 2)
        assert count_pseudoforests_via_completions(
            graph
        ) == count_induced_pseudoforests(graph)

    def test_database_is_uniform_codd(self):
        db = build_pseudoforest_db(complete_bipartite_graph(2, 2))
        assert db.is_codd
        assert db.is_uniform

    def test_rejects_non_bipartite(self):
        with pytest.raises(ValueError):
            build_pseudoforest_db(cycle_graph(3))


class TestProp56GapGadget:
    @given(small_graphs(max_nodes=4))
    @settings(max_examples=10, deadline=None)
    def test_gap_is_exactly_8_or_7(self, graph):
        db = build_gap_db(graph)
        completions = count_completions_brute(db, None, budget=None)
        colorable = count_colorings(graph, 3) > 0
        assert completions == (8 if colorable else 7)

    def test_decision_via_exact_count(self):
        assert is_three_colorable_via_completions(cycle_graph(5))
        assert not is_three_colorable_via_completions(complete_graph(4))

    def test_decision_via_good_approximation(self):
        """A genuine 1/16-approximation decides 3-colorability — the BPP
        algorithm of Prop. 5.6 run with an exact oracle playing the FPRAS."""

        def exact_as_approximator(db, query, epsilon):
            return float(count_completions_brute(db, query, budget=None))

        assert decide_three_colorability_via_approximation(
            cycle_graph(4), exact_as_approximator
        )
        assert not decide_three_colorability_via_approximation(
            complete_graph(4), exact_as_approximator
        )

    def test_oracle_sanity_guard(self):
        with pytest.raises(ArithmeticError):
            is_three_colorable_via_completions(
                cycle_graph(3), oracle=lambda db, q: 99
            )

    def test_triangle_with_loops_reachable(self):
        """7 completions even for the empty graph: the self-loop patterns."""
        empty = Graph()
        db = build_gap_db(empty)
        # empty graph is 3-colorable, so 8
        assert count_completions_brute(db, None, budget=None) == 8
