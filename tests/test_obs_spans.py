"""Phase spans: nesting, exception safety, captures, sinks, no-op path."""

import json

import pytest

from repro.obs import (
    JsonlSink,
    Metrics,
    add_sink,
    capture,
    emit_record,
    enabled,
    event,
    incr,
    remove_sink,
    render_span_tree,
    set_enabled,
    span,
)
from repro.obs.spans import _NULL_SPAN


class TestNesting:
    def test_children_attach_to_enclosing_span(self):
        registry = Metrics()
        with capture() as captured:
            with span("outer", registry=registry):
                with span("inner.a", registry=registry):
                    pass
                with span("inner.b", registry=registry):
                    pass
        assert [root.name for root in captured.roots] == ["outer"]
        outer = captured.roots[0]
        assert [child.name for child in outer.children] == [
            "inner.a", "inner.b",
        ]
        assert outer.seconds >= sum(c.seconds for c in outer.children)

    def test_durations_feed_registry_histograms(self):
        registry = Metrics()
        with span("phase.x", registry=registry):
            pass
        with span("phase.x", registry=registry):
            pass
        assert registry.histogram("phase.x").count == 2

    def test_fields_annotate_span(self):
        registry = Metrics()
        with capture() as captured:
            with span("p", registry=registry, nodes=7) as live:
                assert live.fields == {"nodes": 7}
        assert captured.roots[0].to_dict()["nodes"] == 7

    def test_self_totals_reconcile_with_wall_time(self):
        registry = Metrics()
        with capture() as captured:
            with span("root", registry=registry):
                with span("child", registry=registry):
                    pass
        exclusive = captured.self_totals()
        wall = captured.seconds
        assert sum(exclusive.values()) == pytest.approx(wall, rel=1e-6)


class TestExceptionSafety:
    def test_span_pops_and_records_error_on_raise(self):
        registry = Metrics()
        with capture() as captured:
            with pytest.raises(RuntimeError):
                with span("boom", registry=registry):
                    raise RuntimeError("x")
            # The stack unwound: a new span is a root, not a child of boom.
            with span("after", registry=registry):
                pass
        assert [r.name for r in captured.roots] == ["boom", "after"]
        assert captured.roots[0].fields["error"] == "RuntimeError"
        assert registry.histogram("boom").count == 1

    def test_capture_detaches_on_exception(self):
        registry = Metrics()
        with pytest.raises(RuntimeError):
            with capture():
                raise RuntimeError("x")
        with capture() as captured:
            with span("later", registry=registry):
                pass
        assert [r.name for r in captured.roots] == ["later"]


class TestCaptures:
    def test_counters_accumulate_per_capture(self):
        with capture() as outer:
            incr("hits", 2)
            with capture() as inner:
                incr("hits")
                event("planner.decision", chosen="ddnnf")
        assert outer.counters["hits"] == 3
        assert outer.counters["planner.decision"] == 1
        assert inner.counters == {"hits": 1, "planner.decision": 1}

    def test_phase_totals_sum_repeated_names(self):
        registry = Metrics()
        with capture() as captured:
            for _ in range(3):
                with span("pass", registry=registry):
                    pass
        totals = captured.phase_totals()
        assert set(totals) == {"pass"}
        assert captured.roots[0].seconds <= totals["pass"]


class TestDisabled:
    def test_everything_degrades_to_noop(self):
        registry = Metrics()
        previous = set_enabled(False)
        try:
            assert not enabled()
            assert span("p", registry=registry) is _NULL_SPAN
            with capture() as captured:
                with span("p", registry=registry):
                    pass
                incr("c")
                event("e")
            assert captured.roots == []
            assert captured.counters == {}
            assert registry.histogram("p").count == 0
        finally:
            set_enabled(previous)

    def test_set_enabled_returns_previous_state(self):
        assert set_enabled(False) is True
        assert set_enabled(True) is False
        assert enabled()


class TestSinks:
    def test_jsonl_sink_streams_spans_and_events(self, tmp_path):
        registry = Metrics()
        path = tmp_path / "metrics.jsonl"
        with JsonlSink(str(path)) as sink:
            with span("outer", registry=registry):
                with span("inner", registry=registry, nodes=3):
                    pass
            event("planner.decision", chosen="ddnnf")
            emit_record({"type": "span", "name": "shipped", "seconds": 0.5})
        assert sink.records == 4
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        by_name = {record["name"]: record for record in records}
        # Children finish (and stream) before their parents.
        assert [r["name"] for r in records] == [
            "inner", "outer", "planner.decision", "shipped",
        ]
        assert by_name["inner"]["path"] == "outer/inner"
        assert by_name["inner"]["depth"] == 1
        assert by_name["inner"]["nodes"] == 3
        assert by_name["outer"]["depth"] == 0
        assert by_name["planner.decision"]["type"] == "event"
        assert by_name["planner.decision"]["chosen"] == "ddnnf"

    def test_callable_sink_and_removal(self):
        registry = Metrics()
        seen = []
        add_sink(seen.append)
        try:
            with span("a", registry=registry):
                pass
        finally:
            remove_sink(seen.append)
        with span("b", registry=registry):
            pass
        assert [record["name"] for record in seen] == ["a"]


class TestRendering:
    def test_render_span_tree_shows_nesting_and_shares(self):
        registry = Metrics()
        with capture() as captured:
            with span("root", registry=registry):
                with span("child", registry=registry):
                    pass
        text = render_span_tree(captured.roots)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].lstrip().startswith("child")
        assert "%" in lines[0]
