"""Tests for the text/CSV tooling."""

import pytest
from hypothesis import given, settings

from repro.core.query import Atom, BCQ, Const, Negation, UCQ
from repro.db.fact import Fact
from repro.db.terms import Null
from repro.io.csv_loader import load_csv_relation
from repro.io.databases import (
    DatabaseSyntaxError,
    format_database,
    parse_database,
)
from repro.io.queries import QuerySyntaxError, format_query, parse_query

from tests.conftest import small_incomplete_dbs


class TestQueryParsing:
    def test_bcq(self):
        query = parse_query("R(x, y), S(y)")
        assert query == BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])

    def test_constants(self):
        query = parse_query("R(x, 'a'), S(42)")
        assert query == BCQ(
            [Atom("R", ["x", Const("a")]), Atom("S", [Const(42)])]
        )

    def test_ucq(self):
        query = parse_query("R(x) | S(x)")
        assert isinstance(query, UCQ)
        assert len(query.disjuncts) == 2

    def test_negation(self):
        query = parse_query("!R(x, x)")
        assert isinstance(query, Negation)
        assert query.inner == BCQ([Atom("R", ["x", "x"])])

    def test_errors(self):
        for bad in ("", "R(x", "R(x))", "R(x) S(y)", "R()", "R(x,)"):
            with pytest.raises(QuerySyntaxError):
                parse_query(bad)

    def test_roundtrip(self):
        for text in ("R(x, y), S(y)", "R(x) | S(x, 'a')", "!R(x, x)"):
            query = parse_query(text)
            assert parse_query(format_query(query)) == query


class TestDatabaseParsing:
    UNIFORM_TEXT = """
    # a toy instance
    domain a b 3
    R(a, ?n1)
    S(?n1, 'hello world')
    """

    def test_uniform(self):
        db = parse_database(self.UNIFORM_TEXT)
        assert db.is_uniform
        assert db.uniform_domain == frozenset({"a", "b", 3})
        assert Fact("R", ["a", Null("n1")]) in db.facts
        assert Fact("S", [Null("n1"), "hello world"]) in db.facts

    def test_non_uniform(self):
        db = parse_database(
            "null n1: a b\nnull n2: 1 2\nR(?n1, ?n2)\n"
        )
        assert not db.is_uniform
        assert db.domain_of(Null("n1")) == frozenset({"a", "b"})
        assert db.domain_of(Null("n2")) == frozenset({1, 2})

    def test_errors(self):
        with pytest.raises(DatabaseSyntaxError):
            parse_database("domain a\ndomain b\nR(a)")
        with pytest.raises(DatabaseSyntaxError):
            parse_database("domain a\nnull n: a\nR(?n)")
        with pytest.raises(DatabaseSyntaxError):
            parse_database("domain a\nwhat is this")
        with pytest.raises(DatabaseSyntaxError):
            parse_database("null n a b\nR(?n)")
        with pytest.raises(DatabaseSyntaxError):
            parse_database("domain a\nR(?)")

    @given(small_incomplete_dbs())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, db):
        parsed = parse_database(format_database(db))
        assert parsed.facts == db.facts
        assert parsed.is_uniform == db.is_uniform
        for null in db.nulls:
            # labels survive as strings
            assert parsed.domain_of(Null(str(null.label))) == db.domain_of(
                null
            )


class TestCSV:
    def test_fresh_nulls(self):
        csv_text = "alice,NULL\nbob,42\n"
        db = load_csv_relation(csv_text, "Emp", domain=[1, 42, 99])
        assert db.is_uniform
        assert len(db.nulls) == 1
        assert Fact("Emp", ["bob", 42]) in db.facts

    def test_shared_nulls_make_naive_tables(self):
        csv_text = "alice,NULL:salary\nbob,NULL:salary\n"
        db = load_csv_relation(csv_text, "Emp", domain=[1, 2])
        assert len(db.nulls) == 1
        assert not db.is_codd

    def test_per_column_domains(self):
        csv_text = "NULL,NULL\n"
        db = load_csv_relation(
            csv_text,
            "R",
            column_domains={0: ["a", "b"], 1: [1, 2, 3]},
        )
        assert not db.is_uniform
        domains = sorted(
            (sorted(map(repr, db.domain_of(n))) for n in db.nulls)
        )
        assert domains == [["'a'", "'b'"], ["1", "2", "3"]]

    def test_shared_null_across_columns_intersects(self):
        csv_text = "NULL:x,NULL:x\n"
        db = load_csv_relation(
            csv_text, "R", column_domains={0: [1, 2], 1: [2, 3]}
        )
        null = db.nulls[0]
        assert db.domain_of(null) == frozenset({2})

    def test_header_skipped(self):
        csv_text = "name,age\nalice,NULL\n"
        db = load_csv_relation(
            csv_text, "P", domain=[1, 2], has_header=True
        )
        assert len(db.facts) == 1

    def test_requires_exactly_one_domain_kind(self):
        with pytest.raises(ValueError):
            load_csv_relation("a,b\n", "R")
        with pytest.raises(ValueError):
            load_csv_relation(
                "a,b\n", "R", domain=[1], column_domains={0: [1]}
            )

    def test_missing_column_domain(self):
        with pytest.raises(ValueError):
            load_csv_relation("NULL\n", "R", column_domains={5: [1]})
