"""Tests for terms, facts and complete databases."""

import pytest

from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.terms import Null, fresh_nulls, is_constant, is_null


class TestNull:
    def test_equality_by_label(self):
        assert Null("x") == Null("x")
        assert Null("x") != Null("y")
        assert hash(Null("x")) == hash(Null("x"))

    def test_null_never_equals_constant(self):
        assert Null("a") != "a"
        assert "a" != Null("a")

    def test_predicates(self):
        assert is_null(Null(1))
        assert not is_null("a")
        assert is_constant("a")
        assert not is_constant(Null(1))

    def test_repr(self):
        assert repr(Null("n1")) == "⊥n1"

    def test_fresh_nulls_distinct(self):
        nulls = fresh_nulls(5, prefix="q")
        assert len(set(nulls)) == 5

    def test_ordering_is_deterministic(self):
        assert sorted([Null("b"), Null("a")]) == [Null("a"), Null("b")]


class TestFact:
    def test_value_semantics(self):
        assert Fact("R", ["a", 1]) == Fact("R", ["a", 1])
        assert Fact("R", ["a"]) != Fact("S", ["a"])
        assert len({Fact("R", ["a"]), Fact("R", ["a"])}) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Fact("R", [])
        with pytest.raises(ValueError):
            Fact("", ["a"])

    def test_null_inspection(self):
        fact = Fact("R", [Null("x"), "a", Null("x"), Null("y")])
        assert fact.nulls() == {Null("x"), Null("y")}
        assert fact.null_positions() == [0, 2, 3]
        assert fact.constants() == {"a"}
        assert not fact.is_ground()
        assert Fact("R", ["a"]).is_ground()

    def test_substitute(self):
        fact = Fact("R", [Null("x"), "a"])
        ground = fact.substitute({Null("x"): "b"})
        assert ground == Fact("R", ["b", "a"])
        # missing nulls stay in place
        partial = Fact("R", [Null("x"), Null("y")]).substitute({Null("x"): "b"})
        assert partial == Fact("R", ["b", Null("y")])


class TestDatabase:
    def test_set_semantics(self):
        db = Database([Fact("R", ["a"]), Fact("R", ["a"])])
        assert len(db) == 1

    def test_rejects_nulls(self):
        with pytest.raises(ValueError):
            Database([Fact("R", [Null("x")])])

    def test_rejects_inconsistent_arity(self):
        with pytest.raises(ValueError):
            Database([Fact("R", ["a"]), Fact("R", ["a", "b"])])

    def test_relation_access(self):
        db = Database([Fact("R", ["a"]), Fact("S", ["b", "c"])])
        assert db.relations == {"R", "S"}
        assert db.relation("R") == frozenset({Fact("R", ["a"])})
        assert db.arity_of("S") == 2
        assert db.arity_of("T") is None

    def test_active_domain(self):
        db = Database([Fact("R", ["a", "b"]), Fact("S", ["b"])])
        assert db.active_domain() == {"a", "b"}

    def test_subset_and_union(self):
        small = Database([Fact("R", ["a"])])
        big = small | Database([Fact("S", ["b"])])
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_equality_and_hash(self):
        left = Database([Fact("R", ["a"]), Fact("R", ["b"])])
        right = Database([Fact("R", ["b"]), Fact("R", ["a"])])
        assert left == right
        assert len({left, right}) == 1
