"""The paper's inline examples and remarks, reproduced verbatim.

One test per quotable claim: Example 2.1 and Figure 1 live in the db/brute
test modules; here we cover the remaining worked material — Example 3.10,
the warm-up claims of Appendix B.6, the Section 1 'conclusions' bullets,
and the Theorem 3.6 footnote.
"""

from repro.core.classify import Tractability, classify
from repro.core.problems import (
    COMP_UNIFORM_CODD,
    VAL_CODD,
    VAL_UNIFORM_CODD,
)
from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import count_total_valuations, iter_valuations
from repro.exact.brute import count_completions_brute, count_valuations_brute
from repro.exact.val_uniform import count_valuations_uniform
from repro.util.combinatorics import binomial, surjections


class TestExample310:
    """#Valu(R(x) ∧ S(x)) via the explicit double sum of Example 3.10."""

    def _instance(self):
        # C_R = {r}, C_S = {s}; n_R = 2, n_S = 1 nulls; dom ⊇ C_R ∪ C_S.
        facts = [
            Fact("R", ["r"]),
            Fact("R", [Null("a1")]),
            Fact("R", [Null("a2")]),
            Fact("S", ["s"]),
            Fact("S", [Null("b1")]),
        ]
        dom = ["r", "s", "m1", "m2"]
        return IncompleteDatabase.uniform(facts, dom), BCQ(
            [Atom("R", ["x"]), Atom("S", ["x"])]
        )

    def test_paper_formula(self):
        """The closed form at the end of Example 3.10:

        non-sat = sum_{m',r'} C(m,m') C(c_R,r') surj(n_R, m'+r')
                  * (d - c_R - m')^{n_S}
        """
        db, query = self._instance()
        d = 4
        c_r, c_s = 1, 1
        n_r, n_s = 2, 1
        m = d - c_r - c_s
        non_satisfying = sum(
            binomial(m, m_prime)
            * binomial(c_r, r_prime)
            * surjections(n_r, m_prime + r_prime)
            * (d - c_r - m_prime) ** n_s
            for m_prime in range(m + 1)
            for r_prime in range(c_r + 1)
        )
        total = d ** (n_r + n_s)
        expected = total - non_satisfying
        assert count_valuations_uniform(db, query) == expected
        assert count_valuations_brute(db, query) == expected


class TestSectionOneConclusions:
    """The bulleted 'conclusions' of the introduction, checked on data."""

    def test_val_easier_than_comp_on_binary_codd(self):
        """'#CompuCd(∃xy R(x,y)) is hard, while #ValuCd(∃xy R(x,y)) is
        tractable': verify the classifier states it and the poly algorithm
        exists for the Val side only."""
        query = BCQ([Atom("R", ["x", "y"])])
        report = classify(query)
        assert report.entry(VAL_UNIFORM_CODD).tractability is Tractability.FP
        assert (
            report.entry(COMP_UNIFORM_CODD).tractability
            is Tractability.SHARP_P_COMPLETE
        )

    def test_codd_helps_valuations(self):
        """'counting valuations is easier for Codd tables': R(x,x) is hard
        on naive tables but FP on Codd tables."""
        query = BCQ([Atom("R", ["x", "x"])])
        report = classify(query)
        assert report.entry(VAL_CODD).tractability is Tractability.FP

    def test_counting_all_valuations_is_trivial(self):
        """'counting the total number of valuations ... can always be done
        in polynomial time' — the product formula."""
        db = IncompleteDatabase(
            [Fact("R", [Null(1), Null(2)])],
            dom={Null(1): ["a", "b", "c"], Null(2): ["a"]},
        )
        assert count_total_valuations(db) == 3
        assert sum(1 for _ in iter_valuations(db)) == 3

    def test_even_counting_all_completions_is_hard_shape(self):
        """'simply counting the completions of a uniform Codd table with a
        single binary relation R is #P-hard' — we cannot verify hardness,
        but the instance family shows completions != valuations in a way
        no product formula captures (counts are not multiplicative)."""
        null1, null2 = Null(1), Null(2)
        db = IncompleteDatabase.uniform(
            [Fact("R", [null1, null2])], ["a", "b"]
        )
        # 4 valuations, 4 completions here...
        assert count_completions_brute(db, None) == 4
        db2 = IncompleteDatabase.uniform(
            [Fact("R", [null1, "a"]), Fact("R", [null2, "a"])], ["a", "b"]
        )
        # ...but 3 completions from 4 valuations here: no per-null factor.
        assert count_completions_brute(db2, None) == 3


class TestTheorem36Footnote:
    def test_footnote_2_empty_relation(self):
        """Footnote 2: with a pattern-free query, *every* valuation
        satisfies q 'except when one relation is empty, in which case the
        result is simply zero'."""
        from repro.exact.val_nonuniform import (
            count_valuations_single_occurrence,
        )

        query = BCQ([Atom("R", ["x", "y"]), Atom("S", ["z"])])
        populated = IncompleteDatabase(
            [Fact("R", [Null(1), "c"]), Fact("S", ["c"])],
            dom={Null(1): ["a", "b"]},
        )
        assert count_valuations_single_occurrence(populated, query) == 2
        missing_s = IncompleteDatabase(
            [Fact("R", [Null(1), "c"])], dom={Null(1): ["a", "b"]}
        )
        assert count_valuations_single_occurrence(missing_s, query) == 0
