"""The metrics registry: exact quantiles, instruments, dump/merge."""

import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, Metrics, quantile


class TestQuantile:
    def test_matches_nearest_rank_definition_exhaustively(self):
        # Nearest-rank: the element at rank ceil(q * n), 1-based.
        import math

        for n in (1, 2, 3, 5, 10, 17, 100):
            values = list(range(n))
            for q in (0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
                rank = max(1, math.ceil(q * n))
                assert quantile(values, q) == values[rank - 1], (n, q)

    def test_extremes_are_min_and_max(self):
        values = [3, 7, 11, 20]
        assert quantile(values, 0.0) == 3
        assert quantile(values, 1.0) == 20

    def test_exact_not_interpolated(self):
        # p50 of an even-length list is a data point, never an average.
        assert quantile([1, 100], 0.5) == 1
        assert quantile([1, 2, 100], 0.5) == 2

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1], 1.5)
        with pytest.raises(ValueError):
            quantile([1], -0.1)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge_keeps_last_value(self):
        gauge = Gauge("g")
        assert gauge.value is None
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_summary_and_quantiles_are_exact(self):
        histogram = Histogram("h")
        histogram.observe_many([5, 1, 3, 2, 4])
        assert histogram.count == 5
        assert histogram.sum == 15
        assert histogram.quantile(0.5) == 3
        summary = histogram.summary()
        assert summary == {
            "count": 5, "sum": 15, "min": 1, "max": 5,
            "p50": 3, "p90": 5, "p99": 5,
        }

    def test_empty_histogram_summary(self):
        assert Histogram("h").summary() == {"count": 0, "sum": 0}

    def test_histogram_values_returns_copy_in_arrival_order(self):
        histogram = Histogram("h")
        histogram.observe(2)
        histogram.observe(1)
        values = histogram.values()
        values.append(99)
        assert histogram.values() == [2, 1]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = Metrics()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_name_cannot_change_kind(self):
        registry = Metrics()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_inc_many_skips_non_numeric_and_none(self):
        registry = Metrics()
        registry.inc_many(
            "solver",
            {"decisions": 7, "core": "trail", "width": None, "flag": True},
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"solver.decisions": 7}

    def test_snapshot_shape(self):
        registry = Metrics()
        registry.counter("c").inc(2)
        registry.gauge("g").set(9)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 9}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_dump_merge_is_lossless_for_quantiles(self):
        # Worker registries merge into a parent without losing exactness:
        # the merged quantile equals the quantile of the concatenation.
        parent = Metrics()
        parent.histogram("h").observe_many([1, 10])
        parent.counter("c").inc(5)
        worker = Metrics()
        worker.histogram("h").observe_many([2, 3, 4])
        worker.counter("c").inc(7)
        worker.gauge("g").set("late")
        parent.merge(worker.dump())
        assert parent.counter("c").value == 12
        assert parent.gauge("g").value == "late"
        assert parent.histogram("h").count == 5
        assert parent.histogram("h").quantile(0.5) == 3

    def test_merge_accepts_empty_dump(self):
        registry = Metrics()
        registry.merge({})
        assert registry.snapshot()["counters"] == {}

    def test_thread_aggregation(self):
        # Counters and histograms are shared across threads; totals add up.
        registry = Metrics()
        counter = registry.counter("n")
        histogram = registry.histogram("h")

        def work():
            for i in range(500):
                counter.inc()
                histogram.observe(i)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 2000
        assert histogram.count == 2000
