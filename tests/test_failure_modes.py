"""Failure-injection tests: every public entry point must reject bad input
with a clear error rather than return a wrong count."""

import pytest

from repro.core.query import Atom, BCQ
from repro.core.patterns import is_pattern_of
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import (
    BruteForceBudgetExceeded,
    count_completions_brute,
    count_valuations_brute,
)
from repro.exact.dispatch import count_completions, count_valuations
from repro.exact.val_codd import count_valuations_codd
from repro.approx.fpras import KarpLubyEstimator
from repro.approx.montecarlo import naive_monte_carlo_valuations


def _db():
    return IncompleteDatabase(
        [Fact("R", [Null(1), Null(1)])], dom={Null(1): ["a", "b"]}
    )


class TestPatternGuards:
    def test_rejects_self_joins(self):
        query = BCQ([Atom("R", ["x"]), Atom("R", ["y"])])
        unary = BCQ([Atom("P", ["x"])])
        with pytest.raises(ValueError):
            is_pattern_of(unary, query)
        with pytest.raises(ValueError):
            is_pattern_of(query, unary)

    def test_rejects_constants_in_patterns(self):
        from repro.core.query import Const

        with_constant = BCQ([Atom("R", ["x", Const("a")])])
        unary = BCQ([Atom("P", ["x"])])
        with pytest.raises(ValueError):
            is_pattern_of(unary, with_constant)


class TestAlgorithmPreconditions:
    def test_codd_algorithm_rejects_naive_tables(self):
        with pytest.raises(ValueError):
            count_valuations_codd(_db(), BCQ([Atom("R", ["x", "x"])]))

    def test_codd_algorithm_rejects_arity_mismatch(self):
        db = IncompleteDatabase(
            [Fact("R", [Null(1)])], dom={Null(1): ["a"]}
        )
        with pytest.raises(ValueError):
            count_valuations_codd(db, BCQ([Atom("R", ["x", "y"])]))

    def test_budget_exceeded_is_loud(self):
        nulls = [Null(i) for i in range(25)]
        db = IncompleteDatabase.uniform(
            [Fact("R", [n]) for n in nulls], ["a", "b"]
        )
        query = BCQ([Atom("R", ["x"])])
        with pytest.raises(BruteForceBudgetExceeded):
            count_valuations_brute(db, query)
        with pytest.raises(BruteForceBudgetExceeded):
            count_completions_brute(db, query)
        # Forcing brute force on a hard cell still hits the budget loudly:
        # R(x) ∧ S(x) on a non-uniform *naive* table is such a cell
        # (the shared-variable pattern rules out Thms 3.6/3.7;
        # non-uniformity rules out Thm 3.9).
        shared = Null("shared")
        naive = IncompleteDatabase(
            [Fact("R", [n]) for n in nulls]
            + [Fact("R", [shared]), Fact("S", [shared])],
            dom={n: ["a", "b"] for n in nulls} | {shared: ["a", "c"]},
        )
        hard_query = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
        with pytest.raises(BruteForceBudgetExceeded):
            count_valuations(naive, hard_query, method="brute")
        # ... but `auto` no longer falls off the cliff: it routes the hard
        # cell to the lineage backend, which handles the 2^26 valuations
        # exactly (every valuation satisfies q: R(shared)/S(shared) always
        # share the shared null's value).
        assert count_valuations(naive, hard_query) == 2**25 * 2

    def test_dispatcher_rejects_unknown_methods(self):
        query = BCQ([Atom("R", ["x", "x"])])
        with pytest.raises(ValueError):
            count_valuations(_db(), query, method="quantum")
        with pytest.raises(ValueError):
            count_completions(_db(), query, method="quantum")


class TestApproximatorGuards:
    def test_estimator_parameter_validation(self):
        estimator = KarpLubyEstimator(
            _db(), BCQ([Atom("R", ["x", "x"])]), seed=0
        )
        for bad_epsilon in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                estimator.sample_count(bad_epsilon)
        with pytest.raises(ValueError):
            estimator.sample_count(0.1, delta=0.0)

    def test_monte_carlo_empty_domain_returns_zero(self):
        """No valuations exist, so the (exactly known) count is 0.0 — the
        estimator short-circuits before sampling would fail."""
        db = IncompleteDatabase([Fact("R", [Null(1)])], dom={Null(1): []})
        assert naive_monte_carlo_valuations(
            db, BCQ([Atom("R", ["x"])]), samples=5
        ) == 0.0

    def test_empty_domain_counts_are_zero_not_errors(self):
        """Exact counters treat an empty domain as zero valuations."""
        db = IncompleteDatabase([Fact("R", [Null(1)])], dom={Null(1): []})
        query = BCQ([Atom("R", ["x"])])
        assert count_valuations_brute(db, query) == 0
        assert count_completions_brute(db, query) == 0
