"""Tests for Hopcroft-Karp maximum bipartite matching (Lemma B.2 engine)."""

from itertools import permutations

from hypothesis import given, settings, strategies as st

from repro.graphs.matching import (
    has_perfect_left_matching,
    hopcroft_karp,
    maximum_matching_size,
)


class TestHopcroftKarp:
    def test_perfect_matching(self):
        adjacency = {0: ["a", "b"], 1: ["a"], 2: ["b", "c"]}
        matching = hopcroft_karp([0, 1, 2], adjacency)
        assert len(matching) == 3
        assert len(set(matching.values())) == 3
        for left, right in matching.items():
            assert right in adjacency[left]

    def test_bottleneck(self):
        adjacency = {0: ["a"], 1: ["a"], 2: ["a"]}
        assert maximum_matching_size([0, 1, 2], adjacency) == 1
        assert not has_perfect_left_matching([0, 1, 2], adjacency)

    def test_empty(self):
        assert maximum_matching_size([], {}) == 0
        assert has_perfect_left_matching([], {})

    def test_isolated_left_node(self):
        assert maximum_matching_size([0, 1], {0: ["a"], 1: []}) == 1

    @given(
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(0, 2**25 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, m, n, bits):
        adjacency = {
            i: [j for j in range(n) if (bits >> (i * n + j)) & 1]
            for i in range(m)
        }

        def brute_force() -> int:
            best = 0
            rights = list(range(n))
            for k in range(min(m, n), 0, -1):
                from itertools import combinations

                for lefts in combinations(range(m), k):
                    for assignment in permutations(rights, k):
                        if all(
                            assignment[p] in adjacency[lefts[p]]
                            for p in range(k)
                        ):
                            return k
            return best

        assert maximum_matching_size(list(range(m)), adjacency) == brute_force()

    @given(st.integers(1, 6))
    def test_complete_bipartite(self, n):
        adjacency = {i: list(range(n)) for i in range(n)}
        assert maximum_matching_size(list(range(n)), adjacency) == n
