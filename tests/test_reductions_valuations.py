"""End-to-end tests for the #Val hardness reductions (Section 3).

Each test runs the paper's reduction with the brute-force oracle and checks
the recovered count against the direct graph counter — the executable
content of the corresponding #P-hardness proposition.
"""

import pytest
from hypothesis import given, settings

from repro.db.valuation import count_total_valuations
from repro.exact.brute import count_valuations_brute
from repro.exact.val_uniform import count_valuations_uniform
from repro.graphs.avoidance import count_avoiding_assignments
from repro.graphs.counting import (
    count_bipartite_independent_sets,
    count_colorings,
    count_independent_sets,
)
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph, Multigraph
from repro.reductions.avoidance import (
    build_avoidance_db,
    count_avoiding_assignments_via_valuations,
)
from repro.reductions.bis import build_bis_db, count_bis_via_valuations
from repro.reductions.coloring import (
    build_three_coloring_db,
    count_colorings_via_valuations,
)
from repro.reductions.independent_set import (
    DOUBLE_EDGE_QUERY,
    PATH_QUERY,
    build_is_path_db,
    count_independent_sets_via_valuations,
)

from tests.conftest import small_bipartite_graphs, small_graphs


class TestProp34Coloring:
    @given(small_graphs(max_nodes=5))
    @settings(max_examples=25, deadline=None)
    def test_count_identity(self, graph):
        assert count_colorings_via_valuations(graph) == count_colorings(
            graph, 3
        )

    def test_fixed_domain_is_123(self):
        db = build_three_coloring_db(cycle_graph(3))
        assert db.is_uniform
        assert db.uniform_domain == frozenset({1, 2, 3})
        assert not db.is_codd  # each node null occurs in several edge facts

    def test_generalizes_to_k(self):
        graph = cycle_graph(5)
        for k in (2, 4):
            assert count_colorings_via_valuations(
                graph, num_colors=k
            ) == count_colorings(graph, k)

    def test_isolated_nodes(self):
        graph = Graph(nodes=range(3))
        graph.add_edge(0, 1)
        assert count_colorings_via_valuations(graph) == count_colorings(
            graph, 3
        )


class TestProp38IndependentSets:
    @given(small_graphs(max_nodes=5))
    @settings(max_examples=25, deadline=None)
    def test_path_query_identity(self, graph):
        assert count_independent_sets_via_valuations(
            graph, PATH_QUERY
        ) == count_independent_sets(graph)

    @given(small_graphs(max_nodes=5))
    @settings(max_examples=25, deadline=None)
    def test_double_edge_identity(self, graph):
        assert count_independent_sets_via_valuations(
            graph, DOUBLE_EDGE_QUERY
        ) == count_independent_sets(graph)

    def test_fixed_domain_01(self):
        db = build_is_path_db(complete_graph(3))
        assert db.uniform_domain == frozenset({0, 1})

    def test_rejects_unknown_query(self):
        from repro.core.query import Atom, BCQ

        with pytest.raises(ValueError):
            count_independent_sets_via_valuations(
                complete_graph(3), BCQ([Atom("Z", ["x"])])
            )


class TestProp35Avoidance:
    @given(small_bipartite_graphs(min_degree=1))
    @settings(max_examples=25, deadline=None)
    def test_count_identity(self, graph):
        expected = count_avoiding_assignments(Multigraph.from_graph(graph))
        assert count_avoiding_assignments_via_valuations(graph) == expected

    def test_database_is_codd_nonuniform(self):
        db = build_avoidance_db(complete_bipartite_graph(2, 2))
        assert db.is_codd
        assert not db.is_uniform

    def test_rejects_non_bipartite(self):
        with pytest.raises(ValueError):
            build_avoidance_db(cycle_graph(5))

    def test_rejects_isolated_nodes(self):
        graph = complete_bipartite_graph(1, 1)
        graph.add_node(("a", 99))
        with pytest.raises(ValueError):
            build_avoidance_db(graph)

    def test_domains_are_incident_edges(self):
        graph = star_graph(2)  # bipartite
        db = build_avoidance_db(graph)
        center_null = [n for n in db.nulls if n.label == ("node", 0)][0]
        assert len(db.domain_of(center_null)) == 2


class TestProp311BIS:
    @given(small_bipartite_graphs(max_side=2))
    @settings(max_examples=10, deadline=None)
    def test_interpolation_recovers_bis(self, graph):
        assert count_bis_via_valuations(
            graph
        ) == count_bipartite_independent_sets(graph)

    def test_unbalanced_parts_are_padded(self):
        graph = complete_bipartite_graph(1, 3)
        assert count_bis_via_valuations(
            graph
        ) == count_bipartite_independent_sets(graph)

    def test_database_shape(self):
        graph = complete_bipartite_graph(2, 2)
        left = sorted(n for n in graph.nodes if n[0] == "a")
        right = sorted(n for n in graph.nodes if n[0] == "b")
        db = build_bis_db(graph, left, right, a=1, b=2)
        assert db.is_codd and db.is_uniform
        assert len(db.relation("R")) == 1
        assert len(db.relation("T")) == 2
        assert len(db.relation("S")) == 4

    def test_oracle_can_be_polynomial_algorithm(self):
        """Nothing in the reduction needs brute force — but the query has
        the path pattern, so only the brute oracle is generally available;
        check the reduction is oracle-agnostic by passing an equivalent
        callable."""
        graph = complete_bipartite_graph(2, 1)
        calls = []

        def oracle(db, query):
            calls.append(db)
            return count_valuations_brute(db, query)

        result = count_bis_via_valuations(graph, oracle=oracle)
        assert result == count_bipartite_independent_sets(graph)
        assert len(calls) == 9  # (n+1)^2 with n = 2

    def test_rejects_non_bipartite(self):
        with pytest.raises(ValueError):
            count_bis_via_valuations(cycle_graph(3))


class TestRestrictedSettingClaims:
    """The propositions assert hardness under *fixed* domains; check the
    built databases respect that."""

    def test_prop_34_domain(self):
        db = build_three_coloring_db(complete_graph(4))
        assert db.uniform_domain == frozenset({1, 2, 3})

    def test_prop_38_total_valuations(self):
        graph = complete_graph(3)
        db = build_is_path_db(graph)
        assert count_total_valuations(db) == 2**graph.num_nodes
