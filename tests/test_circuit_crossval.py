"""Randomized cross-validation of the circuit backend.

Every instance is small enough for brute-force ground truth, drawn with
fixed seeds across the four table flavors of Table 1.  The checks cover
the ISSUE-3 acceptance matrix:

* circuit counts equal ``ModelCounter`` (same search, one is recorded)
  *and* brute enumeration, on well over 200 ``(D, q)`` instances —
  including the projected witness encoding and projected ``#Comp``;
* weighted counts equal a brute weighted enumerator, through both the
  :class:`ValuationCircuit` pass and the dispatch front door;
* marginals equal both the brute per-pair ratio and the
  condition-and-recount reference;
* samplers are *exact*: over a small instance every satisfying valuation
  (and only those) appears, with fixed-seed frequencies inside generous
  deterministic bounds — no chi-squared machinery, just exhaustive
  comparison against the enumerated support.
"""

import math
import random
from collections import Counter
from fractions import Fraction

import pytest

from repro.approx.sampler import (
    CircuitValuationSampler,
    NoSatisfyingValuation,
)
from repro.compile import (
    CompletionCircuit,
    ValuationCircuit,
    compile_satisfaction_cnf,
    count_models,
    valuation_marginals_recount,
)
from repro.core.query import Atom, BCQ, Const, CustomQuery, UCQ
from repro.db.valuation import (
    apply_valuation,
    iter_valuations,
    resolve_null_weights,
    weighted_total_valuations,
)
from repro.eval.evaluate import evaluate
from repro.exact.brute import (
    count_completions_brute,
    count_valuations_brute,
    count_valuations_weighted_brute,
)
from repro.exact.dispatch import (
    count_valuations,
    count_valuations_weighted,
    resolve_valuation_method,
    resolve_weighted_method,
)
from repro.workloads.generators import (
    random_incomplete_db,
    scaling_hard_val_instance,
)

QUERIES = [
    BCQ([Atom("R", ["x", "y"])]),
    BCQ([Atom("R", ["x", "x"])]),
    BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])]),
    BCQ([Atom("R", ["x", "x"]), Atom("S", ["x"])]),
    BCQ([Atom("R", ["x", "y"]), Atom("R", ["y", "z"])]),  # self-join
    BCQ([Atom("R", [Const("v0"), "y"]), Atom("S", ["y"])]),  # constant
    UCQ([BCQ([Atom("R", ["x", "x"])]), BCQ([Atom("S", ["z"])])]),
]

FLAVORS = [
    ("uniform-naive", True, False),
    ("uniform-codd", True, True),
    ("nonuniform-naive", False, False),
    ("nonuniform-codd", False, True),
]


def _db(seed, uniform, codd):
    return random_incomplete_db(
        {"R": 2, "S": 1},
        seed=seed,
        num_nulls=3,
        domain_size=3,
        uniform=uniform,
        codd=codd,
    )


def _satisfying(db, query):
    return [
        valuation
        for valuation in iter_valuations(db)
        if evaluate(query, apply_valuation(db, valuation))
    ]


def _weight_product(resolved, valuation):
    return math.prod(
        resolved[null][value] for null, value in valuation.items()
    )


@pytest.mark.parametrize("flavor,uniform,codd", FLAVORS)
@pytest.mark.parametrize("seed", range(8))
def test_circuit_counts_match_counter_and_brute(seed, flavor, uniform, codd):
    """224 (db, query) instances: circuit == ModelCounter == brute,
    with the projected witness encoding as an independent oracle."""
    db = _db(seed, uniform, codd)
    for query in QUERIES:
        expected = count_valuations_brute(db, query)
        compiled = ValuationCircuit(db, query)
        assert compiled.count() == expected
        # The complement circuit replays the exact search arithmetic:
        # its count matches the non-traced counter bit for bit.
        assert compiled.count() == count_valuations(
            db, query, method="lineage"
        )
        assert compiled.count() == count_valuations(
            db, query, method="circuit"
        )
        # Projected counting cross-check: the witness encoding counts the
        # satisfying side directly, as a projected model count.
        encoding = compile_satisfaction_cnf(db, query)
        assert (
            count_models(encoding.cnf, projection=encoding.projection)
            == expected
        )


@pytest.mark.parametrize("flavor,uniform,codd", FLAVORS)
@pytest.mark.parametrize("seed", range(6))
def test_completion_circuit_matches_brute(seed, flavor, uniform, codd):
    """Projected #Comp: circuit == brute, with and without a query."""
    db = _db(seed, uniform, codd)
    for query in (None, QUERIES[2], QUERIES[6]):
        expected = count_completions_brute(db, query, budget=None)
        assert CompletionCircuit(db, query).count() == expected


@pytest.mark.parametrize("flavor,uniform,codd", FLAVORS[:2] + FLAVORS[2:3])
@pytest.mark.parametrize("seed", range(5))
def test_weighted_counts_match_brute_enumerator(seed, flavor, uniform, codd):
    db = _db(seed, uniform, codd)
    rng = random.Random(1000 + seed)
    weights = {
        null: {
            value: rng.randint(0, 4) for value in db.domain_of(null)
        }
        for null in db.nulls
    }
    for query in QUERIES[:5]:
        expected = count_valuations_weighted_brute(
            db, query, weights, budget=None
        )
        assert ValuationCircuit(db, query).weighted_count(weights) == expected
        assert count_valuations_weighted(db, query, weights) == expected
        # all-ones degenerates to the plain count
        assert ValuationCircuit(db, query).weighted_count(None) == (
            count_valuations_brute(db, query)
        )


def test_weighted_fraction_weights_stay_exact():
    db = _db(3, True, False)
    query = QUERIES[1]
    weights = {
        null: {
            value: Fraction(1, 1 + position)
            for position, value in enumerate(
                sorted(db.domain_of(null), key=repr)
            )
        }
        for null in db.nulls
    }
    resolved = resolve_null_weights(db, weights)
    expected = sum(
        _weight_product(resolved, valuation)
        for valuation in _satisfying(db, query)
    )
    got = ValuationCircuit(db, query).weighted_count(weights)
    assert isinstance(got, Fraction) or got == expected
    assert got == expected


@pytest.mark.parametrize("seed", range(5))
def test_marginals_match_brute_and_recount(seed):
    db = _db(seed, seed % 2 == 0, False)
    for query in (QUERIES[1], QUERIES[3], QUERIES[6]):
        satisfying = _satisfying(db, query)
        if not satisfying or not db.nulls:
            continue
        compiled = ValuationCircuit(db, query)
        marginals = compiled.marginals()
        recounted = valuation_marginals_recount(db, query)
        for null in db.nulls:
            for value in db.domain_of(null):
                expected = Fraction(
                    sum(1 for v in satisfying if v[null] == value),
                    len(satisfying),
                )
                assert marginals[null][value] == expected
                assert recounted[null][value] == expected
            assert sum(marginals[null].values()) == 1


def test_weighted_marginals_match_brute():
    db = _db(6, False, False)  # seed 6: five satisfying valuations
    query = QUERIES[3]
    rng = random.Random(17)
    weights = {
        null: {value: rng.randint(1, 3) for value in db.domain_of(null)}
        for null in db.nulls
    }
    resolved = resolve_null_weights(db, weights)
    satisfying = _satisfying(db, query)
    total = sum(_weight_product(resolved, v) for v in satisfying)
    if not total:
        pytest.skip("seed produced an unsatisfiable instance")
    marginals = ValuationCircuit(db, query).marginals(weights)
    for null in db.nulls:
        for value in db.domain_of(null):
            expected = Fraction(
                sum(
                    _weight_product(resolved, v)
                    for v in satisfying
                    if v[null] == value
                ),
                total,
            )
            assert marginals[null][value] == expected


def test_marginals_undefined_when_unsatisfiable():
    db = _db(0, True, False)
    impossible = BCQ([Atom("T", ["x"])])  # relation absent from the db
    with pytest.raises(ValueError):
        ValuationCircuit(db, impossible).marginals()


class TestSamplerExactness:
    """Exhaustive small-domain frequency checks with fixed seeds."""

    def _support_and_draws(self, db, query, draws, seed, weights=None):
        support = {
            tuple(sorted(v.items(), key=repr))
            for v in _satisfying(db, query)
        }
        compiled = ValuationCircuit(db, query)
        rng = random.Random(seed)
        frequencies = Counter(
            tuple(
                sorted(
                    compiled.sample_valuation(rng=rng, weights=weights).items(),
                    key=repr,
                )
            )
            for _ in range(draws)
        )
        return support, frequencies

    def test_uniform_sampler_is_exhaustive_and_flat(self):
        db, query = scaling_hard_val_instance(4, num_colors=2)
        support, frequencies = self._support_and_draws(db, query, 2800, 42)
        assert set(frequencies) == support  # every valuation, only those
        expected = 2800 / len(support)
        for count in frequencies.values():
            assert 0.6 * expected < count < 1.4 * expected

    def test_weighted_sampler_tracks_the_weights(self):
        db = _db(1, True, False)
        query = QUERIES[0]
        null = db.nulls[0]
        values = sorted(db.domain_of(null), key=repr)
        weights = {null: {value: 1 for value in values}}
        weights[null][values[0]] = 5
        support, frequencies = self._support_and_draws(
            db, query, 2500, 7, weights=weights
        )
        assert set(frequencies) <= support
        resolved = resolve_null_weights(db, weights)
        satisfying = _satisfying(db, query)
        total = sum(_weight_product(resolved, v) for v in satisfying)
        for valuation, count in frequencies.items():
            probability = Fraction(
                _weight_product(resolved, dict(valuation)), total
            )
            expected = float(probability) * 2500
            assert abs(count - expected) < max(0.5 * expected, 25)

    def test_circuit_sampler_front_door(self):
        db, query = scaling_hard_val_instance(5, num_colors=2)
        sampler = CircuitValuationSampler(db, query, seed=11)
        assert sampler.count == count_valuations_brute(db, query)
        support = {
            tuple(sorted(v.items(), key=repr))
            for v in _satisfying(db, query)
        }
        for valuation in sampler.sample_many(200):
            assert tuple(sorted(valuation.items(), key=repr)) in support

    def test_circuit_sampler_reproducible_by_seed(self):
        db, query = scaling_hard_val_instance(5, num_colors=2)
        first = CircuitValuationSampler(db, query, seed=3).sample_many(20)
        second = CircuitValuationSampler(db, query, seed=3).sample_many(20)
        assert first == second

    def test_circuit_sampler_unsatisfiable(self):
        db = _db(0, True, False)
        impossible = BCQ([Atom("T", ["x"])])
        sampler = CircuitValuationSampler(db, impossible, seed=0)
        with pytest.raises(NoSatisfyingValuation):
            sampler.sample()

    def test_circuit_sampler_zero_weight_mass(self):
        # Satisfiable query, but the weights zero out every valuation:
        # under the sampling distribution that is "nothing to sample",
        # and the sampler's documented exception type must say so.
        db = _db(1, True, False)
        query = QUERIES[0]
        assert _satisfying(db, query)
        null = db.nulls[0]
        weights = {null: {value: 0 for value in db.domain_of(null)}}
        sampler = CircuitValuationSampler(db, query, seed=0, weights=weights)
        with pytest.raises(NoSatisfyingValuation):
            sampler.sample()

    def test_circuit_sampler_rejects_malformed_weights_eagerly(self):
        db = _db(1, True, False)
        null = db.nulls[0]
        with pytest.raises(ValueError, match="domain"):
            CircuitValuationSampler(
                db, QUERIES[0], seed=0,
                weights={null: {"not-a-domain-value": 1}},
            )

    def test_completion_sampler_hits_only_completions(self):
        db = _db(4, False, False)
        compiled = CompletionCircuit(db, None)
        completions = {
            frozenset(apply_valuation(db, valuation).facts)
            for valuation in iter_valuations(db)
        }
        rng = random.Random(5)
        seen = set()
        for _ in range(300):
            sample = compiled.sample_completion(rng=rng)
            assert sample in completions
            seen.add(sample)
        if len(completions) <= 12:
            assert seen == completions

    def test_completion_fact_marginals_match_brute(self):
        db = _db(4, False, False)
        compiled = CompletionCircuit(db, None)
        completions = list(
            {
                frozenset(apply_valuation(db, valuation).facts)
                for valuation in iter_valuations(db)
            }
        )
        marginals = compiled.fact_marginals()
        for fact, probability in marginals.items():
            expected = Fraction(
                sum(1 for completion in completions if fact in completion),
                len(completions),
            )
            assert probability == expected


class TestDispatchRouting:
    def test_circuit_method_resolves_and_falls_back(self):
        db = _db(0, True, False)
        query = QUERIES[1]
        assert resolve_valuation_method(db, query, "circuit") == "circuit"
        opaque = CustomQuery("opaque", ["R"], lambda database: True)
        assert resolve_valuation_method(db, opaque, "circuit") == "brute"

    def test_weighted_routing(self):
        db = _db(0, True, False)
        free = BCQ([Atom("R", ["x", "y"]), Atom("S", ["z"])])
        assert resolve_weighted_method(db, free) == "single-occurrence"
        assert resolve_weighted_method(db, QUERIES[1]) == "circuit"
        opaque = CustomQuery("opaque", ["R"], lambda database: True)
        assert resolve_weighted_method(db, opaque) == "brute"

    def test_weighted_single_occurrence_matches_brute(self):
        db = _db(5, False, False)
        free = BCQ([Atom("R", ["x", "y"]), Atom("S", ["z"])])
        rng = random.Random(9)
        weights = {
            null: {value: rng.randint(1, 3) for value in db.domain_of(null)}
            for null in db.nulls
        }
        expected = count_valuations_weighted_brute(
            db, free, weights, budget=None
        )
        assert count_valuations_weighted(db, free, weights) == expected
        if expected:
            assert expected == weighted_total_valuations(db, weights)

    def test_weight_table_validation(self):
        db = _db(0, True, False)
        null = db.nulls[0]
        with pytest.raises(ValueError):
            resolve_null_weights(db, {null: {"not-in-domain": 1}})
        partial = {null: {sorted(db.domain_of(null), key=repr)[0]: 1}}
        with pytest.raises(ValueError):
            resolve_null_weights(db, partial)
