"""The batch engine: dedup, caching, fan-out, and the batch CLI."""

import json

import pytest

from repro.core.query import Atom, BCQ, CustomQuery
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.engine import BatchEngine, CountCache, CountJob, execute_job, run_batch
from repro.engine.jsonl import JobSyntaxError, read_jobs
from repro.exact.dispatch import (
    count_completions,
    count_valuations,
    count_valuations_batch,
)
from repro.workloads.generators import (
    scaling_codd_instance,
    scaling_hard_val_instance,
)


def _mixed_jobs():
    jobs = []
    for size in (4, 5, 6):
        db, query = scaling_hard_val_instance(size, seed=size)
        jobs.append(CountJob("val", db, query, label="hard-%d" % size))
    db, query = scaling_codd_instance(3, seed=1)
    jobs.append(CountJob("val", db, query, label="codd"))
    jobs.append(CountJob("comp", db, None, label="comp-all"))
    jobs.append(
        CountJob("approx-val", db, query, seed=3, epsilon=0.4, label="approx")
    )
    return jobs


class TestBatchEngine:
    def test_matches_per_instance_api(self):
        jobs = _mixed_jobs()
        results = BatchEngine(workers=0).run(jobs)
        assert all(result.ok for result in results)
        for job, result in zip(jobs, results):
            if job.problem == "val":
                assert result.count == count_valuations(job.db, job.query)
            elif job.problem == "comp":
                assert result.count == count_completions(job.db, job.query)

    def test_duplicates_hit_the_cache(self):
        jobs = _mixed_jobs()
        engine = BatchEngine(workers=0)
        results = engine.run(jobs + jobs + jobs)
        assert [r.count for r in results[: len(jobs)]] == [
            r.count for r in results[len(jobs) : 2 * len(jobs)]
        ]
        # Every job beyond the first occurrence is served from memo.
        assert sum(r.cache_hit for r in results) == 2 * len(jobs)
        assert engine.cache.misses == len(jobs)

    def test_cache_persists_across_batches(self):
        jobs = _mixed_jobs()
        engine = BatchEngine(workers=0)
        first = engine.run(jobs)
        second = engine.run(jobs)
        assert all(result.cache_hit for result in second)
        assert [r.count for r in first] == [r.count for r in second]

    def test_isomorphic_instances_are_solved_once(self):
        def build(label_prefix):
            a = Null("%s-1" % label_prefix)
            b = Null("%s-2" % label_prefix)
            db = IncompleteDatabase(
                [Fact("R", [a, b]), Fact("R", [b, a])],
                dom={a: ["x", "y"], b: ["x", "y"]},
            )
            return CountJob("val", db, BCQ([Atom("R", ["z", "z"])]))

        engine = BatchEngine(workers=0)
        results = engine.run([build("left"), build("right")])
        assert results[1].cache_hit
        assert results[0].count == results[1].count

    def test_errors_are_isolated(self):
        db, query = scaling_hard_val_instance(8, seed=0)
        poisoned = CountJob(
            "val", db, query, method="brute", budget=1, label="too-big"
        )
        fine = CountJob("val", db, query, label="fine")
        results = BatchEngine(workers=0).run([poisoned, fine])
        assert not results[0].ok
        assert "Budget" in results[0].error
        assert results[1].ok

    def test_failed_jobs_are_not_cached(self):
        db, query = scaling_hard_val_instance(8, seed=0)
        poisoned = CountJob("val", db, query, method="brute", budget=1)
        engine = BatchEngine(workers=0)
        assert not engine.run([poisoned])[0].ok
        assert len(engine.cache) == 0
        # A later identical job with a workable method still runs.
        fixed = CountJob("val", db, query, method="lineage")
        assert engine.run([fixed])[0].ok

    def test_multiprocess_results_match_serial(self):
        jobs = _mixed_jobs()
        serial = BatchEngine(workers=0).run(jobs)
        parallel = BatchEngine(workers=2).run(jobs)
        assert [r.count for r in serial] == [r.count for r in parallel]

    def test_unpicklable_jobs_fall_back_to_serial(self):
        db, query = scaling_hard_val_instance(5, seed=0)
        opaque = CustomQuery(
            "lambda-query", ["R"], lambda database: len(database) > 0
        )
        jobs = [
            CountJob("val", db, query, label="ok-1"),
            CountJob("val", db, opaque, method="brute", label="opaque"),
            CountJob("comp", db, None, label="ok-2"),
        ]
        results = BatchEngine(workers=2).run(jobs)
        assert all(result.ok for result in results)
        assert results[1].method == "brute"

    def test_run_batch_convenience(self):
        jobs = _mixed_jobs()
        results = run_batch(jobs, workers=0)
        assert len(results) == len(jobs)
        assert all(result.ok for result in results)

    def test_dispatch_batch_wrapper(self):
        instances = []
        for size in (4, 5, 4):
            db, query = scaling_hard_val_instance(size, seed=size)
            instances.append((db, query))
        counts = count_valuations_batch(instances, workers=0)
        assert counts == [
            count_valuations(db, query) for db, query in instances
        ]

    def test_execute_job_reports_resolved_method(self):
        db, query = scaling_codd_instance(3, seed=1)
        result = execute_job(CountJob("val", db, query))
        assert result.ok
        assert result.method == "codd"


class TestPersistentPool:
    def test_pool_survives_batches_and_closes_idempotently(self):
        jobs = _mixed_jobs()
        serial = [execute_job(job) for job in jobs]
        with BatchEngine(workers=2, persistent_pool=True) as engine:
            engine.warm()
            pool = engine._pool
            assert pool is not None
            first = engine.run(jobs)
            second = engine.run(jobs)
            assert engine._pool is pool  # reused, not rebuilt
            for reference, result in zip(serial, first):
                assert result.count == reference.count
            assert all(result.cache_hit for result in second
                       if result.fingerprint is not None)
        assert engine._pool is None
        engine.close()  # idempotent

    def test_warm_is_a_noop_without_persistence(self):
        engine = BatchEngine(workers=2)
        engine.warm()
        assert engine._pool is None
        engine.close()


class TestCountCache:
    def test_lru_eviction(self):
        cache = CountCache(max_entries=2)
        cache.put("a", 1, "brute")
        cache.put("b", 2, "brute")
        assert cache.get("a") == (1, "brute")  # refresh "a"
        cache.put("c", 3, "brute")  # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_hit_rate(self):
        cache = CountCache()
        assert cache.hit_rate == 0.0
        cache.put("a", 1, "brute")
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == pytest.approx(0.5)


class TestJsonl:
    def test_read_jobs(self, tmp_path):
        db_file = tmp_path / "d.idb"
        db_file.write_text("domain a b\nR(?n1, ?n2)\n")
        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text(
            "# comment\n"
            '{"problem": "val", "db": "d.idb", "query": "R(x,x)"}\n'
            "\n"
            '{"problem": "comp", "db": "d.idb", "label": "named"}\n'
            '{"db_text": "null m: a\\nS(?m)", "query": "S(x)"}\n'
        )
        with open(jobs_file) as handle:
            jobs = list(read_jobs(handle, base_dir=str(tmp_path)))
        assert [job.problem for job in jobs] == ["val", "comp", "val"]
        assert jobs[0].label == "job-2"
        assert jobs[1].label == "named"
        # Both path-based jobs share one parsed database object.
        assert jobs[0].db is jobs[1].db

    def test_bad_json_is_rejected_with_line_number(self, tmp_path):
        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text('{"problem": "val"\n')
        with open(jobs_file) as handle:
            with pytest.raises(JobSyntaxError, match="line 1"):
                list(read_jobs(handle))

    def test_db_and_db_text_are_exclusive(self, tmp_path):
        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text(
            '{"db": "x.idb", "db_text": "domain a\\nR(?n)", "query": "R(x)"}\n'
        )
        with open(jobs_file) as handle:
            with pytest.raises(JobSyntaxError, match="exactly one"):
                list(read_jobs(handle))


class TestBatchCli:
    def _write_inputs(self, tmp_path):
        (tmp_path / "d.idb").write_text("domain a b c\nR(?n1, ?n2)\nR(?n2, ?n1)\n")
        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text(
            '{"problem": "val", "db": "d.idb", "query": "R(x,x)"}\n'
            '{"problem": "val", "db": "d.idb", "query": "R(y,y)", "label": "dup"}\n'
            '{"problem": "comp", "db": "d.idb"}\n'
        )
        return jobs_file

    def test_batch_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        jobs_file = self._write_inputs(tmp_path)
        assert main(["batch", "--jobs", str(jobs_file), "--workers", "0"]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 3
        assert records[0]["count"] == records[1]["count"] == 3
        assert records[1]["cache_hit"] is True
        assert "cache hit rate" in captured.err

    def test_batch_out_file(self, tmp_path, capsys):
        from repro.cli import main

        jobs_file = self._write_inputs(tmp_path)
        out_file = tmp_path / "results.jsonl"
        code = main(
            [
                "batch",
                "--jobs", str(jobs_file),
                "--workers", "0",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        capsys.readouterr()
        records = [
            json.loads(line)
            for line in out_file.read_text().splitlines()
        ]
        assert [record["problem"] for record in records] == [
            "val", "val", "comp",
        ]

    def test_batch_reports_errors_in_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "d.idb").write_text("domain a b\nR(?n1)\n")
        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text(
            '{"problem": "val", "db": "d.idb", "query": "R(x)", '
            '"method": "brute", "budget": 1}\n'
        )
        assert main(["batch", "--jobs", str(jobs_file), "--workers", "0"]) == 1
        captured = capsys.readouterr()
        record = json.loads(captured.out.splitlines()[0])
        assert record["error"] is not None
