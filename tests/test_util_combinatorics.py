"""Unit and property tests for the exact combinatorics primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.combinatorics import (
    binomial,
    bounded_compositions,
    bounded_vectors,
    compositions,
    falling_factorial,
    multinomial,
    stirling2,
    surjections,
)


class TestBinomial:
    def test_small_values(self):
        assert binomial(5, 2) == 10
        assert binomial(0, 0) == 1
        assert binomial(7, 7) == 1

    def test_zero_outside_range(self):
        """The paper's convention: C(a, b) = 0 for b > a (footnote 9)."""
        assert binomial(3, 5) == 0
        assert binomial(3, -1) == 0
        assert binomial(-2, 1) == 0

    @given(st.integers(0, 30), st.integers(0, 30))
    def test_matches_math_comb(self, n, k):
        expected = math.comb(n, k) if 0 <= k <= n else 0
        assert binomial(n, k) == expected


class TestFallingFactorial:
    def test_values(self):
        assert falling_factorial(5, 3) == 60
        assert falling_factorial(5, 0) == 1
        assert falling_factorial(3, 5) == 0

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            falling_factorial(4, -1)

    @given(st.integers(0, 12), st.integers(0, 12))
    def test_equals_binomial_times_factorial(self, n, k):
        assert falling_factorial(n, k) == binomial(n, k) * math.factorial(k)


class TestMultinomial:
    def test_values(self):
        assert multinomial([2, 1]) == 3
        assert multinomial([1, 1, 1]) == 6
        assert multinomial([]) == 1
        assert multinomial([4]) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            multinomial([2, -1])

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=4))
    def test_matches_factorial_formula(self, counts):
        total = sum(counts)
        expected = math.factorial(total)
        for count in counts:
            expected //= math.factorial(count)
        assert multinomial(counts) == expected


class TestSurjections:
    def test_paper_conventions(self):
        """Footnote 3: surj(a, b) = 0 when a < b; surj(0, 0) = 1."""
        assert surjections(2, 3) == 0
        assert surjections(0, 0) == 1
        assert surjections(0, 1) == 0
        assert surjections(3, 0) == 0

    def test_known_values(self):
        assert surjections(3, 2) == 6
        assert surjections(4, 2) == 14
        assert surjections(4, 4) == 24

    @given(st.integers(0, 7), st.integers(0, 7))
    def test_stirling_identity(self, n, m):
        """surj(n, m) = m! * S(n, m)."""
        assert surjections(n, m) == math.factorial(m) * stirling2(n, m)

    @given(st.integers(0, 6), st.integers(0, 6))
    def test_counts_actual_surjections(self, n, m):
        from itertools import product

        count = 0
        for func in product(range(m), repeat=n):
            if set(func) == set(range(m)):
                count += 1
        if n == 0 and m == 0:
            count = 1
        assert surjections(n, m) == count

    @given(st.integers(0, 10))
    def test_total_functions_decomposition(self, n):
        """m^n = sum_k C(m, k) surj(n, k): every function is onto its image."""
        m = 4
        assert m**n == sum(
            binomial(m, k) * surjections(n, k) for k in range(m + 1)
        )


class TestCompositions:
    def test_enumerates_all(self):
        assert sorted(compositions(2, 2)) == [(0, 2), (1, 1), (2, 0)]
        assert list(compositions(0, 0)) == [()]
        assert list(compositions(3, 0)) == []

    @given(st.integers(0, 6), st.integers(0, 4))
    def test_count_is_stars_and_bars(self, total, parts):
        expected = binomial(total + parts - 1, parts - 1) if parts else (
            1 if total == 0 else 0
        )
        assert sum(1 for _ in compositions(total, parts)) == expected

    def test_bounded_respects_bounds(self):
        results = list(bounded_compositions(3, [1, 2, 3]))
        assert all(sum(r) == 3 for r in results)
        assert all(r[0] <= 1 and r[1] <= 2 and r[2] <= 3 for r in results)
        assert len(set(results)) == len(results)

    @given(
        st.integers(0, 5),
        st.lists(st.integers(0, 3), min_size=0, max_size=3),
    )
    def test_bounded_matches_filtered_unbounded(self, total, bounds):
        expected = [
            c
            for c in compositions(total, len(bounds))
            if all(x <= b for x, b in zip(c, bounds))
        ]
        assert sorted(bounded_compositions(total, bounds)) == sorted(expected)

    def test_bounded_vectors(self):
        vectors = list(bounded_vectors([1, 2]))
        assert len(vectors) == 6
        assert len(set(vectors)) == 6
        assert all(v[0] <= 1 and v[1] <= 2 for v in vectors)
        assert list(bounded_vectors([])) == [()]
