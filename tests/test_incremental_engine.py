"""The incremental engine path: parent-chain cache, update jobs, planner
delta method, and the CLI/JSONL update surfaces.

The contract under test: an ``update`` job answers bit-identically to
compiling the updated instance from scratch, while the cache serves the
answer from an ancestor circuit (conditioning) or the component store
(splicing) whenever it can — and ``--cache-mb`` eviction never leaves a
derived child outliving its parent.
"""

import json

import pytest

from repro.cli import main
from repro.compile.backend import ValuationCircuit, count_valuations_circuit
from repro.core.query import Atom, BCQ, Var
from repro.db.deltas import DeleteFacts, InsertFacts, ResolveNull, RestrictDomain
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.engine import (
    BatchEngine,
    CountCache,
    CountJob,
    cached_ancestor,
    delta_chain,
    derive_instance_circuit,
    execute_job,
    fingerprint_instance,
    fingerprint_job,
    instance_db,
    run_batch,
)
from repro.exact import planner

N1 = Null("n1")
N2 = Null("n2")
QUERY = BCQ([Atom("R", (Var("x"), Var("y"))), Atom("S", (Var("x"), Var("y")))])


def base_db():
    return IncompleteDatabase(
        [Fact("R", ("a", N1)), Fact("R", (N2, "b")), Fact("S", ("a", "b"))],
        uniform_domain=["a", "b", "c"],
    )


# -- delta_chain / cached_ancestor ------------------------------------------


def test_delta_chain_orders_nearest_first():
    db = base_db()
    c1 = db.apply(ResolveNull(N1, "b"))
    c2 = c1.apply(RestrictDomain(N2, frozenset({"a"})))
    chain = delta_chain(c2)
    assert [parent for parent, _deltas in chain] == [c1, db]
    assert chain[0][1] == [RestrictDomain(N2, frozenset({"a"}))]
    assert chain[1][1] == [
        ResolveNull(N1, "b"),
        RestrictDomain(N2, frozenset({"a"})),
    ]
    assert delta_chain(db) == []


def test_cached_ancestor_finds_nearest():
    db = base_db()
    c1 = db.apply(ResolveNull(N1, "b"))
    c2 = c1.apply(RestrictDomain(N2, frozenset({"a"})))
    cache = CountCache()
    fp_db = fingerprint_instance(db, QUERY, "val")
    cache.put_circuit(fp_db, ValuationCircuit(db, QUERY))
    assert cached_ancestor(c2, QUERY, "val", cache) == fp_db
    fp_c1 = fingerprint_instance(c1, QUERY, "val")
    cache.put_circuit(fp_c1, ValuationCircuit(c1, QUERY))
    assert cached_ancestor(c2, QUERY, "val", cache) == fp_c1
    assert cached_ancestor(db, QUERY, "val", cache) is None


def test_derive_installs_with_parent_link():
    db = base_db()
    child = db.apply(ResolveNull(N1, "b"))
    cache = CountCache()
    fp_db = fingerprint_instance(db, QUERY, "val")
    fp_child = fingerprint_instance(child, QUERY, "val")
    cache.put_circuit(fp_db, ValuationCircuit(db, QUERY))
    derived = derive_instance_circuit(child, QUERY, "val", cache)
    assert derived is not None
    assert derived.count() == count_valuations_circuit(child, QUERY)
    assert cache.has_circuit(fp_child)
    assert cache.parent_chain_hits == 1
    # evicting the parent takes the derived child with it
    cache._drop_circuit_tree(fp_db)
    assert not cache.has_circuit(fp_child)
    assert cache.circuit_evictions == 2


def test_derive_without_provenance_or_ancestor_returns_none():
    db = base_db()
    cache = CountCache()
    assert derive_instance_circuit(db, QUERY, "val", cache) is None
    child = db.apply(ResolveNull(N1, "b"))
    assert derive_instance_circuit(child, QUERY, "val", cache) is None


# -- eviction coherence -----------------------------------------------------


def test_bounded_cache_drops_children_with_parents():
    db = base_db()
    parent_circuit = ValuationCircuit(db, QUERY)
    size = parent_circuit.memory_bytes()
    cache = CountCache(max_circuit_bytes=size * 3)
    fp_parent = fingerprint_instance(db, QUERY, "val")
    cache.put_circuit(fp_parent, parent_circuit)
    child = db.apply(ResolveNull(N1, "b"))
    fp_child = fingerprint_instance(child, QUERY, "val")
    derive_instance_circuit(child, QUERY, "val", cache, fingerprint=fp_child)
    assert cache.has_circuit(fp_parent) and cache.has_circuit(fp_child)
    # an unrelated circuit large enough to force eviction of the oldest
    # tree (the parent) must drop the derived child too
    other = IncompleteDatabase(
        [Fact("R", (N1, N2)), Fact("S", ("c", "c"))],
        uniform_domain=["a", "b", "c"],
    )
    fp_other = fingerprint_instance(other, QUERY, "val")
    cache.put_circuit(fp_other, ValuationCircuit(other, QUERY))
    if not cache.has_circuit(fp_parent):
        assert not cache.has_circuit(fp_child)


def test_component_store_is_bounded_lru():
    cache = CountCache(max_components=2)
    cache.put_component(("a",), {"count": 1})
    cache.put_component(("b",), {"count": 2})
    assert cache.get_component(("a",)) == {"count": 1}
    cache.put_component(("c",), {"count": 3})  # evicts ("b",), the LRU
    assert cache.get_component(("b",)) is None
    assert cache.get_component(("a",)) is not None
    disabled = CountCache(max_components=0)
    disabled.put_component(("a",), {"count": 1})
    assert disabled.get_component(("a",)) is None
    assert disabled.stats()["components"] == 0


# -- update jobs ------------------------------------------------------------


def test_update_job_matches_fresh_compile():
    db = base_db()
    deltas = [ResolveNull(N1, "b"), RestrictDomain(N2, frozenset({"a", "c"}))]
    job = CountJob(problem="update", db=db, query=QUERY, deltas=deltas)
    child = instance_db(job)
    result = execute_job(job, CountCache())
    assert result.ok
    assert result.count == count_valuations_circuit(child, QUERY)


def test_update_job_validation():
    db = base_db()
    with pytest.raises(ValueError):
        CountJob(problem="update", db=db, query=QUERY)  # no deltas
    with pytest.raises(ValueError):
        CountJob(problem="update", db=db, query=QUERY, deltas=["bogus"])
    with pytest.raises(ValueError):
        CountJob(
            problem="val", db=db, query=QUERY,
            deltas=[ResolveNull(N1, "b")],  # deltas need problem=update
        )


def test_update_job_fingerprint_matches_val_on_child():
    db = base_db()
    delta = ResolveNull(N1, "b")
    update = CountJob(problem="update", db=db, query=QUERY, deltas=[delta])
    val = CountJob(problem="val", db=db.apply(delta), query=QUERY)
    assert fingerprint_job(update) == fingerprint_job(val)
    # an invalid chain is simply uncacheable, not an error
    bad = CountJob(
        problem="update", db=db, query=QUERY,
        deltas=[ResolveNull(Null("ghost"), "a")],
    )
    assert fingerprint_job(bad) is None


def test_update_batch_derives_from_cached_parent():
    db = base_db()
    cache = CountCache()
    jobs = [
        CountJob(problem="val", db=db, query=QUERY, method="circuit"),
        CountJob(
            problem="update", db=db, query=QUERY,
            deltas=[ResolveNull(N1, "b")],
        ),
        CountJob(
            problem="update", db=db, query=QUERY,
            deltas=[
                ResolveNull(N1, "b"),
                RestrictDomain(N2, frozenset({"a", "c"})),
            ],
        ),
    ]
    results = run_batch(jobs, cache=cache, workers=1)
    for job, result in zip(jobs, results):
        assert result.ok, result.error
        expected = count_valuations_circuit(instance_db(job), QUERY)
        assert result.count == expected
    assert results[1].method == "delta"
    assert results[2].method == "delta"
    assert cache.stats()["parent_chain_hits"] >= 2


def test_update_batch_splices_insert_delete():
    db = base_db()
    cache = CountCache()
    jobs = [
        CountJob(problem="val", db=db, query=QUERY, method="circuit"),
        CountJob(
            problem="update", db=db, query=QUERY,
            deltas=[InsertFacts(frozenset({Fact("S", ("b", "b"))}))],
        ),
        CountJob(
            problem="update", db=db, query=QUERY,
            deltas=[DeleteFacts(frozenset({Fact("S", ("a", "b"))}))],
        ),
    ]
    results = run_batch(jobs, cache=cache, workers=1)
    for job, result in zip(jobs, results):
        assert result.ok, result.error
        assert result.count == count_valuations_circuit(
            instance_db(job), QUERY
        )


def test_update_job_error_reporting():
    db = base_db()
    job = CountJob(
        problem="update", db=db, query=QUERY,
        deltas=[ResolveNull(Null("ghost"), "a")],
    )
    result = execute_job(job, CountCache())
    assert not result.ok
    assert result.error


def test_update_jobs_in_multiprocess_batch():
    db = base_db()
    cache = CountCache()
    jobs = [CountJob(problem="val", db=db, query=QUERY, method="circuit")] + [
        CountJob(
            problem="update", db=db, query=QUERY,
            deltas=[ResolveNull(N1, value)],
        )
        for value in ("a", "b", "c")
    ]
    engine = BatchEngine(cache=cache, workers=2)
    results = engine.run(jobs)
    for job, result in zip(jobs, results):
        assert result.ok, result.error
        assert result.count == count_valuations_circuit(
            instance_db(job), QUERY
        )


# -- planner ----------------------------------------------------------------


def test_planner_prefers_delta_on_conditionable_chains():
    db = base_db()
    child = db.apply(ResolveNull(N1, "b"))
    built = planner.plan("val", child, QUERY)
    assert built.chosen == "delta"
    entry = next(c for c in built.considered if c.method == "delta")
    assert entry.detail["mode"] == "condition"
    assert "conditioning" in entry.reason


def test_planner_delta_costs_splice_above_circuit():
    db = base_db()
    child = db.apply(InsertFacts(frozenset({Fact("S", ("b", "b"))})))
    built = planner.plan("val", child, QUERY)
    entry = next(c for c in built.considered if c.method == "delta")
    circuit_entry = next(
        c for c in built.considered if c.method == "circuit"
    )
    assert entry.applicable
    assert entry.detail["mode"] == "splice"
    assert entry.cost > circuit_entry.cost


def test_planner_delta_falls_back_without_provenance():
    db = base_db()
    built = planner.plan("val", db, QUERY, method="delta")
    assert built.chosen == "circuit"
    assert any("degrading" in note for note in built.notes)


def test_planner_delta_runs_bit_identical():
    db = base_db()
    child = db.apply(ResolveNull(N1, "b"))
    assert planner.run("val", "delta", child, QUERY) == (
        count_valuations_circuit(child, QUERY)
    )


# -- CLI and JSONL surfaces -------------------------------------------------


DB_TEXT = "domain a b c\nR(a, ?n1)\nR(?n2, b)\nS(a, b)\n"


def test_cli_update_conditioning(tmp_path, capsys):
    path = tmp_path / "db.idb"
    path.write_text(DB_TEXT)
    rc = main([
        "update", "--db", str(path), "--query", "R(x,y), S(x,y)",
        "--resolve", "n1=b", "--restrict", "n2=a,c", "--json",
    ])
    assert rc == 0
    record = json.loads(capsys.readouterr().out)
    db = base_db()
    child = db.apply(ResolveNull(N1, "b")).apply(
        RestrictDomain(N2, frozenset({"a", "c"}))
    )
    assert record["count"] == count_valuations_circuit(child, QUERY)
    assert record["method"] == "delta"
    assert record["deltas"] == 2
    assert record["derivation"]


def test_cli_update_plan_shows_conditioning(tmp_path, capsys):
    path = tmp_path / "db.idb"
    path.write_text(DB_TEXT)
    rc = main([
        "update", "--db", str(path), "--query", "R(x,y), S(x,y)",
        "--resolve", "n1=b", "--plan",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "delta" in out
    assert "conditioning" in out


def test_cli_update_rejects_bad_delta(tmp_path, capsys):
    path = tmp_path / "db.idb"
    path.write_text(DB_TEXT)
    assert main(["update", "--db", str(path), "--query", "R(x,y)"]) == 2
    assert (
        main([
            "update", "--db", str(path), "--query", "R(x,y)",
            "--resolve", "ghost=z",
        ])
        == 2
    )


def test_jsonl_update_jobs_round_trip(tmp_path, capsys):
    db_path = tmp_path / "db.idb"
    db_path.write_text(DB_TEXT)
    jobs_path = tmp_path / "jobs.jsonl"
    jobs_path.write_text(
        json.dumps({
            "problem": "val", "db": "db.idb",
            "query": "R(x,y), S(x,y)", "method": "circuit",
            "label": "base",
        }) + "\n" + json.dumps({
            "problem": "update", "db": "db.idb",
            "query": "R(x,y), S(x,y)",
            "deltas": [["resolve", "n1=b"]], "label": "u1",
        }) + "\n"
    )
    rc = main(["batch", "--jobs", str(jobs_path), "--workers", "1"])
    assert rc == 0
    captured = capsys.readouterr()
    lines = [json.loads(line) for line in captured.out.splitlines()]
    assert lines[1]["label"] == "u1"
    assert lines[1]["method"] == "delta"
    child = base_db().apply(ResolveNull(N1, "b"))
    assert lines[1]["count"] == count_valuations_circuit(child, QUERY)
    assert "parent-chain" in captured.err


def test_jsonl_rejects_malformed_deltas(tmp_path):
    from repro.engine.jsonl import JobSyntaxError, read_jobs

    jobs_path = tmp_path / "jobs.jsonl"
    jobs_path.write_text(
        json.dumps({
            "problem": "update", "db_text": DB_TEXT,
            "query": "R(x,y)", "deltas": ["resolve n1=b"],
        }) + "\n"
    )
    with open(jobs_path) as handle:
        with pytest.raises(JobSyntaxError):
            list(read_jobs(handle, base_dir=str(tmp_path)))
