"""The solver planner: registry coverage, plan explanations, dispatch parity.

``repro.exact.dispatch`` no longer contains per-method conditionals — every
resolution goes through :mod:`repro.exact.planner`.  These tests pin the
registry's behavior to the dispatch semantics the rest of the suite (and
three PRs of callers) rely on.
"""

from __future__ import annotations

import pytest

from repro.core.query import Atom, BCQ, CustomQuery
from repro.db.incomplete import IncompleteDatabase
from repro.db.fact import Fact
from repro.db.terms import Null
from repro.exact import planner
from repro.exact.dispatch import (
    NoPolynomialAlgorithm,
    count_valuations,
    count_valuations_weighted,
    plan_valuations,
    plan_valuations_weighted,
    resolve_completion_method,
    resolve_valuation_method,
    resolve_weighted_method,
)
from repro.workloads.generators import (
    scaling_codd_instance,
    scaling_hard_val_instance,
    scaling_uniform_val_instance,
)


def _uniform_unary_db():
    n1, n2 = Null("u1"), Null("u2")
    return IncompleteDatabase(
        [Fact("R", [n1]), Fact("S", [n2]), Fact("S", ["a"])],
        uniform_domain=["a", "b"],
    )


class TestRegistry:
    def test_every_problem_has_methods(self):
        for problem in planner.PROBLEMS:
            assert planner.methods_for(problem), problem

    def test_method_vocabulary_matches_pre_registry_dispatch(self):
        assert set(planner.method_names("val")) == {
            "auto", "poly", "brute", "delta", "dpdb", "lineage", "circuit",
            "single-occurrence", "codd", "uniform",
        }
        assert set(planner.method_names("comp")) == {
            "auto", "poly", "brute", "delta", "dpdb", "lineage", "circuit",
            "uniform-unary",
        }
        assert set(planner.method_names("val-weighted")) == {
            "auto", "brute", "circuit", "single-occurrence",
        }
        assert "poly" not in planner.method_names("val-weighted")

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError, match="unknown problem"):
            planner.methods_for("nope")

    def test_capability_flags(self):
        by_name = {m.name: m for m in planner.methods_for("val")}
        assert by_name["circuit"].supports_weights
        assert by_name["circuit"].supports_marginals
        assert not by_name["lineage"].supports_weights
        assert by_name["single-occurrence"].polynomial
        assert not by_name["brute"].polynomial


class TestPlans:
    def test_plan_reports_rejections_with_reasons(self):
        db, query = scaling_hard_val_instance(6, seed=1)
        plan = plan_valuations(db, query)
        # The low-width hard cell now routes to the tree-decomposition DP.
        assert plan.chosen == "dpdb"
        rejected = {
            item.method: item.reason
            for item in plan.considered
            if not item.applicable
        }
        assert "single-occurrence" in rejected
        assert rejected["single-occurrence"]  # a human-readable reason
        text = plan.explain()
        assert "lineage" in text and "single-occurrence" in text
        assert "width" in text  # the dpdb probe's cost detail surfaces

    def test_plan_costs_order_applicable_methods(self):
        db, query = scaling_hard_val_instance(6, seed=1)
        plan = plan_valuations(db, query)
        costs = {
            item.method: item.cost
            for item in plan.considered
            if item.applicable
        }
        assert costs["dpdb"] < costs["lineage"] < costs["circuit"]
        assert costs["circuit"] < costs["brute"]

    def test_poly_plan_on_hard_cell_carries_error(self):
        db, query = scaling_hard_val_instance(6, seed=1)
        plan = plan_valuations(db, query, method="poly")
        assert plan.chosen is None
        assert "#P-hard" in plan.error

    def test_forced_fallback_is_noted(self):
        db, _ = scaling_hard_val_instance(6, seed=1)
        opaque = CustomQuery("nonempty", ["R"], lambda database: True)
        plan = plan_valuations(db, opaque, method="circuit")
        assert plan.chosen == "brute"
        assert any("degrading" in note for note in plan.notes)

    def test_forced_inapplicable_method_is_honored_with_note(self):
        db, query = scaling_hard_val_instance(6, seed=1)
        plan = plan_valuations(db, query, method="codd")
        assert plan.chosen == "codd"
        assert any("forced" in note for note in plan.notes)

    def test_unknown_method_raises(self):
        db, query = scaling_hard_val_instance(6, seed=1)
        with pytest.raises(ValueError, match="unknown method"):
            plan_valuations(db, query, method="warp")

    def test_weighted_plan_prefers_closed_form_then_circuit(self):
        free = BCQ([Atom("R", ["x", "y"]), Atom("S", ["z"])])
        db, query = scaling_hard_val_instance(6, seed=1)
        assert plan_valuations_weighted(db, free).chosen == "single-occurrence"
        assert plan_valuations_weighted(db, query).chosen == "circuit"

    def test_marginals_plan(self):
        db, query = scaling_hard_val_instance(6, seed=1)
        plan = planner.plan("marginals", db, query)
        assert plan.chosen == "circuit"
        opaque = CustomQuery("nonempty", ["R"], lambda database: True)
        no_plan = planner.plan("marginals", db, opaque)
        assert no_plan.chosen is None
        assert no_plan.error

    def test_to_dict_is_json_shaped(self):
        import json

        db, query = scaling_hard_val_instance(6, seed=1)
        record = plan_valuations(db, query).to_dict()
        json.dumps(record)
        assert record["chosen"] == "dpdb"
        assert all("reason" in item for item in record["considered"])
        dpdb_row = next(
            item for item in record["considered"] if item["method"] == "dpdb"
        )
        assert dpdb_row["detail"]["width"] <= dpdb_row["detail"]["width_limit"]


class TestDispatchParity:
    """The planner resolves exactly as the pre-registry ``if`` chains did."""

    def test_auto_prefers_closed_forms_in_order(self):
        db, query = scaling_codd_instance(4, seed=1)
        assert resolve_valuation_method(db, query) == "codd"
        db, query = scaling_uniform_val_instance(6, seed=1)
        assert resolve_valuation_method(db, query) == "uniform"
        free = BCQ([Atom("R", ["x", "y"]), Atom("S", ["z"])])
        db, _ = scaling_hard_val_instance(6, seed=1)
        assert resolve_valuation_method(db, free) == "single-occurrence"

    def test_auto_on_hard_cell_is_lineage(self):
        # A low-width hard cell goes to the DP; lineage is the choice as
        # soon as the width probe reports more than the dpdb limit.
        db, query = scaling_hard_val_instance(6, seed=1)
        assert resolve_valuation_method(db, query) == "dpdb"

    def test_resolution_survives_astronomical_valuation_totals(self):
        # 5000 nulls of domain 10: the total has ~5000 decimal digits,
        # past CPython's int-to-str conversion limit — cost estimation
        # must never stringify it.
        domain = ["v%d" % i for i in range(10)]
        facts = [Fact("R", [Null(i)]) for i in range(5000)]
        db = IncompleteDatabase(facts, uniform_domain=domain)
        query = BCQ([Atom("R", ["x"])])
        assert resolve_valuation_method(db, query, "lineage") == "lineage"
        plan = plan_valuations(db, query)
        assert plan.chosen is not None

    def test_poly_raises_through_resolve(self):
        db, query = scaling_hard_val_instance(6, seed=1)
        with pytest.raises(NoPolynomialAlgorithm):
            resolve_valuation_method(db, query, "poly")
        with pytest.raises(NoPolynomialAlgorithm):
            resolve_completion_method(db, query, "poly")

    def test_completion_auto(self):
        assert resolve_completion_method(_uniform_unary_db(), None) == (
            "uniform-unary"
        )
        # The completion encoding's projection-constrained width is large
        # on this family, so #Comp stays with the trail search.
        db, query = scaling_hard_val_instance(6, seed=1)
        assert resolve_completion_method(db, query) == "lineage"

    def test_weighted_resolution(self):
        db, query = scaling_hard_val_instance(6, seed=1)
        assert resolve_weighted_method(db, query) == "circuit"
        opaque = CustomQuery("nonempty", ["R"], lambda database: True)
        assert resolve_weighted_method(db, opaque, "circuit") == "brute"

    def test_counts_agree_across_registry_methods(self):
        db, query = scaling_hard_val_instance(6, seed=1)
        auto = count_valuations(db, query)
        assert count_valuations(db, query, method="lineage") == auto
        assert count_valuations(db, query, method="circuit") == auto
        assert count_valuations(db, query, method="brute") == auto
        weights = {
            null: {value: 2 for value in db.domain_of(null)}
            for null in db.nulls
        }
        weighted_circuit = count_valuations_weighted(db, query, weights)
        weighted_brute = count_valuations_weighted(
            db, query, weights, method="brute"
        )
        assert weighted_circuit == weighted_brute

    def test_registration_extends_auto_without_dispatch_edits(self):
        """Adding a method is one register() call: auto picks it up."""
        db, query = scaling_hard_val_instance(6, seed=1)
        name = "test-shortcut"
        try:
            planner.register(planner.Method(
                name=name,
                problem="val",
                description="test-only constant-time method",
                polynomial=True,
                supports_weights=False,
                supports_marginals=False,
                applies=lambda d, q: (True, "always (test)"),
                cost=lambda d, q: 0.5,
                run=lambda d, q, budget=None, weights=None: 42,
            ))
            assert resolve_valuation_method(db, query) == name
            assert count_valuations(db, query) == 42
        finally:
            del planner._REGISTRY["val"][name]
        assert resolve_valuation_method(db, query) == "dpdb"
