"""Tests for the bounded integer-feasibility solver (Lemma B.19 backend)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.ilp import IntegerFeasibilityProblem, is_feasible


def _make_problem(bounds, constraints):
    problem = IntegerFeasibilityProblem()
    for low, high in bounds:
        problem.add_variable(low, high)
    for coeffs, sense, rhs in constraints:
        problem.add_constraint(coeffs, sense, rhs)
    return problem


class TestBasics:
    def test_empty_problem_feasible(self):
        assert is_feasible(IntegerFeasibilityProblem())

    def test_constant_constraints(self):
        problem = IntegerFeasibilityProblem()
        problem.constraints = []
        assert is_feasible(problem)

    def test_simple_feasible(self):
        problem = _make_problem(
            [(0, 3), (0, 3)], [([1, 1], "==", 4), ([1, -1], "<=", 0)]
        )
        assert is_feasible(problem, backend="python")

    def test_simple_infeasible(self):
        problem = _make_problem([(0, 3), (0, 3)], [([1, 1], "==", 7)])
        assert not is_feasible(problem, backend="python")

    def test_rejects_bad_bounds(self):
        problem = IntegerFeasibilityProblem()
        with pytest.raises(ValueError):
            problem.add_variable(3, 1)

    def test_rejects_bad_sense(self):
        problem = _make_problem([(0, 1)], [])
        with pytest.raises(ValueError):
            problem.add_constraint([1], ">", 0)

    def test_rejects_arity_mismatch(self):
        problem = _make_problem([(0, 1)], [])
        with pytest.raises(ValueError):
            problem.add_constraint([1, 2], "<=", 0)

    def test_negative_bounds(self):
        problem = _make_problem([(-3, -1)], [([1], ">=", -2)])
        assert is_feasible(problem, backend="python")
        problem = _make_problem([(-3, -1)], [([1], ">=", 0)])
        assert not is_feasible(problem, backend="python")


@st.composite
def random_problems(draw):
    num_vars = draw(st.integers(1, 4))
    bounds = [
        (0, draw(st.integers(0, 4))) for _ in range(num_vars)
    ]
    constraints = []
    for _ in range(draw(st.integers(0, 3))):
        coeffs = [draw(st.integers(-3, 3)) for _ in range(num_vars)]
        sense = draw(st.sampled_from(["<=", ">=", "=="]))
        rhs = draw(st.integers(-6, 10))
        constraints.append((coeffs, sense, rhs))
    return _make_problem(bounds, constraints)


def _feasible_by_enumeration(problem) -> bool:
    from itertools import product

    ranges = [range(low, high + 1) for low, high in problem.bounds]
    for point in product(*ranges):
        ok = True
        for constraint in problem.constraints:
            value = sum(c * x for c, x in zip(constraint.coeffs, point))
            if constraint.sense == "<=" and not value <= constraint.rhs:
                ok = False
            elif constraint.sense == ">=" and not value >= constraint.rhs:
                ok = False
            elif constraint.sense == "==" and value != constraint.rhs:
                ok = False
            if not ok:
                break
        if ok:
            return True
    return False


class TestAgainstEnumeration:
    @given(random_problems())
    @settings(max_examples=60, deadline=None)
    def test_python_backend_exact(self, problem):
        assert is_feasible(problem, backend="python") == (
            _feasible_by_enumeration(problem)
        )

    @given(random_problems())
    @settings(max_examples=20, deadline=None)
    def test_scipy_backend_agrees(self, problem):
        pytest.importorskip("scipy")
        assert is_feasible(problem, backend="scipy") == is_feasible(
            problem, backend="python"
        )
