"""Tests for incomplete databases: domains, Codd detection, views."""

import pytest
from hypothesis import given, settings

from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null

from tests.conftest import small_incomplete_dbs


class TestConstruction:
    def test_requires_exactly_one_domain_kind(self):
        facts = [Fact("R", [Null("x")])]
        with pytest.raises(ValueError):
            IncompleteDatabase(facts)
        with pytest.raises(ValueError):
            IncompleteDatabase(
                facts, dom={Null("x"): ["a"]}, uniform_domain=["a"]
            )

    def test_missing_domain_rejected(self):
        with pytest.raises(ValueError):
            IncompleteDatabase([Fact("R", [Null("x")])], dom={})

    def test_null_inside_domain_rejected(self):
        with pytest.raises(ValueError):
            IncompleteDatabase(
                [Fact("R", [Null("x")])], dom={Null("x"): [Null("y")]}
            )
        with pytest.raises(ValueError):
            IncompleteDatabase.uniform([Fact("R", ["a"])], [Null("y")])

    def test_irrelevant_domains_dropped(self):
        db = IncompleteDatabase(
            [Fact("R", [Null("x")])],
            dom={Null("x"): ["a"], Null("unused"): ["b"]},
        )
        with pytest.raises(KeyError):
            db.domain_of(Null("unused"))

    def test_arity_consistency(self):
        with pytest.raises(ValueError):
            IncompleteDatabase.uniform(
                [Fact("R", ["a"]), Fact("R", ["a", "b"])], ["a"]
            )


class TestCoddDetection:
    def test_codd_table(self):
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null(1), "a"]), Fact("S", [Null(2)])], ["a"]
        )
        assert db.is_codd

    def test_repeat_across_facts_is_naive(self):
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null(1)]), Fact("S", [Null(1)])], ["a"]
        )
        assert not db.is_codd

    def test_repeat_within_fact_is_naive(self):
        """Example 2.1's S(⊥1, ⊥1) violates the Codd condition."""
        db = IncompleteDatabase.uniform(
            [Fact("S", [Null(1), Null(1)])], ["a"]
        )
        assert not db.is_codd
        assert db.null_occurrences()[Null(1)] == 2


class TestViews:
    def test_as_non_uniform_preserves_domains(self):
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null(1), Null(2)])], ["a", "b"]
        )
        view = db.as_non_uniform()
        assert not view.is_uniform
        assert view.domain_of(Null(1)) == frozenset({"a", "b"})
        assert view.facts == db.facts

    def test_as_uniform_roundtrip(self):
        db = IncompleteDatabase(
            [Fact("R", [Null(1)]), Fact("S", [Null(2)])],
            dom={Null(1): ["a", "b"], Null(2): ["b", "a"]},
        )
        uniform = db.as_uniform()
        assert uniform.is_uniform
        assert uniform.uniform_domain == frozenset({"a", "b"})

    def test_as_uniform_rejects_differing_domains(self):
        db = IncompleteDatabase(
            [Fact("R", [Null(1)]), Fact("S", [Null(2)])],
            dom={Null(1): ["a"], Null(2): ["b"]},
        )
        with pytest.raises(ValueError):
            db.as_uniform()

    def test_restrict_to_relations(self):
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null(1)]), Fact("S", ["a"])], ["a"]
        )
        restricted = db.restrict_to_relations(["S"])
        assert restricted.relations == {"S"}
        assert restricted.is_uniform

    def test_uniform_domain_accessor_guard(self):
        db = IncompleteDatabase(
            [Fact("R", [Null(1)])], dom={Null(1): ["a"]}
        )
        with pytest.raises(ValueError):
            _ = db.uniform_domain


class TestInspection:
    def test_nulls_sorted_and_constants(self):
        db = IncompleteDatabase.uniform(
            [Fact("R", [Null("b"), "k"]), Fact("S", [Null("a")])], ["k"]
        )
        assert db.nulls == [Null("a"), Null("b")]
        assert db.constants() == {"k"}
        assert db.schema() == {"R": 2, "S": 1}

    @given(small_incomplete_dbs())
    @settings(max_examples=40)
    def test_every_null_has_a_domain(self, db):
        for null in db.nulls:
            assert db.domain_of(null)  # non-empty by strategy construction

    @given(small_incomplete_dbs(uniform=True))
    @settings(max_examples=25)
    def test_uniform_view_consistency(self, db):
        assert db.is_uniform
        for null in db.nulls:
            assert db.domain_of(null) == db.uniform_domain
