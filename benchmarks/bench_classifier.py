"""E4 — Table 1 as a decision procedure: the dichotomy classifier.

Regenerates every cell of Table 1 over a catalogue of queries (the six
canonical patterns plus composites) and times classification — which must
be instantaneous relative to any counting — plus the general Definition-3.1
pattern search on a larger query.
"""

from __future__ import annotations

import pytest

from repro.core.classify import Tractability, classify
from repro.core.patterns import (
    PATTERN_BINARY,
    PATTERN_DOUBLE_EDGE,
    PATTERN_PATH,
    PATTERN_REPEAT,
    PATTERN_SHARED,
    PATTERN_UNARY,
    is_pattern_of,
)
from repro.core.problems import ALL_VARIANTS
from repro.core.query import Atom, BCQ

CATALOGUE = {
    "R(x)": PATTERN_UNARY,
    "R(x,x)": PATTERN_REPEAT,
    "R(x,y)": PATTERN_BINARY,
    "R(x)∧S(x)": PATTERN_SHARED,
    "path": PATTERN_PATH,
    "double-edge": PATTERN_DOUBLE_EDGE,
    "mixed": BCQ(
        [Atom("R", ["x", "y"]), Atom("S", ["y"]), Atom("T", ["z", "z"])]
    ),
    "wide": BCQ(
        [
            Atom("A", ["x1", "x2", "x3"]),
            Atom("B", ["x3", "x4"]),
            Atom("C", ["x5"]),
            Atom("D", ["x4", "x6", "x6"]),
        ]
    ),
}


def test_table1_regenerated(benchmark, emit):
    """Print the full empirical Table 1 for the catalogue."""
    reports = benchmark(
        lambda: {name: classify(query) for name, query in CATALOGUE.items()}
    )
    for name, query in CATALOGUE.items():
        report = reports[name]
        cells = {
            variant.paper_name: report.entry(variant).tractability.value
            for variant in ALL_VARIANTS
        }
        emit("Table 1 row for %s" % name, **cells)
        # sanity: #Comp non-uniform is never FP (Theorem 4.3)
        assert all(
            not report.entry(v).tractability is Tractability.FP
            for v in ALL_VARIANTS
            if v.mode.value == "comp" and not v.uniform
        )


@pytest.mark.parametrize("name", sorted(CATALOGUE))
def test_classification_speed(benchmark, name):
    query = CATALOGUE[name]
    report = benchmark(classify, query)
    assert len(report.entries) == 8


def test_pattern_search_speed(benchmark):
    """The general Def. 3.1 search on the largest catalogue query."""
    query = CATALOGUE["wide"]
    result = benchmark(is_pattern_of, PATTERN_PATH, query)
    assert result is True
