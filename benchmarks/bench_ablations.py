"""Ablations for the design choices DESIGN.md calls out.

* ILP backend (Theorem 4.6 feasibility): pure-Python branch-and-prune vs.
  scipy MILP — the dispatcher's auto threshold is justified by the
  crossover.
* #Val estimation: Karp-Luby coverage estimator vs. naive Monte-Carlo at
  equal sample budgets — equal work, very different error on skewed
  instances.
* Completion counting on unary uniform tables: shape enumeration
  (Thm 4.6) vs. brute-force enumeration — the polynomial/exponential
  crossover inside the FP cell.
"""

from __future__ import annotations

import pytest

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute, count_valuations_brute
from repro.exact.comp_uniform import count_completions_uniform_unary
from repro.approx.fpras import KarpLubyEstimator
from repro.approx.montecarlo import naive_monte_carlo_valuations
from repro.util.ilp import IntegerFeasibilityProblem, is_feasible
from repro.workloads.generators import scaling_uniform_unary_comp_instance


def _cover_style_problem(classes: int, budget: int) -> IntegerFeasibilityProblem:
    """A transportation-style feasibility instance shaped like the
    Lemma B.19 systems: per-class equality + shared block budgets."""
    problem = IntegerFeasibilityProblem()
    variables = []
    for _ in range(classes * 2):
        variables.append(problem.add_variable(0, budget))
    n = problem.num_variables
    for index in range(classes):
        coeffs = [0] * n
        coeffs[2 * index] = 1
        coeffs[2 * index + 1] = 1
        problem.add_constraint(coeffs, "==", budget // 2 + index % 2)
    shared = [1 if i % 2 == 0 else 0 for i in range(n)]
    problem.add_constraint(shared, "<=", budget * classes // 2)
    return problem


@pytest.mark.parametrize("backend", ["python", "scipy"])
@pytest.mark.parametrize("classes", [3, 6])
def test_ablation_ilp_backend(benchmark, emit, backend, classes):
    problem = _cover_style_problem(classes, budget=8)
    result = benchmark(is_feasible, problem, backend)
    emit(
        "ablation ILP backend=%s classes=%d" % (backend, classes),
        feasible=result,
    )
    assert result == is_feasible(problem, "python")


@pytest.mark.parametrize("estimator_name", ["karp-luby", "naive-mc"])
def test_ablation_estimators_equal_budget(benchmark, emit, estimator_name):
    """Same sample budget, same instance: compare achieved error."""
    nulls = [Null(i) for i in range(8)]
    facts = [Fact("R", [nulls[i], nulls[i + 1]]) for i in range(7)]
    db = IncompleteDatabase.uniform(facts, ["a", "b", "c", "d"])
    query = BCQ([Atom("R", ["x", "x"])])
    exact = count_valuations_brute(db, query)
    samples = 3000

    if estimator_name == "karp-luby":
        estimator = KarpLubyEstimator(db, query, seed=21)
        estimate = benchmark(
            lambda: estimator.estimate_with_samples(samples).estimate
        )
    else:
        estimate = benchmark(
            lambda: naive_monte_carlo_valuations(db, query, samples, seed=21)
        )
    error = abs(estimate - exact) / exact
    emit(
        "ablation estimator=%s, %d samples" % (estimator_name, samples),
        exact=exact,
        estimate=round(estimate, 1),
        rel_error=round(error, 4),
    )
    # Both are unbiased and comparable here because the satisfying mass is
    # large; the rare-event test in bench_approximation shows the regime
    # where naive MC collapses and only Karp-Luby retains its guarantee.
    assert error < 0.5


@pytest.mark.parametrize("nulls,method", [(6, "poly"), (6, "brute"),
                                          (12, "poly")])
def test_ablation_comp_poly_vs_brute(benchmark, emit, nulls, method):
    """Inside the Theorem 4.6 FP cell, the shape algorithm's advantage over
    enumeration grows with the null count (brute at 12 nulls would cross
    the enumeration budget)."""
    db, query = scaling_uniform_unary_comp_instance(nulls)
    if method == "poly":
        result = benchmark(count_completions_uniform_unary, db, query)
    else:
        result = benchmark(count_completions_brute, db, query)
    emit(
        "ablation #Compu method=%s nulls=%d" % (method, nulls),
        count=result,
    )
    if nulls == 6:
        assert result == count_completions_brute(db, query)
