"""E-lineage — brute force vs the lineage/#SAT backend on hard cells.

Table 1's #P-hard cells have no polynomial algorithm, so the seed repo's
only exact option was brute-force enumeration of all ``prod |dom(⊥)|``
valuations, with an opt-in budget of 2·10^6.  The lineage backend
(:mod:`repro.compile`) compiles the same instances to CNF and counts
models with component decomposition, so its cost tracks the lineage's
treewidth instead.  Each case emits a machine-readable JSON row
(``[paper] ... json={...}``) with both wall times and the speedup; the
final cases are instances brute force *cannot* finish within its default
budget while lineage answers in milliseconds.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.compile import count_completions_lineage, count_valuations_lineage
from repro.db.valuation import count_total_valuations
from repro.exact.brute import (
    BruteForceBudgetExceeded,
    count_completions_brute,
    count_valuations_brute,
)
from repro.workloads.generators import (
    scaling_hard_comp_instance,
    scaling_hard_val_instance,
)


def _timed(function, *args, **kwargs):
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - started


# ---------------------------------------------------------------------------
# #Val hard cell (R(x,x), naive uniform — Prop. 3.4 shape)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", [8, 10, 12])
def test_hard_val_lineage_vs_brute(benchmark, emit, size):
    db, query = scaling_hard_val_instance(size)
    result = benchmark(count_valuations_lineage, db, query)
    _, lineage_seconds = _timed(count_valuations_lineage, db, query)
    expected, brute_seconds = _timed(
        count_valuations_brute, db, query, budget=None
    )
    assert result == expected
    speedup = brute_seconds / max(lineage_seconds, 1e-9)
    emit(
        "lineage vs brute, #Val hard cell, n=%d" % size,
        json=json.dumps(
            {
                "cell": "val-hard",
                "size": size,
                "total_valuations": count_total_valuations(db),
                "count": result,
                "brute_seconds": round(brute_seconds, 4),
                "lineage_seconds": round(lineage_seconds, 4),
                "speedup": round(speedup, 1),
            }
        ),
    )
    if size >= 10:
        # Acceptance: >= 10x on at least one hard-cell instance (observed
        # ~100x at n=10; the margin keeps slow CI boxes green).
        assert speedup >= 10


@pytest.mark.parametrize("size", [16, 40])
def test_hard_val_beyond_brute_budget(benchmark, emit, size):
    """Instances brute force cannot finish within its default budget."""
    db, query = scaling_hard_val_instance(size)
    with pytest.raises(BruteForceBudgetExceeded):
        count_valuations_brute(db, query)
    result = benchmark(count_valuations_lineage, db, query)
    _, lineage_seconds = _timed(count_valuations_lineage, db, query)
    emit(
        "lineage beyond brute budget, #Val, n=%d" % size,
        json=json.dumps(
            {
                "cell": "val-hard",
                "size": size,
                "total_valuations": count_total_valuations(db),
                "count_digits": len(str(result)),
                "brute_seconds": None,
                "lineage_seconds": round(lineage_seconds, 4),
            }
        ),
    )


# ---------------------------------------------------------------------------
# #Comp hard cell (non-uniform unary — Prop. 4.2 shape)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", [10, 14])
def test_hard_comp_lineage_vs_brute(benchmark, emit, size):
    db, _query = scaling_hard_comp_instance(size)
    result = benchmark(count_completions_lineage, db, None)
    _, lineage_seconds = _timed(count_completions_lineage, db, None)
    expected, brute_seconds = _timed(count_completions_brute, db, budget=None)
    assert result == expected
    emit(
        "lineage vs brute, #Comp hard cell, n=%d" % size,
        json=json.dumps(
            {
                "cell": "comp-hard",
                "size": size,
                "total_valuations": count_total_valuations(db),
                "count": result,
                "brute_seconds": round(brute_seconds, 4),
                "lineage_seconds": round(lineage_seconds, 4),
                "speedup": round(brute_seconds / max(lineage_seconds, 1e-9), 1),
            }
        ),
    )


def test_hard_comp_beyond_brute_budget(benchmark, emit):
    size = 24
    db, query = scaling_hard_comp_instance(size)
    with pytest.raises(BruteForceBudgetExceeded):
        count_completions_brute(db, query)
    result = benchmark(count_completions_lineage, db, query)
    _, lineage_seconds = _timed(count_completions_lineage, db, query)
    emit(
        "lineage beyond brute budget, #Comp(q), n=%d" % size,
        json=json.dumps(
            {
                "cell": "comp-hard",
                "size": size,
                "total_valuations": count_total_valuations(db),
                "count": result,
                "brute_seconds": None,
                "lineage_seconds": round(lineage_seconds, 4),
            }
        ),
    )
