"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table/figure of the paper (see the
per-experiment index in DESIGN.md).  Benchmarks print the paper-style rows
they reproduce — run with ``pytest benchmarks/ --benchmark-only -s`` to see
them — and assert the count identities, so a bench run doubles as an
integration check.
"""

from __future__ import annotations

import pytest


def paper_row(label: str, **fields) -> str:
    """Uniformly formatted 'paper row' line for benchmark output."""
    body = "  ".join("%s=%s" % (key, value) for key, value in fields.items())
    return "[paper] %-42s %s" % (label, body)


@pytest.fixture
def emit(capsys):
    """Print a paper row so it survives pytest's capture with -s."""

    def _emit(label: str, **fields):
        with capsys.disabled():
            print(paper_row(label, **fields))

    return _emit
