"""E5 — Section 5: approximation dichotomy.

* Corollary 5.3: the Karp-Luby FPRAS for #Val achieves relative error ε at
  the prescribed sample size, on instances far beyond brute force's reach,
  and degrades gracefully as ε shrinks (timed sweep).
* The naive Monte-Carlo baseline misses exponentially rare satisfying sets
  — the failure the FPRAS exists to fix.
* Prop. 5.6: no such scheme can exist for #Comp — the 3-colorability gap
  gadget is exercised: an exact counter (playing a perfect "approximator")
  separates 8 from 7, i.e. decides an NP-complete problem.
"""

from __future__ import annotations

import pytest

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute, count_valuations_brute
from repro.approx.fpras import KarpLubyEstimator
from repro.approx.montecarlo import naive_monte_carlo_valuations
from repro.graphs.counting import is_colorable
from repro.graphs.generators import complete_graph, cycle_graph
from repro.reductions.gap3col import (
    build_gap_db,
    decide_three_colorability_via_approximation,
)

QUERY = BCQ([Atom("R", ["x", "x"])])


def chain_instance(length: int, domain: int) -> IncompleteDatabase:
    nulls = [Null(i) for i in range(length + 1)]
    facts = [Fact("R", [nulls[i], nulls[i + 1]]) for i in range(length)]
    return IncompleteDatabase.uniform(
        facts, ["v%d" % i for i in range(domain)]
    )


@pytest.mark.parametrize("epsilon", [0.3, 0.15, 0.08])
def test_fpras_accuracy_sweep(benchmark, emit, epsilon):
    """Accuracy vs. ε on a verifiable instance (Cor. 5.3)."""
    db = chain_instance(6, 3)
    exact = count_valuations_brute(db, QUERY)
    estimator = KarpLubyEstimator(db, QUERY, seed=17)

    def run():
        return estimator.estimate(epsilon, delta=0.1)

    report = benchmark(run)
    error = abs(report.estimate - exact) / exact
    emit(
        "FPRAS #Val, eps=%.2f" % epsilon,
        exact=exact,
        estimate=round(report.estimate, 1),
        rel_error=round(error, 4),
        samples=report.samples,
    )
    assert error <= epsilon


def test_fpras_beyond_brute_force(benchmark, emit):
    """The FPRAS runs where enumeration (2 * 10^6 budget) refuses."""
    db = chain_instance(40, 4)  # 4^41 valuations
    estimator = KarpLubyEstimator(db, QUERY, seed=3)
    report = benchmark(estimator.estimate_with_samples, 4000)
    emit(
        "FPRAS #Val on 4^41 valuation space",
        estimate="%.3e" % report.estimate,
        events=report.num_events,
    )
    assert report.estimate > 0


def test_monte_carlo_misses_rare_mass(benchmark, emit):
    """Naive sampling returns 0 on a satisfying set of measure 10^-3 per
    null; Karp-Luby nails it (the Section 5.1 motivation)."""
    db = IncompleteDatabase.uniform(
        [Fact("S", [Null("z"), "w"])],
        ["w"] + ["v%d" % i for i in range(999)],
    )
    query = BCQ([Atom("S", ["x", "x"])])
    # Seed chosen so the 300 naive samples all miss the 1/1000 event —
    # the typical outcome (74% of seeds); either way the estimator's
    # relative error is catastrophic while the FPRAS stays within 10%.
    naive = benchmark(
        naive_monte_carlo_valuations, db, query, 300, 4
    )
    fpras = KarpLubyEstimator(db, query, seed=5).estimate(0.1).estimate
    emit(
        "naive MC vs FPRAS on rare event",
        exact=1,
        naive_estimate=naive,
        fpras_estimate=round(fpras, 3),
    )
    assert naive == 0.0
    assert abs(fpras - 1) <= 0.1


@pytest.mark.parametrize(
    "graph_name,graph,colorable",
    [
        ("C4", cycle_graph(4), True),
        ("K4", complete_graph(4), False),
    ],
)
def test_comp_gap_gadget(benchmark, emit, graph_name, graph, colorable):
    """Prop. 5.6: a 1/16-approximation of #Compu decides 3-colorability."""
    assert is_colorable(graph, 3) == colorable

    def exact_oracle(db, query, epsilon):
        return float(count_completions_brute(db, query, budget=None))

    def run():
        return decide_three_colorability_via_approximation(
            graph, exact_oracle
        )

    decision = benchmark(run)
    db = build_gap_db(graph)
    completions = count_completions_brute(db, None, budget=None)
    emit(
        "gap gadget on %s" % graph_name,
        completions=completions,
        paper="8 iff 3-colorable else 7",
        decided_colorable=decision,
    )
    assert decision == colorable
    assert completions == (8 if colorable else 7)
