"""E2 — Table 1, columns 1-2: counting valuations.

For each of the four cells the harness regenerates both sides of the
dichotomy:

* tractable side — the polynomial algorithm is timed on a scaling family
  and checked against brute force on the smallest size;
* hard side — the hardness reduction is executed end-to-end (counts match
  the graph oracle), and the brute-force oracle is timed on growing graphs
  to exhibit the exponential cost the #P-hardness predicts.
"""

from __future__ import annotations

import pytest

from repro.core.query import Atom, BCQ
from repro.exact.brute import count_valuations_brute
from repro.exact.val_codd import count_valuations_codd
from repro.exact.val_nonuniform import count_valuations_single_occurrence
from repro.exact.val_uniform import count_valuations_uniform
from repro.graphs.counting import count_colorings, count_independent_sets
from repro.graphs.generators import cycle_graph, random_graph
from repro.graphs.graph import Multigraph
from repro.graphs.avoidance import count_avoiding_assignments
from repro.reductions.avoidance import (
    count_avoiding_assignments_via_valuations,
)
from repro.reductions.bis import count_bis_via_valuations
from repro.reductions.coloring import (
    build_three_coloring_db,
    count_colorings_via_valuations,
)
from repro.reductions.independent_set import (
    PATH_QUERY,
    count_independent_sets_via_valuations,
)
from repro.workloads.generators import (
    scaling_codd_instance,
    scaling_single_occurrence_instance,
    scaling_uniform_val_instance,
)
from tests.conftest import small_bipartite_graphs  # reuse strategy helpers


# ---------------------------------------------------------------------------
# Cell (naive, non-uniform): hard iff R(x,x) or R(x)∧S(x) (Theorem 3.6)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", [20, 60, 120])
def test_val_nonuniform_tractable(benchmark, emit, size):
    db, query = scaling_single_occurrence_instance(size)
    result = benchmark(count_valuations_single_occurrence, db, query)
    emit(
        "Table 1 #Val tractable (Thm 3.6), size %d" % size,
        count=("%d digits" % len(str(result))),
    )
    if size == 20:
        small_db, small_query = scaling_single_occurrence_instance(4)
        assert count_valuations_single_occurrence(
            small_db, small_query
        ) == count_valuations_brute(small_db, small_query)


@pytest.mark.parametrize("nodes", [5, 7, 9])
def test_val_nonuniform_hard_pattern(benchmark, emit, nodes):
    """#Val(R(x,x)) is #P-hard (Prop. 3.4): brute force over the coloring
    reduction database grows as 3^n."""
    graph = random_graph(nodes, 0.5, seed=nodes)
    db = build_three_coloring_db(graph)
    query = BCQ([Atom("R", ["x", "x"])])
    result = benchmark(count_valuations_brute, db, query, budget=None)
    expected = count_colorings(graph, 3)
    emit(
        "Table 1 #Val hard cell R(x,x) via #3COL, n=%d" % nodes,
        recovered_3col=3 ** len(db.nulls) - result,
        direct_3col=expected,
    )
    assert count_colorings_via_valuations(graph) == expected


# ---------------------------------------------------------------------------
# Cell (Codd, non-uniform): hard iff R(x)∧S(x) (Theorem 3.7)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", [10, 30, 60])
def test_val_codd_tractable(benchmark, emit, size):
    db, query = scaling_codd_instance(size)
    result = benchmark(count_valuations_codd, db, query)
    emit(
        "Table 1 #ValCd tractable (Thm 3.7), size %d" % size,
        count=("%d digits" % len(str(result))),
    )
    if size == 10:
        small_db, small_query = scaling_codd_instance(3)
        assert count_valuations_codd(
            small_db, small_query
        ) == count_valuations_brute(small_db, small_query)


@pytest.mark.parametrize("side", [2, 3])
def test_val_codd_hard_pattern(benchmark, emit, side):
    """#ValCd(R(x)∧S(x)) is #P-hard (Prop. 3.5) via #Avoidance."""
    graph = _bipartite_with_degrees(side)
    result = benchmark(count_avoiding_assignments_via_valuations, graph)
    expected = count_avoiding_assignments(Multigraph.from_graph(graph))
    emit(
        "Table 1 #ValCd hard cell via #Avoidance, side %d" % side,
        recovered=result,
        direct=expected,
    )
    assert result == expected


def _bipartite_with_degrees(side: int):
    from repro.graphs.generators import complete_bipartite_graph

    return complete_bipartite_graph(side, side)


# ---------------------------------------------------------------------------
# Cell (naive, uniform): hard iff R(x,x) / path / double edge (Theorem 3.9)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", [4, 8, 12])
def test_val_uniform_tractable(benchmark, emit, size):
    db, query = scaling_uniform_val_instance(size)
    result = benchmark(count_valuations_uniform, db, query)
    emit(
        "Table 1 #Valu tractable (Thm 3.9), size %d" % size,
        count=result,
    )
    if size == 4:
        assert result == count_valuations_brute(db, query)


@pytest.mark.parametrize("nodes", [6, 9, 12])
def test_val_uniform_hard_pattern(benchmark, emit, nodes):
    """#Valu(R(x)∧S(x,y)∧T(y)) is #P-hard (Prop. 3.8) via #IS."""
    graph = random_graph(nodes, 0.4, seed=nodes)
    result = benchmark(
        count_independent_sets_via_valuations, graph, PATH_QUERY
    )
    expected = count_independent_sets(graph)
    emit(
        "Table 1 #Valu hard cell via #IS, n=%d" % nodes,
        recovered=result,
        direct=expected,
    )
    assert result == expected


# ---------------------------------------------------------------------------
# Cell (Codd, uniform): path pattern hard (Prop. 3.11); rest open/FP
# ---------------------------------------------------------------------------


def test_val_uniform_codd_hard_pattern(benchmark, emit):
    """#ValuCd(path) is #P-hard (Prop. 3.11): the interpolation reduction,
    timed end-to-end ((n+1)^2 oracle calls + exact linear solve)."""
    graph = _bipartite_with_degrees(2)
    result = benchmark(count_bis_via_valuations, graph)
    expected = count_independent_sets(graph)
    emit(
        "Table 1 #ValuCd hard cell via #BIS (Prop 3.11)",
        recovered=result,
        direct=expected,
    )
    assert result == expected


@pytest.mark.parametrize("size", [4, 8])
def test_val_uniform_codd_tractable(benchmark, emit, size):
    """Pattern-free queries stay FP on uniform Codd tables (the classifier's
    FP region of the open cell): reuse the Theorem 3.9 algorithm on a Codd
    instance."""
    db, query = scaling_uniform_val_instance(size)
    # make it Codd by keeping only first occurrences of shared nulls
    seen = set()
    facts = []
    for fact in sorted(db.facts):
        if fact.nulls() & seen:
            continue
        seen |= fact.nulls()
        facts.append(fact)
    codd_db = db.with_facts(facts)
    assert codd_db.is_codd
    result = benchmark(count_valuations_uniform, codd_db, query)
    emit(
        "Table 1 #ValuCd FP region, size %d" % size,
        count=result,
    )
    if size == 4:
        assert result == count_valuations_brute(codd_db, query)
