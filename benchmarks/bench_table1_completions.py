"""E3 — Table 1, columns 3-4: counting completions.

* non-uniform: hard for *every* sjfBCQ, already for R(x) on Codd tables
  (Prop. 4.2) — the vertex-cover reduction is executed and timed;
* uniform: FP for unary schemas (Theorem 4.6, shape-enumeration algorithm
  timed on a scaling family) and hard for R(x,x)/R(x,y) (Prop. 4.5, both
  the naive-table #IS reduction and the Codd-table #PF reduction).
"""

from __future__ import annotations

import pytest

from repro.exact.brute import count_completions_brute
from repro.exact.comp_uniform import (
    count_completions_single_unary,
    count_completions_uniform_unary,
)
from repro.graphs.counting import count_independent_sets, count_vertex_covers
from repro.graphs.generators import (
    complete_bipartite_graph,
    random_graph,
)
from repro.graphs.pseudoforest import count_induced_pseudoforests
from repro.reductions.independent_set import (
    count_independent_sets_via_completions,
)
from repro.reductions.pseudoforest import count_pseudoforests_via_completions
from repro.reductions.vertex_cover import count_vertex_covers_via_completions
from repro.workloads.generators import scaling_uniform_unary_comp_instance


# ---------------------------------------------------------------------------
# Non-uniform cells: #P-hard for every query (Theorems 4.3 / 4.4)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nodes", [4, 5, 6])
def test_comp_nonuniform_hard_for_single_unary(benchmark, emit, nodes):
    """Prop. 4.2: counting completions of one unary Codd table counts
    vertex covers — parsimoniously.  The instance has one null per node
    *and* per edge, so brute force pays 2^(n + |E|) — the exponential the
    #P-hardness predicts."""
    graph = random_graph(nodes, 0.5, seed=nodes + 1)
    result = benchmark(count_vertex_covers_via_completions, graph)
    expected = count_vertex_covers(graph)
    emit(
        "Table 1 #CompCd(R(x)) via #VC, n=%d" % nodes,
        recovered=result,
        direct=expected,
    )
    assert result == expected


# ---------------------------------------------------------------------------
# Uniform cells: FP for unary schemas (Theorem 4.6)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nulls", [6, 10, 14])
def test_comp_uniform_unary_tractable(benchmark, emit, nulls):
    db, query = scaling_uniform_unary_comp_instance(nulls)
    result = benchmark(count_completions_uniform_unary, db, query)
    emit(
        "Table 1 #Compu tractable (Thm 4.6), nulls=%d" % nulls,
        count=result,
    )
    if nulls == 6:
        assert result == count_completions_brute(db, query)


@pytest.mark.parametrize("nulls", [20, 60, 120])
def test_comp_uniform_single_unary_closed_form(benchmark, emit, nulls):
    """Warm-up B.6.1/B.6.2 closed form: far larger instances than the
    shape-enumeration algorithm (and both stay polynomial)."""
    from repro.db.fact import Fact
    from repro.db.incomplete import IncompleteDatabase
    from repro.db.terms import Null

    facts = [Fact("R", [Null(i)]) for i in range(nulls)]
    facts.append(Fact("R", ["k"]))
    db = IncompleteDatabase.uniform(
        facts, ["k"] + ["v%d" % i for i in range(nulls + 5)]
    )
    result = benchmark(count_completions_single_unary, db)
    emit(
        "Warm-up closed form, nulls=%d" % nulls,
        count=("%d digits" % len(str(result))),
    )
    assert result > 0


# ---------------------------------------------------------------------------
# Uniform cells: hard for R(x,x) / R(x,y) (Prop. 4.5)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nodes", [4, 6, 8])
def test_comp_uniform_hard_naive(benchmark, emit, nodes):
    """Prop. 4.5(a): #Compu(R(x,x)) counts 2^n + #IS on naive tables."""
    graph = random_graph(nodes, 0.5, seed=nodes + 2)
    result = benchmark(count_independent_sets_via_completions, graph)
    expected = count_independent_sets(graph)
    emit(
        "Table 1 #Compu hard cell via #IS, n=%d" % nodes,
        recovered=result,
        direct=expected,
    )
    assert result == expected


@pytest.mark.parametrize("side", [2])
def test_comp_uniform_hard_codd(benchmark, emit, side):
    """Prop. 4.5(b): #CompuCd(R(x,y)) counts induced pseudoforests."""
    graph = complete_bipartite_graph(side, side)
    result = benchmark(count_pseudoforests_via_completions, graph)
    expected = count_induced_pseudoforests(graph)
    emit(
        "Table 1 #CompuCd hard cell via #PF, K_{%d,%d}" % (side, side),
        recovered=result,
        direct=expected,
    )
    assert result == expected
