"""E6 — Section 6: beyond #P (SpanP reductions end-to-end).

* Theorem 6.3: ``#k3SAT(F,k) = #Compu(¬q)(D_{F,k})`` — parsimonious;
* Lemma D.1: padding makes ``#Compu(σ) = #Compu(q)``, the accounting step
  of Prop. 6.1;
* Theorem 6.4: ``#HamSubgraphs(G,k) = #Valu(q_ESO)(D_{G,k})`` for the fixed
  query with NP model checking.
"""

from __future__ import annotations

import pytest

from repro.complexity.cnf import CNF3, count_k3sat
from repro.exact.brute import count_completions_brute
from repro.graphs.generators import complete_graph, cycle_graph
from repro.graphs.hamilton import count_hamiltonian_induced_subgraphs
from repro.reductions.hamiltonian import count_ham_subgraphs_via_valuations
from repro.reductions.spanp import (
    SPANP_QUERY,
    build_k3sat_db,
    count_k3sat_via_completions,
    pad_with_fresh_facts,
)


def _formula(num_variables: int, seed: int) -> CNF3:
    import random

    rng = random.Random(seed)
    clauses = []
    for _ in range(num_variables + 1):
        literals = tuple(
            rng.choice([1, -1]) * rng.randint(1, num_variables)
            for _ in range(3)
        )
        clauses.append(literals)
    return CNF3.from_literals(num_variables, clauses)


@pytest.mark.parametrize("n,k", [(3, 2), (4, 2), (4, 3)])
def test_k3sat_reduction(benchmark, emit, n, k):
    formula = _formula(n, seed=n * 10 + k)

    def run():
        return count_k3sat_via_completions(formula, k)

    result = benchmark(run)
    expected = count_k3sat(formula, k)
    emit(
        "Thm 6.3 #k3SAT = #Compu(¬q), n=%d k=%d" % (n, k),
        via_completions=result,
        direct=expected,
    )
    assert result == expected


def test_lemma_d1_padding(benchmark, emit):
    formula = _formula(3, seed=9)
    db = build_k3sat_db(formula, 2)
    padded = pad_with_fresh_facts(db)

    def run():
        return count_completions_brute(padded, SPANP_QUERY)

    via_query = benchmark(run)
    total = count_completions_brute(db, None)
    emit(
        "Lemma D.1 #Compu(σ) = #Compu(q) after padding",
        all_completions=total,
        query_completions_after_padding=via_query,
    )
    assert via_query == total


@pytest.mark.parametrize(
    "name,graph,k",
    [
        ("C4, k=4", cycle_graph(4), 4),
        ("C5, k=4", cycle_graph(5), 4),
        ("K4, k=3", complete_graph(4), 3),
    ],
)
def test_hamiltonian_reduction(benchmark, emit, name, graph, k):
    def run():
        return count_ham_subgraphs_via_valuations(graph, k)

    result = benchmark(run)
    expected = count_hamiltonian_induced_subgraphs(graph, k)
    emit(
        "Thm 6.4 #HamSubgraphs = #Valu(q_ESO), %s" % name,
        via_valuations=result,
        direct=expected,
    )
    assert result == expected
