"""E1 — Figure 1 (Section 2): the worked example and its scaling family.

Regenerates the figure's row "#Val = 4, #Comp = 3" exactly, then times the
two counters on a growing family of the same shape (a binary relation with
one ground fact and two null-carrying facts per scale step), exhibiting the
exponential cost of the definitional (brute-force) semantics.
"""

from __future__ import annotations

import pytest

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import (
    count_completions_brute,
    count_valuations_brute,
    valuation_completion_gap,
)

QUERY = BCQ([Atom("S", ["x", "x"])])


def figure1_db() -> IncompleteDatabase:
    return IncompleteDatabase(
        [
            Fact("S", ["a", "b"]),
            Fact("S", [Null(1), "a"]),
            Fact("S", ["a", Null(2)]),
        ],
        dom={Null(1): ["a", "b", "c"], Null(2): ["a", "b"]},
    )


def scaled_figure1(scale: int) -> IncompleteDatabase:
    """``scale`` disjoint copies of the Figure-1 table (fresh constants)."""
    facts = []
    dom = {}
    for i in range(scale):
        a, b = ("a", i), ("b", i)
        left, right = Null(("l", i)), Null(("r", i))
        facts += [
            Fact("S", [a, b]),
            Fact("S", [left, a]),
            Fact("S", [a, right]),
        ]
        dom[left] = [a, b, ("c", i)]
        dom[right] = [a, b]
    return IncompleteDatabase(facts, dom=dom)


def test_figure1_exact_counts(benchmark, emit):
    db = figure1_db()
    valuations, completions = benchmark(valuation_completion_gap, db, QUERY)
    emit(
        "Figure 1: q = ∃x S(x,x)",
        valuations_satisfying=valuations,
        completions_satisfying=completions,
        paper="4 / 3",
    )
    assert valuations == 4
    assert completions == 3


@pytest.mark.parametrize("scale", [1, 2, 3, 4])
def test_figure1_valuation_scaling(benchmark, emit, scale):
    db = scaled_figure1(scale)
    result = benchmark(count_valuations_brute, db, QUERY)
    # per copy: 6 valuations, 4 satisfying; copies independent:
    # total = 6^n - 2^n (complement product).
    expected = 6**scale - 2**scale
    emit(
        "Figure 1 scaling (valuations), %d copies" % scale,
        count=result,
        expected=expected,
    )
    assert result == expected


@pytest.mark.parametrize("scale", [1, 2, 3])
def test_figure1_completion_scaling(benchmark, emit, scale):
    db = scaled_figure1(scale)
    result = benchmark(count_completions_brute, db, QUERY)
    # per copy 5 completions of which 3 satisfy: total = 5^n - 2^n.
    expected = 5**scale - 2**scale
    emit(
        "Figure 1 scaling (completions), %d copies" % scale,
        count=result,
        expected=expected,
    )
    assert result == expected
