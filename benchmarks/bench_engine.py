"""E-engine — the batch counting engine vs the serial per-instance loop.

The engine's two levers are cross-job memoization (canonical-fingerprint
cache, so repeated and isomorphic instances are solved once) and
shared-nothing multiprocessing fan-out.  This benchmark runs the harness's
mixed workload both ways, asserts the counts agree job for job, and emits
the speedup and cache hit rate as a machine-readable paper row.

``benchmarks/harness.py`` tracks the same workload for the CI perf gate;
this file keeps it visible in the pytest-benchmark suite.
"""

from __future__ import annotations

import json
import time

from repro.engine import BatchEngine, execute_job

from benchmarks.harness import mixed_workload


def test_engine_matches_and_beats_serial_loop(emit):
    jobs = mixed_workload(quick=True)

    started = time.perf_counter()
    serial = [execute_job(job) for job in jobs]
    serial_seconds = time.perf_counter() - started

    engine = BatchEngine()
    started = time.perf_counter()
    batched = engine.run(jobs)
    engine_seconds = time.perf_counter() - started

    assert [result.count for result in serial] == [
        result.count for result in batched
    ]
    assert all(result.ok for result in batched)

    speedup = serial_seconds / max(engine_seconds, 1e-9)
    emit(
        "batch engine vs serial loop, mixed workload",
        json=json.dumps(
            {
                "jobs": len(jobs),
                "unique_solved": engine.cache.misses,
                "serial_seconds": round(serial_seconds, 4),
                "engine_seconds": round(engine_seconds, 4),
                "speedup": round(speedup, 2),
                "cache_hit_rate": round(engine.cache.hit_rate, 4),
                "workers": engine.workers,
            }
        ),
    )
    # The dedup layer alone guarantees a healthy margin: each unique
    # instance appears four times in the workload.
    assert speedup >= 2.0
    assert engine.cache.hit_rate >= 0.5


def test_cache_hits_are_free(emit):
    jobs = mixed_workload(quick=True)
    engine = BatchEngine(workers=0)
    engine.run(jobs)

    started = time.perf_counter()
    rerun = engine.run(jobs)
    warm_seconds = time.perf_counter() - started

    assert all(result.cache_hit for result in rerun)
    emit(
        "warm rerun, mixed workload",
        json=json.dumps(
            {
                "jobs": len(jobs),
                "warm_seconds": round(warm_seconds, 4),
            }
        ),
    )
