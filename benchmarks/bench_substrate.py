"""E7 — Appendix machinery: the structural identities behind the hardness
proofs, measured.

* Prop. A.8: ``#Avoidance(G') = 2^{|E|-|V|} * #Avoidance(G)`` under edge
  subdivision of 3-regular multigraphs;
* App. B.5: the bicircular Tutte k-stretch identity, evaluated exactly;
* Lemma B.4: pseudoforest recognition via matching vs. component census;
* Lemma B.2: completion recognition for Codd tables via Hopcroft-Karp.
"""

from __future__ import annotations

import pytest

from repro.db.valuation import iter_completions
from repro.exact.completion_check import is_completion_of_codd
from repro.graphs.avoidance import (
    count_avoiding_assignments,
    k_stretch,
    subdivide_edges,
)
from repro.graphs.generators import complete_graph, cycle_graph, random_graph
from repro.graphs.graph import Multigraph
from repro.graphs.matroid import BicircularMatroid
from repro.graphs.pseudoforest import (
    has_outdegree_one_orientation,
    is_pseudoforest_edge_set,
    maximal_pseudoforest_size,
)
from repro.workloads.generators import random_incomplete_db


def test_prop_a8_identity(benchmark, emit):
    k4 = Multigraph.from_graph(complete_graph(4))
    assert k4.is_regular(3)
    subdivided = subdivide_edges(k4)

    def run():
        return count_avoiding_assignments(Multigraph.from_graph(subdivided))

    result = benchmark(run)
    base = count_avoiding_assignments(k4)
    factor = 2 ** (k4.num_edges - k4.num_nodes)
    emit(
        "Prop A.8 subdivision identity on K4",
        subdivided=result,
        base=base,
        predicted=factor * base,
    )
    assert result == factor * base


@pytest.mark.parametrize("k", [2, 3])
def test_tutte_stretch_identity(benchmark, emit, k):
    graph = cycle_graph(3)
    base = BicircularMatroid(graph)

    def run():
        return BicircularMatroid(k_stretch(graph, k)).tutte_polynomial(2, 1)

    stretched_value = benchmark(run)
    predicted = (2**k - 1) ** (
        graph.num_edges - maximal_pseudoforest_size(graph)
    ) * base.tutte_polynomial(2**k, 1)
    emit(
        "App B.5 Tutte identity, k=%d" % k,
        stretched=stretched_value,
        predicted=predicted,
    )
    assert stretched_value == predicted


@pytest.mark.parametrize("nodes", [6, 8])
def test_lemma_b4_orientation_vs_census(benchmark, emit, nodes):
    graph = random_graph(nodes, 0.5, seed=nodes)
    edges = graph.edges

    def run():
        return sum(
            1
            for i in range(len(edges))
            if has_outdegree_one_orientation(edges[: i + 1])
        )

    matched = benchmark(run)
    census = sum(
        1
        for i in range(len(edges))
        if is_pseudoforest_edge_set(edges[: i + 1])
    )
    emit(
        "Lemma B.4 orientation criterion, n=%d" % nodes,
        matching_based=matched,
        census_based=census,
    )
    assert matched == census


def test_lemma_b2_certificates(benchmark, emit):
    db = random_incomplete_db(
        {"R": 2, "S": 1},
        seed=11,
        codd=True,
        uniform=False,
        num_nulls=4,
        facts_per_relation=(2, 3),
        domain_size=3,
    )
    completions = list(iter_completions(db))

    def run():
        return sum(
            1 for completion in completions
            if is_completion_of_codd(db, completion)
        )

    accepted = benchmark(run)
    emit(
        "Lemma B.2 certificate checks",
        candidates=len(completions),
        accepted=accepted,
    )
    assert accepted == len(completions)
