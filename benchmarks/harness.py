#!/usr/bin/env python
"""Perf-tracked workload harness: run the fixed matrix, emit BENCH_engine.json.

Runs one fixed workload per tracked hot path —

* ``hom``          indexed homomorphism search (:mod:`repro.eval`);
* ``sharpsat``     the exact model counter end to end — ordering heuristic,
  preprocessing and search (:mod:`repro.compile.sharpsat`);
* ``sharpsat_core`` the trail-based search core head-to-head against the
  retained tuple-based reference counter
  (:mod:`repro.compile.sharpsat_reference`) on search-heavy instances,
  with a fixed precomputed branching order so the measurement isolates
  the in-place propagation / bitset component machinery; reports
  decisions per second and the before/after ratio;
* ``fpras``        Karp-Luby batch sample evaluation (:mod:`repro.approx`);
* ``amortized``    the repeated-workload scenario: one instance asked for
  its uniform count, weighted count and all per-null marginals — the
  d-DNNF circuit compiles once and answers by linear passes
  (:mod:`repro.compile.circuit`), measured against re-running the
  model-counting search per question;
* ``amortized_vectorized`` the sweep scenario: one compiled circuit asked
  for its weighted count under 1000 different weightings — the vectorized
  batched pass (:meth:`repro.compile.backend.ValuationCircuit.weighted_count_many`,
  one numpy column per node) measured against looping the scalar pass per
  weighting; answers are asserted bit-identical;
* ``batch_engine`` the mixed 200-instance batch through
  :mod:`repro.engine`, reported against the serial per-instance loop;
* ``dpdb``         the tree-decomposition DP backend
  (:mod:`repro.compile.dpdb`) head-to-head against the trail core on the
  width-bounded grid/long-cycle hard-cell workloads, answers asserted
  bit-identical and the DP-over-search speedup recorded;
* ``circuit_batch`` a batch of *distinct* circuit-backed jobs
  (``val-weighted``, ``marginals``, ``method='circuit'``): the engine —
  persistent warmed pool, worker-compiled artifacts installed into the
  parent's circuit store — measured against the path it replaced, the
  serial-in-parent compile loop over the retained reference search core
  (what every such job ran through before the artifact engine and the
  trail rewrite).  Answers are asserted bit-identical.  The tracked
  ``speedup`` therefore bundles worker parallelism *and* the core
  rewrite; the detail also reports ``serial_same_core_seconds`` (the
  engine against a same-core serial loop) so the two contributions stay
  separable.  On a single-core runner the same-core comparison hovers
  near 1.0× by construction — parallel workers cannot beat serial without
  a second core — which is exactly why the tracked number is measured
  against the replaced path —

and writes machine-readable results (wall seconds, speedups, cache hit
rate) to ``BENCH_engine.json``.  Wall times are also *normalized* by a
fixed pure-Python calibration loop measured on the same interpreter, so a
committed baseline (``benchmarks/baseline.json``) transfers across
machines of different speeds.

CI runs ``harness.py --quick --check`` and fails when any tracked path is
more than ``--threshold`` (default 1.5×) slower, in normalized units, than
the committed baseline.  ``--update-baseline`` rewrites the baseline from
the current run; ``--inject-slowdown path=factor`` multiplies one path's
measured time, which exists to prove the gate actually trips.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
try:  # pragma: no cover - import side effect
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - running without PYTHONPATH=src
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import random

from repro.approx.fpras import KarpLubyEstimator
from repro.compile.backend import (
    ValuationCircuit,
    count_valuations_lineage,
    valuation_marginals_recount,
)
from repro.compile.dpdb import (
    count_valuations_dpdb,
    dpdb_probe,
    probe_cache_clear,
)
from repro.compile.encode import compile_valuation_cnf
from repro.compile.sharpsat import ModelCounter
from repro.core.query import Atom, BCQ
from repro.db.database import Database
from repro.db.deltas import ResolveNull, RestrictDomain
from repro.db.fact import Fact
from repro.engine import BatchEngine, CountCache, CountJob, execute_job
from repro.eval.homomorphism import count_homomorphisms, satisfies_bcq
from repro.obs import JsonlSink, add_sink, capture, remove_sink
from repro.workloads.generators import (
    random_incomplete_db,
    scaling_codd_instance,
    scaling_grid_val_instance,
    scaling_hard_comp_instance,
    scaling_hard_val_instance,
    scaling_long_cycle_val_instance,
    scaling_uniform_val_instance,
)

#: Paths the CI gate tracks (keys of the emitted ``paths`` object).
TRACKED_PATHS = (
    "hom", "sharpsat", "sharpsat_core", "fpras", "amortized",
    "amortized_vectorized", "incremental", "batch_engine", "circuit_batch",
    "dpdb",
)

DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_engine.json")
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baseline.json"
)


def _timed(function, *args, **kwargs):
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - started


def _best_of(function, repeats=3):
    """Result of the first run plus the fastest wall time of ``repeats``.

    The short tracked paths (well under a second) are measured best-of-N so
    one scheduler hiccup on a shared CI runner cannot read as a regression.
    """
    result, best = _timed(function)
    for _ in range(repeats - 1):
        _, seconds = _timed(function)
        best = min(best, seconds)
    return result, best


def calibrate() -> float:
    """Seconds for a fixed pure-Python spin (best of three).

    The workload is deterministic and allocation-free, so the measurement
    tracks single-core interpreter speed — the quantity all tracked paths
    scale with.
    """
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        accumulator = 0
        for i in range(600_000):
            accumulator = (accumulator * 1103515245 + i) % 2147483648
        best = min(best, time.perf_counter() - started)
    return best


# ---------------------------------------------------------------------------
# tracked paths
# ---------------------------------------------------------------------------


def path_hom(quick: bool) -> dict:
    """Homomorphism search over ground databases (the evaluator hot path)."""
    rng = random.Random(7)
    node_count = 40
    fact_count = 400 if quick else 900
    facts = [
        Fact("R", [rng.randrange(node_count), rng.randrange(node_count)])
        for _ in range(fact_count)
    ]
    facts += [Fact("S", [rng.randrange(node_count)]) for _ in range(fact_count // 3)]
    database = Database(facts)
    path_query = BCQ(
        [Atom("R", ["x", "y"]), Atom("R", ["y", "z"]), Atom("S", ["z"])]
    )
    repetitions = 12 if quick else 30

    def run_checks():
        subtotal = 0
        for _ in range(repetitions):
            subtotal += count_homomorphisms(path_query, database)
            satisfies_bcq(database, path_query)
        return subtotal

    total, seconds = _best_of(run_checks)
    return {
        "seconds": seconds,
        "detail": {
            "facts": len(facts),
            "repetitions": repetitions,
            "homomorphisms": total // repetitions,
        },
    }


def path_sharpsat(quick: bool) -> dict:
    """The exact counter's branch/propagate/decompose loop."""
    size = 26 if quick else 32
    db, query = scaling_hard_val_instance(
        size, chord_probability=0.15, seed=2
    )
    encoding = compile_valuation_cnf(db, query)  # compilation not timed

    def count_once():
        return ModelCounter(encoding.cnf).count()

    # The count is a few milliseconds now; extra repeats keep one noisy
    # scheduler window on a shared runner from reading as a regression.
    models, seconds = _best_of(count_once, repeats=7)
    return {
        "seconds": seconds,
        "detail": {
            "cycle_size": size,
            "variables": encoding.cnf.num_variables,
            "clauses": len(encoding.cnf),
            "models": str(models),
        },
    }


def path_sharpsat_core(quick: bool) -> dict:
    """Trail core vs the retained reference core, same orders, same CNFs.

    The instances are sparse hard-cell encodings whose searches branch
    hundreds of times (propagation-heavy dense instances would measure
    the preprocessor, not the core).  Orders are precomputed and shared,
    so the ratio isolates in-place propagation + bitset components
    against the tuple-rebuild machinery they replaced.  Counts are
    asserted identical — this is the differential pair the randomized
    suites rely on, under a stopwatch.
    """
    specs = (
        [(16, 0.05, 16), (18, 0.05, 7)]
        if quick
        else [(18, 0.05, 7), (20, 0.05, 7), (24, 0.03, 11)]
    )
    from repro.compile.ordering import branching_order

    prepared = []
    for size, chord, seed in specs:
        db, query = scaling_hard_val_instance(
            size, chord_probability=chord, seed=seed
        )
        encoding = compile_valuation_cnf(db, query)  # compilation not timed
        order, _width = branching_order(encoding.cnf)
        prepared.append((encoding.cnf, order))

    def run_trail():
        total = 0
        decisions = 0
        for cnf, order in prepared:
            counter = ModelCounter(cnf, order=order)
            total += counter.count()
            decisions += counter.stats()["decisions"]
        return total, decisions

    def run_reference():
        total = 0
        for cnf, order in prepared:
            total += ModelCounter(cnf, order=order, reference=True).count()
        return total

    # Symmetric best-of-5 on both cores: an asymmetric measurement would
    # let a scheduler stall on the reference side inflate the ratio.
    (total, decisions), seconds = _best_of(run_trail, repeats=5)
    reference_total, reference_seconds = _best_of(run_reference, repeats=5)
    if total != reference_total:
        raise AssertionError(
            "trail core disagreed with the reference counter"
        )
    return {
        "seconds": seconds,
        "detail": {
            "instances": len(prepared),
            "decisions": decisions,
            "decisions_per_second": round(decisions / max(seconds, 1e-9)),
            "reference_seconds": reference_seconds,
            "core_speedup": reference_seconds / max(seconds, 1e-9),
        },
    }


def path_fpras(quick: bool) -> dict:
    """Karp-Luby coverage sampling with a fixed sample batch."""
    db, query = scaling_hard_val_instance(10, seed=3)
    estimator = KarpLubyEstimator(db, query, seed=11)
    samples = 4_000 if quick else 12_000
    report, seconds = _best_of(
        lambda: estimator.estimate_with_samples(samples)
    )
    return {
        "seconds": seconds,
        "detail": {
            "samples": samples,
            "events": report.num_events,
            "estimate": report.estimate,
        },
    }


def path_amortized(quick: bool) -> dict:
    """Repeated workload on one instance: compile once vs search per question.

    The question set is the ISSUE-3 acceptance scenario — the uniform
    count, a weighted count under non-uniform null weights, and the
    marginal ``P[⊥ = c | q]`` for every (null, value) pair.  The baseline
    answers each question the pre-circuit way (a fresh model-counting
    search per question: one complement count, one throwaway compile for
    the weighted count, and the condition-and-recount loop for the
    marginals); the amortized path compiles one d-DNNF circuit and runs
    linear passes.  Answers are asserted identical, exactly.
    """
    size = 14 if quick else 18
    db, query = scaling_hard_val_instance(
        size, chord_probability=0.1, seed=5
    )
    weights = {
        null: {
            value: 1 + (index + position) % 3
            for position, value in enumerate(
                sorted(db.domain_of(null), key=repr)
            )
        }
        for index, null in enumerate(db.nulls)
    }
    questions = 2 + sum(len(db.domain_of(null)) for null in db.nulls)

    def baseline():
        count = count_valuations_lineage(db, query)
        weighted = ValuationCircuit(db, query).weighted_count(weights)
        marginals = valuation_marginals_recount(db, query)
        return count, weighted, marginals

    def amortized():
        compiled = ValuationCircuit(db, query)
        return (
            compiled.count(),
            compiled.weighted_count(weights),
            compiled.marginals(),
        )

    # Both sides measured best-of-N: an asymmetric measurement would
    # let one scheduler hiccup on the baseline inflate the speedup.  The
    # amortized side is single-digit milliseconds, so it gets the most
    # repeats — at that scale every sample is at the scheduler's mercy.
    baseline_result, baseline_seconds = _best_of(baseline)
    amortized_result, seconds = _best_of(amortized, repeats=7)
    if baseline_result != amortized_result:
        raise AssertionError(
            "circuit passes disagreed with the per-question searches"
        )
    return {
        "seconds": seconds,
        "detail": {
            "cycle_size": size,
            "questions": questions,
            "count": str(amortized_result[0]),
            "per_question_seconds": baseline_seconds,
            "speedup": baseline_seconds / max(seconds, 1e-9),
        },
    }


def path_amortized_vectorized(quick: bool) -> dict:
    """The sweep scenario: 1000 weightings of one circuit, batched vs looped.

    Both sides share one compiled circuit (compilation is the ``amortized``
    path's story, not this one's); the question is purely how fast N
    answers come out of it.  The looped baseline runs the scalar weighted
    pass once per weighting — the only option before the batched passes
    existed.  The vectorized side makes a single
    :meth:`~repro.compile.backend.ValuationCircuit.weighted_count_many`
    call, which holds one length-N numpy column per circuit node.  The
    weightings sweep a fixed handful of nulls (a parameter grid; every
    other null keeps default weights), which keeps the batched pass's
    magnitude bound inside int64 — the shape the fast path is built for.
    Answers are asserted bit-identical — the vectorized pass is a drop-in
    for the loop, not an approximation of it.
    """
    size, chord, seed = (32, 0.03, 59) if quick else (36, 0.03, 63)
    db, query = scaling_hard_val_instance(
        size, chord_probability=chord, seed=seed
    )
    compiled = ValuationCircuit(db, query)  # compilation not timed
    rng = random.Random(17)
    swept = db.nulls[:4]
    rows = [
        {
            null: {
                value: rng.randrange(1, 4)
                for value in sorted(db.domain_of(null), key=repr)
            }
            for null in swept
        }
        for _ in range(1000)
    ]

    def looped():
        return [compiled.weighted_count(row) for row in rows]

    def vectorized():
        return compiled.weighted_count_many(rows)

    # The looped side is ~three orders of magnitude heavier per repeat,
    # so it gets fewer; the vectorized side is milliseconds and needs
    # the extra repeats to shake off scheduler noise.
    looped_result, looped_seconds = _best_of(looped, repeats=2)
    vectorized_result, seconds = _best_of(vectorized, repeats=7)
    if looped_result != vectorized_result:
        raise AssertionError(
            "vectorized weighted counts disagreed with the scalar loop"
        )
    return {
        "seconds": seconds,
        "detail": {
            "cycle_size": size,
            "weightings": len(rows),
            "looped_seconds": looped_seconds,
            "speedup": looped_seconds / max(seconds, 1e-9),
        },
    }


def path_incremental(quick: bool) -> dict:
    """Update stream on one instance: condition the parent circuit vs
    recompiling per update.

    The scenario is the ISSUE-9 acceptance case — a compiled instance
    receives a stream of resolution-only updates (nulls resolved to
    constants, null domains restricted), and each updated instance is
    counted.  The baseline compiles a fresh d-DNNF per update, the only
    option before ``condition`` existed; the incremental side reuses the
    parent circuit and runs one conditioning pass per update.  Answers
    are asserted identical, exactly — conditioning is bit-compatible
    with recompilation, so the speedup is free of semantic drift.
    """
    size = 14 if quick else 18
    db, query = scaling_hard_val_instance(
        size, chord_probability=0.1, seed=5
    )
    parent = ValuationCircuit(db, query)  # parent compile not timed
    nulls = sorted(db.nulls, key=repr)
    deltas = []
    for index, null in enumerate(nulls[:6]):
        domain = sorted(db.domain_of(null), key=repr)
        if index % 2 == 0:
            deltas.append(ResolveNull(null, domain[index % len(domain)]))
        else:
            keep = max(1, len(domain) - 1)
            deltas.append(RestrictDomain(null, frozenset(domain[:keep])))

    def recompile_per_update():
        return [
            ValuationCircuit(db.apply(delta), query).count()
            for delta in deltas
        ]

    def condition_parent():
        return [parent.condition(delta).count() for delta in deltas]

    # The incremental side is single-digit milliseconds per update, so it
    # gets the most repeats — at that scale every sample is at the
    # scheduler's mercy.
    baseline_result, baseline_seconds = _best_of(recompile_per_update)
    incremental_result, seconds = _best_of(condition_parent, repeats=7)
    if baseline_result != incremental_result:
        raise AssertionError(
            "conditioned counts disagreed with per-update recompilation"
        )
    return {
        "seconds": seconds,
        "detail": {
            "cycle_size": size,
            "updates": len(deltas),
            "counts": [str(count) for count in incremental_result],
            "recompile_seconds": baseline_seconds,
            "speedup": baseline_seconds / max(seconds, 1e-9),
        },
    }


def path_dpdb(quick: bool) -> dict:
    """Tree-decomposition DP vs the trail core on width-bounded hard cells.

    The instances are the low-treewidth ``#Val`` workloads the dpdb
    backend exists for: a grid-shaped coloring lineage (treewidth =
    ``min(rows, cols)``) and a long-cycle coloring lineage (constant
    width at any length) — *wide but width-bounded*, so the DP's
    ``O(nodes * 2^width)`` tables stay small while the trail search keeps
    paying for the cycles.  Both sides run their full front doors
    (encoding compile included); answers are asserted bit-identical — the
    DP is a drop-in for the search on these cells, not an approximation.
    The dpdb side's width probe is memoized exactly as the planner's is,
    so best-of timing reflects the steady state the engine sees.
    """
    if quick:
        grid = scaling_grid_val_instance(3, 16, num_colors=3)
        cycle = scaling_long_cycle_val_instance(120, 1, num_colors=3)
    else:
        grid = scaling_grid_val_instance(3, 20, num_colors=3)
        cycle = scaling_long_cycle_val_instance(160, 1, num_colors=3)
    instances = [("grid", *grid), ("long-cycle", *cycle)]
    probe_cache_clear()

    def run_dpdb():
        return [
            count_valuations_dpdb(db, query) for _, db, query in instances
        ]

    def run_trail():
        return [
            count_valuations_lineage(db, query) for _, db, query in instances
        ]

    # Symmetric best-of on both sides; the trail side is an order of
    # magnitude heavier per repeat, so it gets fewer.
    dpdb_counts, seconds = _best_of(run_dpdb, repeats=5)
    trail_counts, trail_seconds = _best_of(run_trail, repeats=2)
    if dpdb_counts != trail_counts:
        raise AssertionError("dpdb disagreed with the trail core")
    return {
        "seconds": seconds,
        "detail": {
            "instances": [shape for shape, _, _ in instances],
            "widths": [
                dpdb_probe("val", db, query).width
                for _, db, query in instances
            ],
            "trail_seconds": trail_seconds,
            "speedup": trail_seconds / max(seconds, 1e-9),
        },
    }


def mixed_workload(quick: bool) -> list[CountJob]:
    """The fixed mixed batch: 200 jobs over ~50 unique instances.

    Every instance family of the repo is represented (poly cells, hard
    lineage cells, completions, brute-force stragglers), and each unique
    instance appears four times — the duplication profile of
    classification sweeps, which is what the cache layer exploits.
    """
    unique: list[CountJob] = []
    hard_sizes = range(8, 13) if quick else range(10, 17)
    for size in hard_sizes:
        db, query = scaling_hard_val_instance(size, seed=size)
        unique.append(CountJob("val", db, query, label="hard-val-%d" % size))
    for size in (4, 5, 6, 7, 8):
        db, query = scaling_codd_instance(size, seed=size)
        unique.append(CountJob("val", db, query, label="codd-%d" % size))
    for size in (6, 8, 10, 12, 14):
        db, query = scaling_uniform_val_instance(size, seed=size)
        unique.append(
            CountJob("val", db, query, label="uniform-%d" % size)
        )
    for size in (6, 7, 8, 9, 10):
        db, query = scaling_hard_comp_instance(size, seed=size)
        unique.append(CountJob("comp", db, query, label="comp-%d" % size))
        unique.append(
            CountJob("comp", db, None, label="comp-all-%d" % size)
        )
    for seed in range(15):
        db = random_incomplete_db(
            {"R": 2, "S": 1}, seed=seed, num_nulls=4, domain_size=3
        )
        query = BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])
        unique.append(CountJob("val", db, query, label="random-%d" % seed))
    for seed in range(10):
        db, query = scaling_hard_val_instance(9, seed=100)
        unique.append(
            CountJob(
                "approx-val", db, query, epsilon=0.2, seed=seed,
                label="approx-%d" % seed,
            )
        )

    jobs: list[CountJob] = []
    for repetition in range(4):
        for index, job in enumerate(unique):
            jobs.append(
                CountJob(
                    job.problem, job.db, job.query,
                    method=job.method, budget=job.budget,
                    epsilon=job.epsilon, delta=job.delta, seed=job.seed,
                    label="%s/rep%d" % (job.label, repetition),
                )
            )
    return jobs


def path_batch_engine(quick: bool, workers: int | None) -> dict:
    """The mixed batch: serial per-instance loop vs the engine."""
    jobs = mixed_workload(quick)

    started = time.perf_counter()
    serial_results = [execute_job(job) for job in jobs]
    serial_seconds = time.perf_counter() - started

    engine = BatchEngine(workers=workers)
    started = time.perf_counter()
    engine_results = engine.run(jobs)
    engine_seconds = time.perf_counter() - started

    mismatches = sum(
        1
        for serial, batched in zip(serial_results, engine_results)
        if serial.count != batched.count
    )
    errors = sum(1 for result in engine_results if not result.ok)
    if mismatches or errors:
        raise AssertionError(
            "batch engine disagreed with the serial loop "
            "(%d mismatches, %d errors)" % (mismatches, errors)
        )
    return {
        "seconds": engine_seconds,
        "detail": {
            "jobs": len(jobs),
            "unique_solved": engine.cache.misses,
            "serial_seconds": serial_seconds,
            "speedup": serial_seconds / max(engine_seconds, 1e-9),
            "cache_hit_rate": engine.cache.hit_rate,
            "workers": engine.workers,
        },
    }


def circuit_workload(quick: bool) -> list[CountJob]:
    """Distinct circuit-backed jobs: one compile each, no cross-job reuse.

    Every instance is asked exactly one circuit question, so the workload
    isolates what the engine optimizes — the compiles themselves — with
    no amortization to hide behind.  The instances are sparse and
    search-heavy (hundreds of decisions each): compile cost here *is*
    search cost, which is what the trail core attacks, and each job is
    expensive enough (hundreds of milliseconds on the reference core)
    that per-job dispatch overhead stays noise.
    """
    jobs: list[CountJob] = []
    specs = (
        [
            (24, 0.05, 51), (32, 0.03, 59), (34, 0.04, 61),
            (36, 0.03, 63), (40, 0.03, 67), (42, 0.025, 69),
        ]
        if quick
        else [
            (32, 0.03, 59), (34, 0.04, 61), (36, 0.04, 63),
            (38, 0.03, 65), (38, 0.025, 65), (40, 0.03, 67),
            (42, 0.025, 69), (36, 0.03, 63),
        ]
    )
    for position, (size, chord, seed) in enumerate(specs):
        db, query = scaling_hard_val_instance(
            size, chord_probability=chord, seed=seed
        )
        weights = {
            null: {
                value: 1 + (index + offset) % 3
                for offset, value in enumerate(
                    sorted(db.domain_of(null), key=repr)
                )
            }
            for index, null in enumerate(db.nulls)
        }
        kind = position % 3
        if kind == 0:
            jobs.append(
                CountJob("val", db, query, method="circuit",
                         label="circuit-val-%d" % size)
            )
        elif kind == 1:
            jobs.append(
                CountJob("val-weighted", db, query, weights=weights,
                         label="circuit-weighted-%d" % size)
            )
        else:
            jobs.append(
                CountJob("marginals", db, query,
                         label="circuit-marginals-%d" % size)
            )
    return jobs


def _reference_circuit_answer(job: CountJob):
    """One circuit job the pre-engine way: a fresh in-parent compile over
    the retained reference search core, then the question's pass."""
    from repro.compile.backend import CompletionCircuit, ValuationCircuit
    from repro.engine.jobs import marginals_record

    if job.problem == "comp":
        return CompletionCircuit(job.db, job.query, reference=True).count()
    compiled = ValuationCircuit(job.db, job.query, reference=True)
    if job.problem == "val":
        return compiled.count()
    if job.problem == "val-weighted":
        return compiled.weighted_count(job.weights)
    assert job.problem == "marginals"
    return marginals_record(compiled.marginals(job.weights))


def path_circuit_batch(quick: bool, workers: int | None) -> dict:
    """Distinct circuit jobs: the engine vs the loop it replaced.

    The baseline answers every job the way such jobs ran before the
    artifact engine and the trail rewrite: serially in the parent, one
    fresh circuit compile per job, over the reference search core.  The
    measured path is the production engine — a persistent pool, warmed
    before timing (a batch engine is a long-lived component; process
    startup amortizes across batches, so it does not belong to any one
    batch's bill), worker compiles shipped home as serialized artifacts.
    Answers are asserted identical.  On a machine whose pool sizes to a
    single worker the timed engine runs in-parent; the worker-compile +
    artifact-install path is then still driven (untimed, 2 workers) so
    its bit-identical assertion never goes dark.  ``serial_same_core_seconds``
    additionally records a same-core serial engine run, so the speedup
    decomposes into its parallelism and core-rewrite parts.
    """
    jobs = circuit_workload(quick)
    # One worker per CPU: the engine's own sizing rule.  Forcing a pool
    # wider than the machine (the old fixed 4) is how the pre-PR-5
    # measurement ended up *slower* than serial on one-core runners —
    # four processes time-slicing one core plus artifact codec traffic
    # is pure overhead.  At workers=1 the engine solves in-parent, which
    # is the optimal strategy on that hardware and still measures the
    # same code path the batch front door runs.
    from repro.engine.pool import default_workers

    pool_workers = workers if workers is not None else default_workers()

    # Every side is measured best-of-2 — the jobs are heavyweight, so a
    # single scheduler stall on either side would otherwise swing the
    # tracked ratio by tens of percent.
    reference_answers, serial_seconds = _best_of(
        lambda: [_reference_circuit_answer(job) for job in jobs], repeats=2
    )

    def run_same_core():
        return BatchEngine(workers=0).run(jobs)

    same_core_results, same_core_seconds = _best_of(run_same_core, repeats=2)

    engine = BatchEngine(workers=pool_workers, persistent_pool=True)
    engine.warm()

    def run_engine():
        # A fresh cache per measurement: a repeat must re-solve, not hit.
        engine.cache = CountCache()
        return engine.run(jobs)

    engine_results, engine_seconds = _best_of(run_engine, repeats=2)
    engine.close()

    worker_path_results = engine_results
    worker_circuits_covered = None
    if pool_workers <= 1:
        # The timed engine ran serially (right for this machine), but the
        # worker-compile + artifact-install path must stay covered by the
        # bit-identical assertion everywhere — run it untimed with a
        # 2-worker pool.
        with BatchEngine(workers=2, persistent_pool=True) as worker_engine:
            worker_path_results = worker_engine.run(jobs)
            worker_circuits_covered = (
                worker_engine.cache.stats()["worker_circuits"]
            )

    mismatches = sum(
        1
        for reference, parallel in zip(reference_answers, engine_results)
        if reference != parallel.count
    )
    mismatches += sum(
        1
        for reference, parallel in zip(reference_answers, worker_path_results)
        if reference != parallel.count
    )
    mismatches += sum(
        1
        for serial, parallel in zip(same_core_results, engine_results)
        if serial.count != parallel.count
    )
    errors = sum(1 for result in engine_results if not result.ok)
    if mismatches or errors:
        raise AssertionError(
            "worker-compiled circuit batch disagreed with the in-parent path "
            "(%d mismatches, %d errors)" % (mismatches, errors)
        )
    stats = engine.cache.stats()
    return {
        "seconds": engine_seconds,
        "detail": {
            "jobs": len(jobs),
            "workers": pool_workers,
            "serial_seconds": serial_seconds,
            "speedup": serial_seconds / max(engine_seconds, 1e-9),
            "serial_same_core_seconds": same_core_seconds,
            "same_core_speedup": same_core_seconds / max(engine_seconds, 1e-9),
            "worker_circuits": stats["worker_circuits"],
            # None when the timed run itself fanned out to workers;
            # otherwise how many worker compiles the untimed coverage
            # pass installed and asserted bit-identical.
            "worker_circuits_coverage": worker_circuits_covered,
            "circuit_bytes": stats["circuit_bytes"],
        },
    }


# ---------------------------------------------------------------------------
# gate
# ---------------------------------------------------------------------------


def check_against_baseline(
    paths: dict, baseline: dict, mode: str, threshold: float
) -> tuple[dict, bool]:
    """Per-path verdicts against the committed baseline; True = regression."""
    recorded = baseline.get("modes", {}).get(mode)
    if recorded is None:
        raise SystemExit(
            "baseline has no entry for mode %r; run with --update-baseline"
            % mode
        )
    verdicts = {}
    failed = False
    for name in TRACKED_PATHS:
        reference = recorded.get(name)
        current = paths[name]["normalized"]
        if reference is None:
            verdicts[name] = {"status": "untracked"}
            continue
        ratio = current / reference if reference > 0 else float("inf")
        regressed = ratio > threshold
        failed = failed or regressed
        verdicts[name] = {
            "status": "regressed" if regressed else "ok",
            "baseline_normalized": reference,
            "current_normalized": current,
            "ratio": round(ratio, 3),
        }
    return verdicts, failed


def print_delta_table(verdicts: dict) -> None:
    """One line per tracked path: baseline, current, ratio, verdict."""
    print("delta vs baseline (normalized units):")
    print("  %-14s %10s %10s %7s  %s" % (
        "path", "baseline", "current", "ratio", "status",
    ))
    for name in TRACKED_PATHS:
        verdict = verdicts.get(name, {})
        if "ratio" not in verdict:
            print("  %-14s %10s %10s %7s  %s" % (
                name, "-", "-", "-", verdict.get("status", "untracked"),
            ))
            continue
        print("  %-14s %10.4f %10.4f %7.3f  %s" % (
            name,
            verdict["baseline_normalized"],
            verdict["current_normalized"],
            verdict["ratio"],
            verdict["status"],
        ))


def append_markdown_summary(
    path: str, verdicts: dict, threshold: float, paths: dict | None = None
) -> None:
    """The delta table as GitHub-flavored markdown (CI job summaries),
    with each path's heaviest phases alongside its verdict."""
    paths = paths or {}
    lines = [
        "### Perf gate — normalized vs `benchmarks/baseline.json` "
        "(fail threshold %.1fx)" % threshold,
        "",
        "| path | baseline | current | ratio | status | top phases |",
        "| --- | ---: | ---: | ---: | --- | --- |",
    ]
    for name in TRACKED_PATHS:
        verdict = verdicts.get(name, {})
        phases = format_phase_column(
            paths.get(name, {}).get("phases", {})
        )
        if "ratio" not in verdict:
            lines.append(
                "| `%s` | - | - | - | %s | %s |"
                % (name, verdict.get("status", "untracked"), phases)
            )
            continue
        status = verdict["status"]
        lines.append(
            "| `%s` | %.4f | %.4f | %.3f | %s | %s |"
            % (
                name,
                verdict["baseline_normalized"],
                verdict["current_normalized"],
                verdict["ratio"],
                ":red_circle: regressed" if status == "regressed" else status,
                phases,
            )
        )
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n\n")


def phase_breakdown(captured: capture, limit: int = 8) -> dict[str, float]:
    """A path's phase profile: total inclusive seconds per span name, the
    ``limit`` heaviest first.  Inclusive — nested phases overlap their
    parents, so the column reads as "time attributed to", not a sum."""
    totals = sorted(
        captured.phase_totals().items(), key=lambda item: -item[1]
    )
    return {name: round(seconds, 4) for name, seconds in totals[:limit]}


def format_phase_column(phases: dict[str, float], top: int = 2) -> str:
    """The markdown cell: the heaviest ``top`` phases of one path."""
    if not phases:
        return "-"
    return "; ".join(
        "`%s` %.2fs" % (name, seconds)
        for name, seconds in list(phases.items())[:top]
    )


def parse_injections(specs: list[str]) -> dict[str, float]:
    injections: dict[str, float] = {}
    for spec in specs:
        name, _, factor = spec.partition("=")
        if name not in TRACKED_PATHS or not factor:
            raise SystemExit(
                "--inject-slowdown expects path=factor with path in %s"
                % (TRACKED_PATHS,)
            )
        injections[name] = float(factor)
    return injections


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="the smaller CI workload matrix",
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on any tracked path regressing vs the baseline",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="regression factor the gate tolerates (default 1.5)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="engine worker processes (default: one per CPU)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from this run's normalized times",
    )
    parser.add_argument(
        "--inject-slowdown", action="append", default=[],
        metavar="PATH=FACTOR",
        help="multiply a path's measured time (gate self-test only)",
    )
    parser.add_argument(
        "--markdown-summary", default=None, metavar="PATH",
        help="append the gate delta table to PATH as markdown "
             "(point at $GITHUB_STEP_SUMMARY in CI; needs --check)",
    )
    parser.add_argument(
        "--metrics-jsonl", default=None, metavar="PATH",
        help="stream every phase span and event of the run to PATH, one "
             "JSON record per line (uploaded as a CI artifact)",
    )
    args = parser.parse_args(argv)
    injections = parse_injections(args.inject_slowdown)

    calibration = calibrate()
    mode = "quick" if args.quick else "full"
    print("calibration: %.4fs (mode=%s)" % (calibration, mode))

    sink = None
    if args.metrics_jsonl:
        sink = JsonlSink(args.metrics_jsonl)
        add_sink(sink)

    paths: dict[str, dict] = {}
    runners = {
        "hom": lambda: path_hom(args.quick),
        "sharpsat": lambda: path_sharpsat(args.quick),
        "sharpsat_core": lambda: path_sharpsat_core(args.quick),
        "fpras": lambda: path_fpras(args.quick),
        "amortized": lambda: path_amortized(args.quick),
        "amortized_vectorized": lambda: path_amortized_vectorized(args.quick),
        "incremental": lambda: path_incremental(args.quick),
        "batch_engine": lambda: path_batch_engine(args.quick, args.workers),
        "circuit_batch": lambda: path_circuit_batch(args.quick, args.workers),
        "dpdb": lambda: path_dpdb(args.quick),
    }
    try:
        for name in TRACKED_PATHS:
            with capture() as captured:
                measurement = runners[name]()
            measurement["seconds"] *= injections.get(name, 1.0)
            measurement["normalized"] = round(
                measurement["seconds"] / calibration, 4
            )
            measurement["seconds"] = round(measurement["seconds"], 4)
            measurement["phases"] = phase_breakdown(captured)
            paths[name] = measurement
            print(
                "path %-12s %8.3fs  (normalized %.2f)"
                % (name, measurement["seconds"], measurement["normalized"])
            )
    finally:
        if sink is not None:
            remove_sink(sink)
            sink.close()
            print(
                "metrics: %d span/event records -> %s"
                % (sink.records, args.metrics_jsonl)
            )

    core_detail = paths["sharpsat_core"]["detail"]
    print(
        "sharpsat core: %d instances, %d decisions (%d/s), "
        "%.2fx over the reference counter"
        % (
            core_detail["instances"],
            core_detail["decisions"],
            core_detail["decisions_per_second"],
            core_detail["core_speedup"],
        )
    )
    amortized_detail = paths["amortized"]["detail"]
    print(
        "amortized: %d questions, compile-once %.2fx faster than "
        "search-per-question"
        % (amortized_detail["questions"], amortized_detail["speedup"])
    )
    vectorized_detail = paths["amortized_vectorized"]["detail"]
    print(
        "amortized vectorized: %d weightings, batched pass %.2fx faster "
        "than the scalar loop"
        % (
            vectorized_detail["weightings"],
            vectorized_detail["speedup"],
        )
    )
    incremental_detail = paths["incremental"]["detail"]
    print(
        "incremental: %d updates, conditioning %.2fx faster than "
        "recompiling per update"
        % (incremental_detail["updates"], incremental_detail["speedup"])
    )
    batch_detail = paths["batch_engine"]["detail"]
    print(
        "batch: %d jobs, %d unique solved, speedup %.2fx, "
        "cache hit rate %.1f%%"
        % (
            batch_detail["jobs"],
            batch_detail["unique_solved"],
            batch_detail["speedup"],
            100.0 * batch_detail["cache_hit_rate"],
        )
    )
    circuit_detail = paths["circuit_batch"]["detail"]
    print(
        "circuit batch: %d distinct jobs on %d workers, %d circuits "
        "compiled in workers, %.2fx over serial-in-parent"
        % (
            circuit_detail["jobs"],
            circuit_detail["workers"],
            circuit_detail["worker_circuits"],
            circuit_detail["speedup"],
        )
    )
    dpdb_detail = paths["dpdb"]["detail"]
    print(
        "dpdb: widths %s on %s, DP %.2fx faster than the trail core"
        % (
            dpdb_detail["widths"],
            "/".join(dpdb_detail["instances"]),
            dpdb_detail["speedup"],
        )
    )

    report = {
        "meta": {
            "mode": mode,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "calibration_seconds": round(calibration, 5),
            "injected_slowdowns": injections,
        },
        "paths": paths,
    }

    exit_code = 0
    if args.check:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        verdicts, failed = check_against_baseline(
            paths, baseline, mode, args.threshold
        )
        report["gate"] = {
            "baseline": os.path.relpath(args.baseline, REPO_ROOT),
            "threshold": args.threshold,
            "verdicts": verdicts,
        }
        print_delta_table(verdicts)
        if args.markdown_summary:
            append_markdown_summary(
                args.markdown_summary, verdicts, args.threshold, paths
            )
        if failed:
            print(
                "PERF GATE FAILED: a tracked path regressed more than "
                "%.1fx vs %s" % (args.threshold, args.baseline)
            )
            exit_code = 1

    if args.update_baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            baseline = {"schema": 1, "modes": {}}
        baseline.setdefault("modes", {})[mode] = {
            name: paths[name]["normalized"] for name in TRACKED_PATHS
        }
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("baseline updated: %s" % args.baseline)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
