#!/usr/bin/env python
"""Perf-tracked workload harness: run the fixed matrix, emit BENCH_engine.json.

Runs one fixed workload per tracked hot path —

* ``hom``          indexed homomorphism search (:mod:`repro.eval`);
* ``sharpsat``     the exact model counter's decision loop
  (:mod:`repro.compile.sharpsat`);
* ``fpras``        Karp-Luby batch sample evaluation (:mod:`repro.approx`);
* ``amortized``    the repeated-workload scenario: one instance asked for
  its uniform count, weighted count and all per-null marginals — the
  d-DNNF circuit compiles once and answers by linear passes
  (:mod:`repro.compile.circuit`), measured against re-running the
  model-counting search per question;
* ``batch_engine`` the mixed 200-instance batch through
  :mod:`repro.engine`, reported against the serial per-instance loop;
* ``circuit_batch`` a batch of *distinct* circuit-backed jobs
  (``val-weighted``, ``marginals``, ``method='circuit'``): the engine
  compiles each instance's d-DNNF in a worker process and installs the
  serialized artifact into the parent's circuit store, measured against
  the serial-in-parent compile loop (the pre-artifact path).  Answers are
  asserted bit-identical; the speedup approaches the worker count on
  multi-core machines —

and writes machine-readable results (wall seconds, speedups, cache hit
rate) to ``BENCH_engine.json``.  Wall times are also *normalized* by a
fixed pure-Python calibration loop measured on the same interpreter, so a
committed baseline (``benchmarks/baseline.json``) transfers across
machines of different speeds.

CI runs ``harness.py --quick --check`` and fails when any tracked path is
more than ``--threshold`` (default 1.5×) slower, in normalized units, than
the committed baseline.  ``--update-baseline`` rewrites the baseline from
the current run; ``--inject-slowdown path=factor`` multiplies one path's
measured time, which exists to prove the gate actually trips.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
try:  # pragma: no cover - import side effect
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - running without PYTHONPATH=src
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import random

from repro.approx.fpras import KarpLubyEstimator
from repro.compile.backend import (
    ValuationCircuit,
    count_valuations_lineage,
    valuation_marginals_recount,
)
from repro.compile.encode import compile_valuation_cnf
from repro.compile.sharpsat import ModelCounter
from repro.core.query import Atom, BCQ
from repro.db.database import Database
from repro.db.fact import Fact
from repro.engine import BatchEngine, CountJob, execute_job
from repro.eval.homomorphism import count_homomorphisms, satisfies_bcq
from repro.workloads.generators import (
    random_incomplete_db,
    scaling_codd_instance,
    scaling_hard_comp_instance,
    scaling_hard_val_instance,
    scaling_uniform_val_instance,
)

#: Paths the CI gate tracks (keys of the emitted ``paths`` object).
TRACKED_PATHS = (
    "hom", "sharpsat", "fpras", "amortized", "batch_engine", "circuit_batch",
)

DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_engine.json")
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baseline.json"
)


def _timed(function, *args, **kwargs):
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - started


def _best_of(function, repeats=3):
    """Result of the first run plus the fastest wall time of ``repeats``.

    The short tracked paths (well under a second) are measured best-of-N so
    one scheduler hiccup on a shared CI runner cannot read as a regression.
    """
    result, best = _timed(function)
    for _ in range(repeats - 1):
        _, seconds = _timed(function)
        best = min(best, seconds)
    return result, best


def calibrate() -> float:
    """Seconds for a fixed pure-Python spin (best of three).

    The workload is deterministic and allocation-free, so the measurement
    tracks single-core interpreter speed — the quantity all tracked paths
    scale with.
    """
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        accumulator = 0
        for i in range(600_000):
            accumulator = (accumulator * 1103515245 + i) % 2147483648
        best = min(best, time.perf_counter() - started)
    return best


# ---------------------------------------------------------------------------
# tracked paths
# ---------------------------------------------------------------------------


def path_hom(quick: bool) -> dict:
    """Homomorphism search over ground databases (the evaluator hot path)."""
    rng = random.Random(7)
    node_count = 40
    fact_count = 400 if quick else 900
    facts = [
        Fact("R", [rng.randrange(node_count), rng.randrange(node_count)])
        for _ in range(fact_count)
    ]
    facts += [Fact("S", [rng.randrange(node_count)]) for _ in range(fact_count // 3)]
    database = Database(facts)
    path_query = BCQ(
        [Atom("R", ["x", "y"]), Atom("R", ["y", "z"]), Atom("S", ["z"])]
    )
    repetitions = 12 if quick else 30

    def run_checks():
        subtotal = 0
        for _ in range(repetitions):
            subtotal += count_homomorphisms(path_query, database)
            satisfies_bcq(database, path_query)
        return subtotal

    total, seconds = _best_of(run_checks)
    return {
        "seconds": seconds,
        "detail": {
            "facts": len(facts),
            "repetitions": repetitions,
            "homomorphisms": total // repetitions,
        },
    }


def path_sharpsat(quick: bool) -> dict:
    """The exact counter's branch/propagate/decompose loop."""
    size = 26 if quick else 32
    db, query = scaling_hard_val_instance(
        size, chord_probability=0.15, seed=2
    )
    encoding = compile_valuation_cnf(db, query)  # compilation not timed

    def count_once():
        return ModelCounter(encoding.cnf).count()

    models, seconds = _best_of(count_once)
    return {
        "seconds": seconds,
        "detail": {
            "cycle_size": size,
            "variables": encoding.cnf.num_variables,
            "clauses": len(encoding.cnf),
            "models": str(models),
        },
    }


def path_fpras(quick: bool) -> dict:
    """Karp-Luby coverage sampling with a fixed sample batch."""
    db, query = scaling_hard_val_instance(10, seed=3)
    estimator = KarpLubyEstimator(db, query, seed=11)
    samples = 4_000 if quick else 12_000
    report, seconds = _best_of(
        lambda: estimator.estimate_with_samples(samples)
    )
    return {
        "seconds": seconds,
        "detail": {
            "samples": samples,
            "events": report.num_events,
            "estimate": report.estimate,
        },
    }


def path_amortized(quick: bool) -> dict:
    """Repeated workload on one instance: compile once vs search per question.

    The question set is the ISSUE-3 acceptance scenario — the uniform
    count, a weighted count under non-uniform null weights, and the
    marginal ``P[⊥ = c | q]`` for every (null, value) pair.  The baseline
    answers each question the pre-circuit way (a fresh model-counting
    search per question: one complement count, one throwaway compile for
    the weighted count, and the condition-and-recount loop for the
    marginals); the amortized path compiles one d-DNNF circuit and runs
    linear passes.  Answers are asserted identical, exactly.
    """
    size = 14 if quick else 18
    db, query = scaling_hard_val_instance(
        size, chord_probability=0.1, seed=5
    )
    weights = {
        null: {
            value: 1 + (index + position) % 3
            for position, value in enumerate(
                sorted(db.domain_of(null), key=repr)
            )
        }
        for index, null in enumerate(db.nulls)
    }
    questions = 2 + sum(len(db.domain_of(null)) for null in db.nulls)

    def baseline():
        count = count_valuations_lineage(db, query)
        weighted = ValuationCircuit(db, query).weighted_count(weights)
        marginals = valuation_marginals_recount(db, query)
        return count, weighted, marginals

    def amortized():
        compiled = ValuationCircuit(db, query)
        return (
            compiled.count(),
            compiled.weighted_count(weights),
            compiled.marginals(),
        )

    # Both sides measured best-of-N: an asymmetric measurement would
    # let one scheduler hiccup on the baseline inflate the speedup.
    baseline_result, baseline_seconds = _best_of(baseline)
    amortized_result, seconds = _best_of(amortized)
    if baseline_result != amortized_result:
        raise AssertionError(
            "circuit passes disagreed with the per-question searches"
        )
    return {
        "seconds": seconds,
        "detail": {
            "cycle_size": size,
            "questions": questions,
            "count": str(amortized_result[0]),
            "per_question_seconds": baseline_seconds,
            "speedup": baseline_seconds / max(seconds, 1e-9),
        },
    }


def mixed_workload(quick: bool) -> list[CountJob]:
    """The fixed mixed batch: 200 jobs over ~50 unique instances.

    Every instance family of the repo is represented (poly cells, hard
    lineage cells, completions, brute-force stragglers), and each unique
    instance appears four times — the duplication profile of
    classification sweeps, which is what the cache layer exploits.
    """
    unique: list[CountJob] = []
    hard_sizes = range(8, 13) if quick else range(10, 17)
    for size in hard_sizes:
        db, query = scaling_hard_val_instance(size, seed=size)
        unique.append(CountJob("val", db, query, label="hard-val-%d" % size))
    for size in (4, 5, 6, 7, 8):
        db, query = scaling_codd_instance(size, seed=size)
        unique.append(CountJob("val", db, query, label="codd-%d" % size))
    for size in (6, 8, 10, 12, 14):
        db, query = scaling_uniform_val_instance(size, seed=size)
        unique.append(
            CountJob("val", db, query, label="uniform-%d" % size)
        )
    for size in (6, 7, 8, 9, 10):
        db, query = scaling_hard_comp_instance(size, seed=size)
        unique.append(CountJob("comp", db, query, label="comp-%d" % size))
        unique.append(
            CountJob("comp", db, None, label="comp-all-%d" % size)
        )
    for seed in range(15):
        db = random_incomplete_db(
            {"R": 2, "S": 1}, seed=seed, num_nulls=4, domain_size=3
        )
        query = BCQ([Atom("R", ["x", "y"]), Atom("S", ["y"])])
        unique.append(CountJob("val", db, query, label="random-%d" % seed))
    for seed in range(10):
        db, query = scaling_hard_val_instance(9, seed=100)
        unique.append(
            CountJob(
                "approx-val", db, query, epsilon=0.2, seed=seed,
                label="approx-%d" % seed,
            )
        )

    jobs: list[CountJob] = []
    for repetition in range(4):
        for index, job in enumerate(unique):
            jobs.append(
                CountJob(
                    job.problem, job.db, job.query,
                    method=job.method, budget=job.budget,
                    epsilon=job.epsilon, delta=job.delta, seed=job.seed,
                    label="%s/rep%d" % (job.label, repetition),
                )
            )
    return jobs


def path_batch_engine(quick: bool, workers: int | None) -> dict:
    """The mixed batch: serial per-instance loop vs the engine."""
    jobs = mixed_workload(quick)

    started = time.perf_counter()
    serial_results = [execute_job(job) for job in jobs]
    serial_seconds = time.perf_counter() - started

    engine = BatchEngine(workers=workers)
    started = time.perf_counter()
    engine_results = engine.run(jobs)
    engine_seconds = time.perf_counter() - started

    mismatches = sum(
        1
        for serial, batched in zip(serial_results, engine_results)
        if serial.count != batched.count
    )
    errors = sum(1 for result in engine_results if not result.ok)
    if mismatches or errors:
        raise AssertionError(
            "batch engine disagreed with the serial loop "
            "(%d mismatches, %d errors)" % (mismatches, errors)
        )
    return {
        "seconds": engine_seconds,
        "detail": {
            "jobs": len(jobs),
            "unique_solved": engine.cache.misses,
            "serial_seconds": serial_seconds,
            "speedup": serial_seconds / max(engine_seconds, 1e-9),
            "cache_hit_rate": engine.cache.hit_rate,
            "workers": engine.workers,
        },
    }


def circuit_workload(quick: bool) -> list[CountJob]:
    """Distinct circuit-backed jobs: one compile each, no cross-job reuse.

    Every instance is asked exactly one circuit question, so the workload
    isolates what the worker-compile path parallelizes — the compiles
    themselves — with no amortization to hide behind.
    """
    jobs: list[CountJob] = []
    # Dense enough that each compile costs ~100ms+: the pool's process
    # startup must be noise next to the work it parallelizes.
    sizes = range(24, 30) if quick else range(26, 34)
    for position, size in enumerate(sizes):
        db, query = scaling_hard_val_instance(
            size, chord_probability=0.35, seed=40 + size
        )
        weights = {
            null: {
                value: 1 + (index + offset) % 3
                for offset, value in enumerate(
                    sorted(db.domain_of(null), key=repr)
                )
            }
            for index, null in enumerate(db.nulls)
        }
        kind = position % 3
        if kind == 0:
            jobs.append(
                CountJob("val", db, query, method="circuit",
                         label="circuit-val-%d" % size)
            )
        elif kind == 1:
            jobs.append(
                CountJob("val-weighted", db, query, weights=weights,
                         label="circuit-weighted-%d" % size)
            )
        else:
            jobs.append(
                CountJob("marginals", db, query,
                         label="circuit-marginals-%d" % size)
            )
    return jobs


def path_circuit_batch(quick: bool, workers: int | None) -> dict:
    """Distinct circuit jobs: worker-compiled artifacts vs serial-in-parent.

    The baseline is the PR 3 behavior — every circuit job solved in the
    parent process so it can share the circuit store.  The measured path
    fans the unique compiles out to workers, ships the serialized
    circuits home and installs them, so the parent still owns one store
    with the same eviction semantics.  Answers are asserted identical.
    """
    jobs = circuit_workload(quick)
    pool_workers = workers if workers is not None else 4

    serial_engine = BatchEngine(workers=0)
    started = time.perf_counter()
    serial_results = serial_engine.run(jobs)
    serial_seconds = time.perf_counter() - started

    engine = BatchEngine(workers=pool_workers)
    started = time.perf_counter()
    engine_results = engine.run(jobs)
    engine_seconds = time.perf_counter() - started

    mismatches = sum(
        1
        for serial, parallel in zip(serial_results, engine_results)
        if serial.count != parallel.count
    )
    errors = sum(1 for result in engine_results if not result.ok)
    if mismatches or errors:
        raise AssertionError(
            "worker-compiled circuit batch disagreed with the in-parent path "
            "(%d mismatches, %d errors)" % (mismatches, errors)
        )
    stats = engine.cache.stats()
    return {
        "seconds": engine_seconds,
        "detail": {
            "jobs": len(jobs),
            "workers": pool_workers,
            "serial_seconds": serial_seconds,
            "speedup": serial_seconds / max(engine_seconds, 1e-9),
            "worker_circuits": stats["worker_circuits"],
            "circuit_bytes": stats["circuit_bytes"],
        },
    }


# ---------------------------------------------------------------------------
# gate
# ---------------------------------------------------------------------------


def check_against_baseline(
    paths: dict, baseline: dict, mode: str, threshold: float
) -> tuple[dict, bool]:
    """Per-path verdicts against the committed baseline; True = regression."""
    recorded = baseline.get("modes", {}).get(mode)
    if recorded is None:
        raise SystemExit(
            "baseline has no entry for mode %r; run with --update-baseline"
            % mode
        )
    verdicts = {}
    failed = False
    for name in TRACKED_PATHS:
        reference = recorded.get(name)
        current = paths[name]["normalized"]
        if reference is None:
            verdicts[name] = {"status": "untracked"}
            continue
        ratio = current / reference if reference > 0 else float("inf")
        regressed = ratio > threshold
        failed = failed or regressed
        verdicts[name] = {
            "status": "regressed" if regressed else "ok",
            "baseline_normalized": reference,
            "current_normalized": current,
            "ratio": round(ratio, 3),
        }
    return verdicts, failed


def parse_injections(specs: list[str]) -> dict[str, float]:
    injections: dict[str, float] = {}
    for spec in specs:
        name, _, factor = spec.partition("=")
        if name not in TRACKED_PATHS or not factor:
            raise SystemExit(
                "--inject-slowdown expects path=factor with path in %s"
                % (TRACKED_PATHS,)
            )
        injections[name] = float(factor)
    return injections


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="the smaller CI workload matrix",
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on any tracked path regressing vs the baseline",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="regression factor the gate tolerates (default 1.5)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="engine worker processes (default: one per CPU)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from this run's normalized times",
    )
    parser.add_argument(
        "--inject-slowdown", action="append", default=[],
        metavar="PATH=FACTOR",
        help="multiply a path's measured time (gate self-test only)",
    )
    args = parser.parse_args(argv)
    injections = parse_injections(args.inject_slowdown)

    calibration = calibrate()
    mode = "quick" if args.quick else "full"
    print("calibration: %.4fs (mode=%s)" % (calibration, mode))

    paths: dict[str, dict] = {}
    runners = {
        "hom": lambda: path_hom(args.quick),
        "sharpsat": lambda: path_sharpsat(args.quick),
        "fpras": lambda: path_fpras(args.quick),
        "amortized": lambda: path_amortized(args.quick),
        "batch_engine": lambda: path_batch_engine(args.quick, args.workers),
        "circuit_batch": lambda: path_circuit_batch(args.quick, args.workers),
    }
    for name in TRACKED_PATHS:
        measurement = runners[name]()
        measurement["seconds"] *= injections.get(name, 1.0)
        measurement["normalized"] = round(
            measurement["seconds"] / calibration, 4
        )
        measurement["seconds"] = round(measurement["seconds"], 4)
        paths[name] = measurement
        print(
            "path %-12s %8.3fs  (normalized %.2f)"
            % (name, measurement["seconds"], measurement["normalized"])
        )

    amortized_detail = paths["amortized"]["detail"]
    print(
        "amortized: %d questions, compile-once %.2fx faster than "
        "search-per-question"
        % (amortized_detail["questions"], amortized_detail["speedup"])
    )
    batch_detail = paths["batch_engine"]["detail"]
    print(
        "batch: %d jobs, %d unique solved, speedup %.2fx, "
        "cache hit rate %.1f%%"
        % (
            batch_detail["jobs"],
            batch_detail["unique_solved"],
            batch_detail["speedup"],
            100.0 * batch_detail["cache_hit_rate"],
        )
    )
    circuit_detail = paths["circuit_batch"]["detail"]
    print(
        "circuit batch: %d distinct jobs on %d workers, %d circuits "
        "compiled in workers, %.2fx over serial-in-parent"
        % (
            circuit_detail["jobs"],
            circuit_detail["workers"],
            circuit_detail["worker_circuits"],
            circuit_detail["speedup"],
        )
    )

    report = {
        "meta": {
            "mode": mode,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "calibration_seconds": round(calibration, 5),
            "injected_slowdowns": injections,
        },
        "paths": paths,
    }

    exit_code = 0
    if args.check:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        verdicts, failed = check_against_baseline(
            paths, baseline, mode, args.threshold
        )
        report["gate"] = {
            "baseline": os.path.relpath(args.baseline, REPO_ROOT),
            "threshold": args.threshold,
            "verdicts": verdicts,
        }
        for name, verdict in verdicts.items():
            print("gate %-12s %s" % (name, verdict["status"]))
        if failed:
            print(
                "PERF GATE FAILED: a tracked path regressed more than "
                "%.1fx vs %s" % (args.threshold, args.baseline)
            )
            exit_code = 1

    if args.update_baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            baseline = {"schema": 1, "modes": {}}
        baseline.setdefault("modes", {})[mode] = {
            name: paths[name]["normalized"] for name in TRACKED_PATHS
        }
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("baseline updated: %s" % args.baseline)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
