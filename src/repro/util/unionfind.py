"""Union-find with optional per-class payload merging.

Used by the FPRAS event construction (Section 5.1 reproduction): unifying an
embedding of query atoms into facts groups nulls into equivalence classes,
each carrying the intersection of the involved null domains and at most one
forced constant.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterable, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind(Generic[T]):
    """Disjoint-set forest over hashable items with path compression.

    Items are registered lazily on first use.  ``union`` returns the new root
    so callers can maintain side tables keyed by representative.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._rank: dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Register ``item`` as a singleton class if it is new."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def find(self, item: T) -> T:
        """Return the representative of ``item``'s class (registers it)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: T, right: T) -> T:
        """Merge the classes of ``left`` and ``right``; return the new root."""
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root == right_root:
            return left_root
        if self._rank[left_root] < self._rank[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        if self._rank[left_root] == self._rank[right_root]:
            self._rank[left_root] += 1
        return left_root

    def same(self, left: T, right: T) -> bool:
        """True when both items are currently in the same class."""
        return self.find(left) == self.find(right)

    def classes(self) -> dict[T, list[T]]:
        """Map each representative to the sorted-by-insertion members list."""
        groups: dict[T, list[T]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return groups

    def items(self) -> list[T]:
        """All registered items."""
        return list(self._parent)


def merge_tables(
    union_find: UnionFind[T],
    table: dict[T, object],
    combine: Callable[[object, object], object],
) -> dict[T, object]:
    """Re-key a per-item payload ``table`` by class representative.

    Payloads of items falling in the same class are folded with ``combine``.
    """
    merged: dict[T, object] = {}
    for item, payload in table.items():
        root = union_find.find(item)
        if root in merged:
            merged[root] = combine(merged[root], payload)
        else:
            merged[root] = payload
    return merged
