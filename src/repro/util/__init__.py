"""Shared numeric and data-structure utilities.

Everything in this package is exact (integer / rational) arithmetic: the
counting problems reproduced from the paper demand exact results, so no
floating point is used outside of the approximation subpackage.
"""

from repro.util.combinatorics import (
    binomial,
    bounded_compositions,
    compositions,
    falling_factorial,
    multinomial,
    stirling2,
    surjections,
)
from repro.util.ilp import IntegerFeasibilityProblem, is_feasible
from repro.util.linear import invert_rational_matrix, solve_rational_system
from repro.util.unionfind import UnionFind

__all__ = [
    "binomial",
    "bounded_compositions",
    "compositions",
    "falling_factorial",
    "multinomial",
    "stirling2",
    "surjections",
    "IntegerFeasibilityProblem",
    "is_feasible",
    "invert_rational_matrix",
    "solve_rational_system",
    "UnionFind",
]
