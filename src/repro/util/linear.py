"""Exact rational linear algebra.

The interpolation reductions of the paper (Prop. 3.11 and the Tutte-polynomial
machinery of App. B.5) recover counts by inverting small linear systems whose
entries are surjection numbers or powers of two.  Floating point would destroy
the exactness of the recovered counts, so systems are solved over
``fractions.Fraction``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence


class SingularMatrixError(ValueError):
    """Raised when a linear system has no unique rational solution."""


def _to_fraction_matrix(matrix: Sequence[Sequence[int | Fraction]]) -> list[list[Fraction]]:
    rows = [[Fraction(entry) for entry in row] for row in matrix]
    if not rows:
        raise ValueError("empty matrix")
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise ValueError("ragged matrix")
    return rows


def solve_rational_system(
    matrix: Sequence[Sequence[int | Fraction]],
    rhs: Sequence[int | Fraction],
) -> list[Fraction]:
    """Solve ``matrix @ x = rhs`` exactly via fraction-free-ish Gaussian
    elimination with partial (largest-magnitude) pivoting.

    Raises :class:`SingularMatrixError` if the matrix is singular.
    """
    rows = _to_fraction_matrix(matrix)
    n = len(rows)
    if len(rows[0]) != n:
        raise ValueError("solve_rational_system requires a square matrix")
    if len(rhs) != n:
        raise ValueError("rhs length does not match matrix size")
    augmented = [row + [Fraction(value)] for row, value in zip(rows, rhs)]

    for column in range(n):
        pivot_row = max(
            range(column, n), key=lambda r: abs(augmented[r][column])
        )
        if augmented[pivot_row][column] == 0:
            raise SingularMatrixError("matrix is singular")
        if pivot_row != column:
            augmented[column], augmented[pivot_row] = (
                augmented[pivot_row],
                augmented[column],
            )
        pivot = augmented[column][column]
        for target in range(n):
            if target == column:
                continue
            factor = augmented[target][column] / pivot
            if factor == 0:
                continue
            target_row = augmented[target]
            source_row = augmented[column]
            for position in range(column, n + 1):
                target_row[position] -= factor * source_row[position]

    return [augmented[i][n] / augmented[i][i] for i in range(n)]


def invert_rational_matrix(
    matrix: Sequence[Sequence[int | Fraction]],
) -> list[list[Fraction]]:
    """Exact inverse of a square rational matrix.

    Implemented column-by-column via :func:`solve_rational_system`; adequate
    for the small ``(n+1)^2``-sized systems built by Prop. 3.11.
    """
    rows = _to_fraction_matrix(matrix)
    n = len(rows)
    if len(rows[0]) != n:
        raise ValueError("invert_rational_matrix requires a square matrix")
    columns: list[list[Fraction]] = []
    for j in range(n):
        unit = [Fraction(1) if i == j else Fraction(0) for i in range(n)]
        columns.append(solve_rational_system(rows, unit))
    return [[columns[j][i] for j in range(n)] for i in range(n)]


def kronecker_product(
    left: Sequence[Sequence[int | Fraction]],
    right: Sequence[Sequence[int | Fraction]],
) -> list[list[Fraction]]:
    """Kronecker product of two rational matrices.

    Prop. 3.11 observes that its coefficient matrix is ``A' (x) A'`` for the
    triangular surjection matrix ``A'``; we expose the product so tests can
    verify that structure directly.
    """
    left_rows = _to_fraction_matrix(left)
    right_rows = _to_fraction_matrix(right)
    result: list[list[Fraction]] = []
    for left_row in left_rows:
        for right_row in right_rows:
            row: list[Fraction] = []
            for left_entry in left_row:
                row.extend(left_entry * right_entry for right_entry in right_row)
            result.append(row)
    return result
