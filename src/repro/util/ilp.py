"""Small-scale integer feasibility solving.

The tractable algorithm for counting completions in the uniform setting
(Theorem 4.6 / Appendix B.6) decides, for each candidate "shape" of a
completion, whether some valuation realizes it.  Lemma B.19 expresses this as
a bounded integer program over a fixed number of variables.  We provide:

* a pure-Python branch-and-prune solver (always available, exact), and
* an optional scipy ``milp`` backend used automatically when the problem is
  large enough for the C solver to pay off.

Both are exact; tests cross-validate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

Sense = Literal["<=", ">=", "=="]


@dataclass(frozen=True)
class LinearConstraint:
    """``sum_i coeffs[i] * x[i]  (sense)  rhs`` over integer variables."""

    coeffs: tuple[int, ...]
    sense: Sense
    rhs: int

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError("unknown sense %r" % (self.sense,))


@dataclass
class IntegerFeasibilityProblem:
    """A bounded integer feasibility problem.

    ``bounds[i] = (low, high)`` gives inclusive bounds for variable ``i``.
    """

    bounds: list[tuple[int, int]] = field(default_factory=list)
    constraints: list[LinearConstraint] = field(default_factory=list)

    def add_variable(self, low: int, high: int) -> int:
        """Register a variable with inclusive bounds; return its index."""
        if low > high:
            raise ValueError("variable with empty range [%d, %d]" % (low, high))
        self.bounds.append((low, high))
        return len(self.bounds) - 1

    def add_constraint(
        self, coeffs: Sequence[int], sense: Sense, rhs: int
    ) -> None:
        """Add ``coeffs . x  (sense)  rhs``; coeffs is dense over variables."""
        if len(coeffs) != len(self.bounds):
            raise ValueError("constraint arity does not match variable count")
        self.constraints.append(LinearConstraint(tuple(coeffs), sense, rhs))

    @property
    def num_variables(self) -> int:
        return len(self.bounds)


def _term_range(coeff: int, low: int, high: int) -> tuple[int, int]:
    """Min and max of ``coeff * x`` for ``x`` in ``[low, high]``."""
    a, b = coeff * low, coeff * high
    return (a, b) if a <= b else (b, a)


def _feasible_backtracking(problem: IntegerFeasibilityProblem) -> bool:
    """Exact DFS with per-constraint residual-range pruning."""
    n = problem.num_variables
    constraints = problem.constraints
    bounds = problem.bounds

    # Pre-compute, for each constraint, suffix min/max contributions of
    # variables >= position, so partial assignments prune early.
    suffix_min: list[list[int]] = []
    suffix_max: list[list[int]] = []
    for constraint in constraints:
        mins = [0] * (n + 1)
        maxs = [0] * (n + 1)
        for position in range(n - 1, -1, -1):
            lo, hi = _term_range(
                constraint.coeffs[position], *bounds[position]
            )
            mins[position] = mins[position + 1] + lo
            maxs[position] = maxs[position + 1] + hi
        suffix_min.append(mins)
        suffix_max.append(maxs)

    def consistent(position: int, partial_sums: list[int]) -> bool:
        for index, constraint in enumerate(constraints):
            lo = partial_sums[index] + suffix_min[index][position]
            hi = partial_sums[index] + suffix_max[index][position]
            if constraint.sense == "<=" and lo > constraint.rhs:
                return False
            if constraint.sense == ">=" and hi < constraint.rhs:
                return False
            if constraint.sense == "==" and not (lo <= constraint.rhs <= hi):
                return False
        return True

    def search(position: int, partial_sums: list[int]) -> bool:
        if not consistent(position, partial_sums):
            return False
        if position == n:
            return True
        low, high = bounds[position]
        for value in range(low, high + 1):
            next_sums = [
                partial_sums[i] + constraints[i].coeffs[position] * value
                for i in range(len(constraints))
            ]
            if search(position + 1, next_sums):
                return True
        return False

    return search(0, [0] * len(constraints))


def _feasible_scipy(problem: IntegerFeasibilityProblem) -> bool | None:
    """scipy MILP backend; returns ``None`` when scipy is unavailable."""
    try:
        import numpy as np
        from scipy.optimize import Bounds, LinearConstraint as SciCon, milp
    except ImportError:  # pragma: no cover - scipy is present in CI
        return None

    n = problem.num_variables
    if n == 0:
        return all(
            _constant_holds(constraint) for constraint in problem.constraints
        )
    lower = np.array([low for low, _ in problem.bounds], dtype=float)
    upper = np.array([high for _, high in problem.bounds], dtype=float)
    scipy_constraints = []
    for constraint in problem.constraints:
        row = np.array(constraint.coeffs, dtype=float).reshape(1, -1)
        if constraint.sense == "<=":
            scipy_constraints.append(SciCon(row, -np.inf, constraint.rhs))
        elif constraint.sense == ">=":
            scipy_constraints.append(SciCon(row, constraint.rhs, np.inf))
        else:
            scipy_constraints.append(SciCon(row, constraint.rhs, constraint.rhs))
    result = milp(
        c=np.zeros(n),
        constraints=scipy_constraints,
        bounds=Bounds(lower, upper),
        integrality=np.ones(n),
    )
    return bool(result.success)


def _constant_holds(constraint: LinearConstraint) -> bool:
    if constraint.sense == "<=":
        return 0 <= constraint.rhs
    if constraint.sense == ">=":
        return 0 >= constraint.rhs
    return constraint.rhs == 0


# Below this many variables the Python DFS beats scipy's setup overhead.
_SCIPY_THRESHOLD = 9


def is_feasible(
    problem: IntegerFeasibilityProblem, backend: str = "auto"
) -> bool:
    """Decide feasibility of a bounded integer program.

    ``backend`` is one of ``"auto"``, ``"python"``, ``"scipy"``.
    """
    if backend not in ("auto", "python", "scipy"):
        raise ValueError("unknown backend %r" % (backend,))
    if problem.num_variables == 0:
        return all(
            _constant_holds(constraint) for constraint in problem.constraints
        )
    if backend == "python":
        return _feasible_backtracking(problem)
    if backend == "scipy":
        result = _feasible_scipy(problem)
        if result is None:
            raise RuntimeError("scipy backend requested but not installed")
        return result
    if problem.num_variables >= _SCIPY_THRESHOLD:
        result = _feasible_scipy(problem)
        if result is not None:
            return result
    return _feasible_backtracking(problem)
