"""Exact combinatorial primitives used throughout the reproduction.

The paper's tractable-case algorithms (Example 3.10, Prop. A.14, App. B.6)
are built from binomials, multinomials and the surjection numbers
``surj(n, m)`` (the number of surjective functions from an ``n``-element set
onto an ``m``-element set).  All functions here return exact ``int`` values.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Iterator, Sequence


def binomial(n: int, k: int) -> int:
    """Binomial coefficient ``C(n, k)``, zero outside ``0 <= k <= n``.

    The paper uses the convention ``C(a, b) = 0`` when ``b > a`` (footnote 9),
    which makes closed-form sums such as Eq. (3)-(5) valid without explicit
    range guards; we adopt the same convention.
    """
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


def falling_factorial(n: int, k: int) -> int:
    """Falling factorial ``n * (n-1) * ... * (n-k+1)``; zero for ``k > n``."""
    if k < 0:
        raise ValueError("falling_factorial: k must be non-negative")
    if k > n:
        return 0
    result = 1
    for i in range(k):
        result *= n - i
    return result


def multinomial(counts: Sequence[int]) -> int:
    """Multinomial coefficient ``(sum counts)! / prod(count_i!)``.

    Raises ``ValueError`` on negative parts (a negative part is always a bug
    in the calling combinatorial argument, never a valid "zero ways" case).
    """
    total = 0
    result = 1
    for count in counts:
        if count < 0:
            raise ValueError("multinomial: negative part %r" % (count,))
        total += count
        result *= math.comb(total, count)
    return result


@lru_cache(maxsize=None)
def surjections(n: int, m: int) -> int:
    """Number ``surj(n, m)`` of surjections from ``[n]`` onto ``[m]``.

    Computed by inclusion-exclusion exactly as in Section 3.2 of the paper:
    ``surj(n, m) = sum_{i=0}^{m-1} (-1)^i C(m, i) (m - i)^n``.

    Conventions (needed by the paper's sums, cf. footnote 3):

    * ``surj(n, m) = 0`` whenever ``m > n``;
    * ``surj(0, 0) = 1`` (the empty function is onto the empty set).
    """
    if n < 0 or m < 0:
        raise ValueError("surjections: arguments must be non-negative")
    if m > n:
        return 0
    if m == 0:
        return 1 if n == 0 else 0
    total = 0
    for i in range(m):
        term = math.comb(m, i) * (m - i) ** n
        total += -term if i % 2 else term
    return total


@lru_cache(maxsize=None)
def stirling2(n: int, k: int) -> int:
    """Stirling number of the second kind ``S(n, k)``.

    Related to surjections by ``surj(n, k) = k! * S(n, k)``; used as an
    independent cross-check in the test suite.
    """
    if n < 0 or k < 0:
        raise ValueError("stirling2: arguments must be non-negative")
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0:
        return 0
    if k > n:
        return 0
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)


def compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Yield all tuples of ``parts`` non-negative ints summing to ``total``.

    Yields nothing when ``parts == 0`` and ``total > 0``; yields the empty
    tuple when both are zero.
    """
    if parts < 0 or total < 0:
        raise ValueError("compositions: arguments must be non-negative")
    if parts == 0:
        if total == 0:
            yield ()
        return
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for tail in compositions(total - head, parts - 1):
            yield (head,) + tail


def bounded_compositions(
    total: int, bounds: Iterable[int]
) -> Iterator[tuple[int, ...]]:
    """Yield tuples ``(x_1, ..., x_k)`` with ``0 <= x_i <= bounds[i]`` and
    ``sum x_i == total``.

    Used to enumerate how many values/constants of each class participate in
    a combinatorial shape (App. B.6) without exceeding class sizes.
    """
    bounds = list(bounds)
    if total < 0:
        raise ValueError("bounded_compositions: total must be non-negative")
    if not bounds:
        if total == 0:
            yield ()
        return
    head_bound = bounds[0]
    remaining_capacity = sum(bounds[1:])
    low = max(0, total - remaining_capacity)
    high = min(head_bound, total)
    for head in range(low, high + 1):
        for tail in bounded_compositions(total - head, bounds[1:]):
            yield (head,) + tail


def bounded_vectors(bounds: Iterable[int]) -> Iterator[tuple[int, ...]]:
    """Yield all integer vectors ``0 <= x_i <= bounds[i]`` (odometer order)."""
    bounds = list(bounds)
    if any(b < 0 for b in bounds):
        raise ValueError("bounded_vectors: bounds must be non-negative")
    if not bounds:
        yield ()
        return
    vector = [0] * len(bounds)
    while True:
        yield tuple(vector)
        position = len(bounds) - 1
        while position >= 0 and vector[position] == bounds[position]:
            vector[position] = 0
            position -= 1
        if position < 0:
            return
        vector[position] += 1
