"""Incomplete databases ``D = (T, dom)`` — naive tables with null domains.

Supports both flavors studied in the paper:

* **non-uniform** (the default): ``dom`` maps each null to its own finite
  set of constants;
* **uniform**: a single finite domain shared by all nulls (Section 2,
  "uniform incomplete databases").

The class is immutable; transformation helpers return new instances.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping

from repro.db.fact import Fact
from repro.db.terms import Null, Term, is_null


class IncompleteDatabase:
    """A naive table together with the domains of its nulls.

    Use :meth:`uniform` / the plain constructor to build the two variants::

        D = IncompleteDatabase(facts, dom={null1: {"a", "b"}})
        D = IncompleteDatabase.uniform(facts, domain={"a", "b"})
    """

    def __init__(
        self,
        facts: Iterable[Fact],
        dom: Mapping[Null, Iterable[Term]] | None = None,
        uniform_domain: Iterable[Term] | None = None,
    ) -> None:
        if (dom is None) == (uniform_domain is None):
            raise ValueError(
                "provide exactly one of `dom` (non-uniform) or "
                "`uniform_domain` (uniform)"
            )
        # Delta provenance (set by `apply`, never part of equality/hash):
        # the instance this one was derived from, and the delta that did it.
        self._parent: "IncompleteDatabase | None" = None
        self._delta: object | None = None
        self._facts: frozenset[Fact] = frozenset(facts)
        self._check_arities()
        occurring = self._occurring_nulls()
        # The class is immutable, so the null scan is done exactly once;
        # `nulls` is on the per-row hot path of the batched sweep passes.
        self._nulls: tuple[Null, ...] = tuple(sorted(occurring))

        if uniform_domain is not None:
            shared = frozenset(uniform_domain)
            self._reject_null_constants(shared)
            self._uniform: frozenset[Term] | None = shared
            self._dom: dict[Null, frozenset[Term]] = {
                null: shared for null in occurring
            }
        else:
            assert dom is not None
            self._uniform = None
            self._dom = {}
            for null, values in dom.items():
                value_set = frozenset(values)
                self._reject_null_constants(value_set)
                self._dom[null] = value_set
            missing = occurring - set(self._dom)
            if missing:
                raise ValueError(
                    "nulls without a domain: %s"
                    % ", ".join(sorted(map(repr, missing)))
                )
            # Domains of nulls not occurring in T are irrelevant; drop them
            # so that equality and counting depend only on (T, dom|_T).
            self._dom = {
                null: values
                for null, values in self._dom.items()
                if null in occurring
            }

    # -- constructors ----------------------------------------------------

    @classmethod
    def uniform(
        cls, facts: Iterable[Fact], domain: Iterable[Term]
    ) -> "IncompleteDatabase":
        """Uniform incomplete database: one shared domain for all nulls."""
        return cls(facts, uniform_domain=domain)

    # -- validation helpers ----------------------------------------------

    @staticmethod
    def _reject_null_constants(values: frozenset[Term]) -> None:
        if any(is_null(value) for value in values):
            raise ValueError("null domains must contain constants only")

    def _check_arities(self) -> None:
        arities: dict[str, int] = {}
        for fact in self._facts:
            known = arities.setdefault(fact.relation, fact.arity)
            if known != fact.arity:
                raise ValueError(
                    "inconsistent arity for relation %s" % fact.relation
                )

    def _occurring_nulls(self) -> set[Null]:
        found: set[Null] = set()
        for fact in self._facts:
            found |= fact.nulls()
        return found

    # -- basic inspection --------------------------------------------------

    @property
    def facts(self) -> frozenset[Fact]:
        """The naive table ``T``."""
        return self._facts

    @property
    def relations(self) -> set[str]:
        return {fact.relation for fact in self._facts}

    def relation(self, name: str) -> frozenset[Fact]:
        """``D(R)``: facts over relation ``name``."""
        return frozenset(f for f in self._facts if f.relation == name)

    @property
    def nulls(self) -> list[Null]:
        """Distinct nulls occurring in ``T``, deterministically ordered."""
        return list(self._nulls)

    def domain_of(self, null: Null) -> frozenset[Term]:
        """``dom(⊥)`` for a null occurring in ``T``."""
        try:
            return self._dom[null]
        except KeyError:
            raise KeyError("null %r does not occur in the table" % (null,))

    @property
    def is_uniform(self) -> bool:
        """True when built with a single shared domain."""
        return self._uniform is not None

    @property
    def uniform_domain(self) -> frozenset[Term]:
        """The shared domain (raises unless :attr:`is_uniform`)."""
        if self._uniform is None:
            raise ValueError("database is not uniform")
        return self._uniform

    def constants(self) -> set[Term]:
        """Constants appearing in the facts of ``T``."""
        found: set[Term] = set()
        for fact in self._facts:
            found |= fact.constants()
        return found

    def schema(self) -> dict[str, int]:
        """Relation name -> arity for relations with at least one fact."""
        return {
            fact.relation: fact.arity for fact in sorted(self._facts)
        }

    # -- structural properties ---------------------------------------------

    def null_occurrences(self) -> Counter:
        """How many *positions* each null occupies across all facts."""
        occurrences: Counter = Counter()
        for fact in self._facts:
            for term in fact.terms:
                if is_null(term):
                    occurrences[term] += 1
        return occurrences

    @property
    def parent(self) -> "IncompleteDatabase | None":
        """The instance this one was derived from via :meth:`apply`."""
        return self._parent

    @property
    def delta(self) -> object | None:
        """The delta :meth:`apply` used to derive this instance."""
        return self._delta

    @property
    def is_codd(self) -> bool:
        """Codd table: every null occurs at most once in ``T`` (Section 2).

        Note a repeated null *within* one fact (e.g. ``S(⊥,⊥)``) already
        violates the Codd condition.
        """
        return all(count <= 1 for count in self.null_occurrences().values())

    def is_ground(self) -> bool:
        return not self._nulls

    # -- transformations -----------------------------------------------------

    def with_facts(self, facts: Iterable[Fact]) -> "IncompleteDatabase":
        """Same domains, different naive table (new nulls not allowed)."""
        if self._uniform is not None:
            return IncompleteDatabase.uniform(facts, self._uniform)
        return IncompleteDatabase(facts, dom=self._dom)

    def without_facts(self, facts: Iterable[Fact]) -> "IncompleteDatabase":
        """Same domains, table minus ``facts`` (all must be present)."""
        removed = frozenset(facts)
        missing = removed - self._facts
        if missing:
            raise ValueError(
                "facts not in the table: %s"
                % ", ".join(sorted(map(repr, missing)))
            )
        return self.with_facts(self._facts - removed)

    def resolve(self, null: Null, value: Term) -> "IncompleteDatabase":
        """Replace ``null`` by the constant ``value`` throughout ``T``.

        ``value`` must lie in ``dom(null)``; the resolved null (and, in the
        non-uniform case, its domain entry) disappears from the result.
        """
        domain = self.domain_of(null)  # raises KeyError if not occurring
        if value not in domain:
            raise ValueError(
                "value %r is outside dom(%r)" % (value, null)
            )
        substitution = {null: value}
        return self.with_facts(
            fact.substitute(substitution) for fact in self._facts
        )

    def apply(self, delta: object) -> "IncompleteDatabase":
        """Apply a :mod:`repro.db.deltas` record, recording provenance.

        The result is an ordinary immutable instance whose :attr:`parent`
        and :attr:`delta` record where it came from, which lets the
        incremental counting layer answer it from an ancestor circuit
        (conditioning for resolution-only deltas, component-level
        recompilation otherwise).  Provenance never affects equality,
        hashing, or fingerprints of the database *content*.
        """
        from repro.db.deltas import (
            DeleteFacts,
            InsertFacts,
            ResolveNull,
            RestrictDomain,
        )

        if isinstance(delta, ResolveNull):
            child = self.resolve(delta.null, delta.value)
        elif isinstance(delta, RestrictDomain):
            domain = self.domain_of(delta.null)
            extra = delta.values - domain
            if extra:
                raise ValueError(
                    "restricted domain of %r adds values outside dom: %s"
                    % (delta.null, ", ".join(sorted(map(repr, extra))))
                )
            if self._uniform is not None and delta.values == self._uniform:
                child = IncompleteDatabase.uniform(self._facts, self._uniform)
            else:
                new_dom = dict(self._dom)
                new_dom[delta.null] = delta.values
                child = IncompleteDatabase(self._facts, dom=new_dom)
        elif isinstance(delta, InsertFacts):
            new_facts = self._facts | delta.facts
            carried = delta.domains()
            if self._uniform is not None and not carried:
                child = IncompleteDatabase.uniform(new_facts, self._uniform)
            else:
                base = dict(self._dom)
                for null, values in carried.items():
                    known = base.get(null)
                    if known is not None and known != values:
                        raise ValueError(
                            "delta re-declares dom(%r) inconsistently" % null
                        )
                    base[null] = values
                child = IncompleteDatabase(new_facts, dom=base)
        elif isinstance(delta, DeleteFacts):
            child = self.without_facts(delta.facts)
        else:
            raise TypeError("not a delta: %r" % (delta,))
        child._parent = self
        child._delta = delta
        return child

    def restrict_to_relations(
        self, names: Iterable[str]
    ) -> "IncompleteDatabase":
        """Keep only facts over the given relation names."""
        keep = set(names)
        kept_facts = [f for f in self._facts if f.relation in keep]
        return self.with_facts(kept_facts)

    def as_non_uniform(self) -> "IncompleteDatabase":
        """Equivalent non-uniform view (each null gets a copy of its domain).

        The paper treats the uniform setting as the special case of the
        non-uniform one where all domains coincide; this makes the embedding
        explicit for algorithms that only accept non-uniform inputs.
        """
        return IncompleteDatabase(self._facts, dom=dict(self._dom))

    def as_uniform(self) -> "IncompleteDatabase":
        """Uniform view, valid only when all null domains are equal."""
        if self._uniform is not None:
            return self
        domains = {values for values in self._dom.values()}
        if len(domains) > 1:
            raise ValueError("null domains differ; not a uniform database")
        if not domains:
            raise ValueError(
                "cannot infer a uniform domain for a ground table; "
                "use IncompleteDatabase.uniform explicitly"
            )
        return IncompleteDatabase.uniform(self._facts, next(iter(domains)))

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IncompleteDatabase)
            and other._facts == self._facts
            and other._dom == self._dom
            and (other._uniform is None) == (self._uniform is None)
        )

    def __hash__(self) -> int:
        return hash((self._facts, frozenset(self._dom.items())))

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self._facts))

    def __repr__(self) -> str:
        kind = "uniform" if self.is_uniform else "non-uniform"
        codd = "Codd" if self.is_codd else "naive"
        return "IncompleteDatabase(%d facts, %d nulls, %s %s)" % (
            len(self._facts),
            len(self.nulls),
            kind,
            codd,
        )
