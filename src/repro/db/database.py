"""Complete databases: finite sets of ground facts."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.db.fact import Fact
from repro.db.terms import Term


class Database:
    """A complete relational database (a set of ground facts).

    Set semantics throughout: adding a duplicate fact is a no-op, and two
    databases are equal iff they contain the same facts.
    """

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._facts: frozenset[Fact] = frozenset(facts)
        for fact in self._facts:
            if not fact.is_ground():
                raise ValueError(
                    "complete databases cannot contain nulls: %r" % (fact,)
                )
        self._check_arities()

    def _check_arities(self) -> None:
        arities: dict[str, int] = {}
        for fact in self._facts:
            known = arities.setdefault(fact.relation, fact.arity)
            if known != fact.arity:
                raise ValueError(
                    "inconsistent arity for relation %s" % fact.relation
                )

    @property
    def facts(self) -> frozenset[Fact]:
        return self._facts

    @property
    def relations(self) -> set[str]:
        """Relation names with at least one fact."""
        return {fact.relation for fact in self._facts}

    def relation(self, name: str) -> frozenset[Fact]:
        """``D(R)``: the facts over relation ``name``."""
        return frozenset(f for f in self._facts if f.relation == name)

    def active_domain(self) -> set[Term]:
        """All constants appearing in some fact."""
        domain: set[Term] = set()
        for fact in self._facts:
            domain |= set(fact.terms)
        return domain

    def arity_of(self, name: str) -> int | None:
        for fact in self._facts:
            if fact.relation == name:
                return fact.arity
        return None

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self._facts))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Database) and other._facts == self._facts

    def __hash__(self) -> int:
        return hash(self._facts)

    def __or__(self, other: "Database") -> "Database":
        return Database(self._facts | other._facts)

    def issubset(self, other: "Database") -> bool:
        """``D ⊆ D'`` on fact sets (used by monotonicity checks)."""
        return self._facts <= other._facts

    def __repr__(self) -> str:
        if len(self._facts) <= 6:
            return "Database{%s}" % ", ".join(repr(f) for f in sorted(self._facts))
        return "Database(%d facts over %s)" % (
            len(self._facts),
            sorted(self.relations),
        )
