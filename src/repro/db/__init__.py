"""Incomplete relational databases (Section 2 of the paper).

The data model follows the paper exactly:

* a *complete database* is a finite set of facts over constants;
* an *incomplete database* ``D = (T, dom)`` pairs a naive table ``T`` (facts
  over constants and labeled nulls) with a finite domain for every null —
  either one domain per null (non-uniform) or a single shared domain
  (uniform);
* a *valuation* maps every null to a constant of its domain, and the
  *completion* ``ν(T)`` is the resulting complete database under set
  semantics (duplicate facts collapse — the reason ``#Val`` and ``#Comp``
  differ);
* a *Codd table* is a naive table in which every null occurs at most once.
"""

from repro.db.terms import Null, Term, is_constant, is_null
from repro.db.fact import Fact
from repro.db.database import Database
from repro.db.incomplete import IncompleteDatabase
from repro.db.bag_semantics import (
    BagDatabase,
    apply_valuation_bag,
    count_bag_completions,
)
from repro.db.valuation import (
    apply_valuation,
    count_total_valuations,
    iter_completions,
    iter_valuations,
)

__all__ = [
    "Null",
    "Term",
    "is_constant",
    "is_null",
    "Fact",
    "Database",
    "IncompleteDatabase",
    "BagDatabase",
    "apply_valuation_bag",
    "count_bag_completions",
    "apply_valuation",
    "count_total_valuations",
    "iter_completions",
    "iter_valuations",
]
