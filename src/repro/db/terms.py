"""Terms of the data model: constants and labeled nulls.

Constants are ordinary hashable Python values (strings, ints, tuples...).
Nulls are explicit :class:`Null` objects so that "null-ness" is a property of
the value itself, never of a naming convention — ``Null("a")`` and the
constant ``"a"`` coexist without ambiguity.
"""

from __future__ import annotations

from typing import Any, Hashable


class Null:
    """A labeled null ``⊥_label`` (Section 2: elements of ``Nulls``).

    Two nulls are equal iff their labels are equal; a null is never equal to
    a constant.  Instances are immutable and hashable so they can populate
    facts, sets and dict keys.
    """

    __slots__ = ("_label",)

    def __init__(self, label: Hashable) -> None:
        self._label = label

    @property
    def label(self) -> Hashable:
        return self._label

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and other._label == self._label

    def __hash__(self) -> int:
        return hash(("repro.Null", self._label))

    def __repr__(self) -> str:
        return "⊥%s" % (self._label,)

    def __lt__(self, other: "Null") -> bool:
        # Deterministic ordering for reproducible iteration in algorithms.
        if not isinstance(other, Null):
            return NotImplemented
        return repr(self) < repr(other)


Term = Any  # a constant (any hashable) or a Null


def is_null(term: Term) -> bool:
    """True when ``term`` is a labeled null."""
    return isinstance(term, Null)


def is_constant(term: Term) -> bool:
    """True when ``term`` is a constant (i.e. not a null)."""
    return not isinstance(term, Null)


def fresh_nulls(count: int, prefix: str = "n") -> list[Null]:
    """``count`` distinct nulls with labels ``prefix0 .. prefix{count-1}``."""
    return [Null("%s%d" % (prefix, i)) for i in range(count)]
