"""Valuations and completions of incomplete databases.

A valuation ``ν`` assigns to each null of ``D`` a constant of its domain;
``ν(D)`` is the completion obtained by substituting and collapsing duplicate
facts (set semantics).  These enumerators are the semantic ground truth that
every polynomial-time algorithm in :mod:`repro.exact` is tested against.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Mapping

from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term


def count_total_valuations(db: IncompleteDatabase) -> int:
    """The number of valuations of ``D``: ``prod_⊥ |dom(⊥)|``.

    This is the paper's observation that *counting all valuations* is always
    in FP (Section 1).  A ground table has exactly one (empty) valuation; an
    empty domain makes the product zero.
    """
    total = 1
    for null in db.nulls:
        total *= len(db.domain_of(null))
    return total


#: Per-null value weights: ``weights[null][value]`` is the weight (count
#: multiplicity, unnormalized probability, ...) of ``ν(null) = value``.
NullWeights = Mapping[Null, Mapping[Term, object]]


def resolve_null_weights(
    db: IncompleteDatabase, weights: NullWeights | None
) -> dict[Null, dict[Term, object]]:
    """Full per-null weight tables for ``D``.

    Nulls absent from ``weights`` get weight ``1`` for every domain value
    (the uniform convention, under which the weighted count *is* the
    count).  A null that is listed must cover its whole domain and nothing
    outside it — partial tables are rejected rather than silently
    defaulted, since a forgotten value would skew every downstream count.
    """
    provided = dict(weights) if weights else {}
    unknown = set(provided) - set(db.nulls)
    if unknown:
        raise ValueError(
            "weights given for nulls not in the database: %s"
            % ", ".join(sorted(map(repr, unknown)))
        )
    resolved: dict[Null, dict[Term, object]] = {}
    for null in db.nulls:
        domain = db.domain_of(null)
        given = provided.get(null)
        if given is None:
            resolved[null] = {value: 1 for value in domain}
            continue
        table = dict(given)
        extra = set(table) - set(domain)
        if extra:
            raise ValueError(
                "weights for %r mention values outside its domain: %s"
                % (null, ", ".join(sorted(map(repr, extra))))
            )
        missing = set(domain) - set(table)
        if missing:
            raise ValueError(
                "weights for %r must cover its whole domain; missing: %s"
                % (null, ", ".join(sorted(map(repr, missing))))
            )
        resolved[null] = table
    return resolved


def weighted_total_valuations(
    db: IncompleteDatabase, weights: NullWeights | None = None
):
    """``sum over all valuations ν of prod_⊥ w(⊥, ν(⊥))``.

    The weighted analogue of :func:`count_total_valuations` — and equal to
    it under the uniform all-ones convention.  Factorizes as
    ``prod_⊥ sum_c w(⊥, c)`` because the nulls choose independently.
    """
    resolved = resolve_null_weights(db, weights)
    total: object = 1
    for null in db.nulls:
        total = total * sum(resolved[null].values())  # type: ignore[operator]
    return total


def iter_valuations(
    db: IncompleteDatabase,
) -> Iterator[dict[Null, Term]]:
    """Enumerate every valuation of ``D`` (deterministic order).

    Exponential in the number of nulls; intended for ground truth on small
    instances and for the worked examples of the paper.
    """
    nulls = db.nulls
    domains = [sorted(db.domain_of(null), key=repr) for null in nulls]
    for values in product(*domains):
        yield dict(zip(nulls, values))


def apply_valuation(
    db: IncompleteDatabase, valuation: Mapping[Null, Term]
) -> Database:
    """The completion ``ν(D)``: substitute nulls, collapse duplicates.

    Every null of ``D`` must be mapped to a member of its domain — this is
    checked, since Example 2.1 stresses that maps leaving the domain are
    *not* valuations.
    """
    for null in db.nulls:
        if null not in valuation:
            raise ValueError("valuation misses null %r" % (null,))
        if valuation[null] not in db.domain_of(null):
            raise ValueError(
                "valuation maps %r outside its domain (got %r)"
                % (null, valuation[null])
            )
    completed: set[Fact] = {fact.substitute(dict(valuation)) for fact in db.facts}
    return Database(completed)


def iter_completions(db: IncompleteDatabase) -> Iterator[Database]:
    """Enumerate the *distinct* completions of ``D``.

    Distinct valuations may produce the same completion (Example 2.2); this
    iterator deduplicates, yielding each completion exactly once.
    """
    seen: set[Database] = set()
    for valuation in iter_valuations(db):
        completion = apply_valuation(db, valuation)
        if completion not in seen:
            seen.add(completion)
            yield completion


def completions_with_multiplicity(
    db: IncompleteDatabase,
) -> dict[Database, int]:
    """Map each distinct completion to the number of valuations producing it.

    Useful for exploring the ``#Val`` / ``#Comp`` gap quantitatively:
    ``sum(multiplicities) == count_total_valuations(db)``.
    """
    histogram: dict[Database, int] = {}
    for valuation in iter_valuations(db):
        completion = apply_valuation(db, valuation)
        histogram[completion] = histogram.get(completion, 0) + 1
    return histogram
