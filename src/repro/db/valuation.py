"""Valuations and completions of incomplete databases.

A valuation ``ν`` assigns to each null of ``D`` a constant of its domain;
``ν(D)`` is the completion obtained by substituting and collapsing duplicate
facts (set semantics).  These enumerators are the semantic ground truth that
every polynomial-time algorithm in :mod:`repro.exact` is tested against.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Mapping

from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term


def count_total_valuations(db: IncompleteDatabase) -> int:
    """The number of valuations of ``D``: ``prod_⊥ |dom(⊥)|``.

    This is the paper's observation that *counting all valuations* is always
    in FP (Section 1).  A ground table has exactly one (empty) valuation; an
    empty domain makes the product zero.
    """
    total = 1
    for null in db.nulls:
        total *= len(db.domain_of(null))
    return total


def iter_valuations(
    db: IncompleteDatabase,
) -> Iterator[dict[Null, Term]]:
    """Enumerate every valuation of ``D`` (deterministic order).

    Exponential in the number of nulls; intended for ground truth on small
    instances and for the worked examples of the paper.
    """
    nulls = db.nulls
    domains = [sorted(db.domain_of(null), key=repr) for null in nulls]
    for values in product(*domains):
        yield dict(zip(nulls, values))


def apply_valuation(
    db: IncompleteDatabase, valuation: Mapping[Null, Term]
) -> Database:
    """The completion ``ν(D)``: substitute nulls, collapse duplicates.

    Every null of ``D`` must be mapped to a member of its domain — this is
    checked, since Example 2.1 stresses that maps leaving the domain are
    *not* valuations.
    """
    for null in db.nulls:
        if null not in valuation:
            raise ValueError("valuation misses null %r" % (null,))
        if valuation[null] not in db.domain_of(null):
            raise ValueError(
                "valuation maps %r outside its domain (got %r)"
                % (null, valuation[null])
            )
    completed: set[Fact] = {fact.substitute(dict(valuation)) for fact in db.facts}
    return Database(completed)


def iter_completions(db: IncompleteDatabase) -> Iterator[Database]:
    """Enumerate the *distinct* completions of ``D``.

    Distinct valuations may produce the same completion (Example 2.2); this
    iterator deduplicates, yielding each completion exactly once.
    """
    seen: set[Database] = set()
    for valuation in iter_valuations(db):
        completion = apply_valuation(db, valuation)
        if completion not in seen:
            seen.add(completion)
            yield completion


def completions_with_multiplicity(
    db: IncompleteDatabase,
) -> dict[Database, int]:
    """Map each distinct completion to the number of valuations producing it.

    Useful for exploring the ``#Val`` / ``#Comp`` gap quantitatively:
    ``sum(multiplicities) == count_total_valuations(db)``.
    """
    histogram: dict[Database, int] = {}
    for valuation in iter_valuations(db):
        completion = apply_valuation(db, valuation)
        histogram[completion] = histogram.get(completion, 0) + 1
    return histogram
