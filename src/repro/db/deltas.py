"""Deltas: the update operations between incomplete-database versions.

The journal version of the source paper frames updates to an incomplete
database as exactly four moves: resolving a null to a constant, shrinking
a null's domain, and inserting or deleting facts.  A :class:`Delta` is an
immutable record of one such move; ``db.apply(delta)`` (in
:mod:`repro.db.incomplete`) produces the new instance and records the
provenance link that the incremental counting machinery exploits —
resolution-only deltas are answered from the parent circuit by
*conditioning*, insert/delete deltas by recompiling only the lineage
components whose clauses changed.

Deltas are value objects: hashable, comparable, picklable, with a
canonical form (:func:`delta_form`) stable under null/constant labels so
fingerprints of derived instances can record the chain exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Union

from repro.db.fact import Fact
from repro.db.terms import Null, Term, is_null


@dataclass(frozen=True)
class ResolveNull:
    """Resolve ``null`` to the constant ``value`` (everywhere in ``T``)."""

    null: Null
    value: Term

    def __post_init__(self) -> None:
        if not is_null(self.null):
            raise ValueError("ResolveNull.null must be a Null")
        if is_null(self.value):
            raise ValueError("nulls resolve to constants, not to other nulls")


@dataclass(frozen=True)
class RestrictDomain:
    """Shrink ``dom(null)`` to ``values`` (a non-empty subset)."""

    null: Null
    values: frozenset = field()

    def __post_init__(self) -> None:
        if not is_null(self.null):
            raise ValueError("RestrictDomain.null must be a Null")
        values = frozenset(self.values)
        if not values:
            raise ValueError("a restricted domain must stay non-empty")
        if any(is_null(value) for value in values):
            raise ValueError("null domains must contain constants only")
        object.__setattr__(self, "values", values)


@dataclass(frozen=True)
class InsertFacts:
    """Add ``facts`` to ``T``.

    New nulls are allowed when their domains ride along in ``dom`` (or,
    on a uniform database, they inherit the shared domain).
    """

    facts: frozenset = field()
    dom: tuple = ()

    def __init__(
        self,
        facts: Iterable[Fact],
        dom: "Mapping[Null, Iterable[Term]] | None" = None,
    ) -> None:
        fact_set = frozenset(facts)
        if not fact_set:
            raise ValueError("InsertFacts needs at least one fact")
        if not all(isinstance(fact, Fact) for fact in fact_set):
            raise ValueError("InsertFacts.facts must be Fact values")
        entries = ()
        if dom:
            entries = tuple(
                sorted(
                    (null, frozenset(values)) for null, values in dom.items()
                )
            )
            for null, values in entries:
                if not is_null(null):
                    raise ValueError("InsertFacts.dom keys must be nulls")
                if not values or any(is_null(value) for value in values):
                    raise ValueError(
                        "domains for inserted nulls must be non-empty sets "
                        "of constants"
                    )
        object.__setattr__(self, "facts", fact_set)
        object.__setattr__(self, "dom", entries)

    def domains(self) -> "dict[Null, frozenset]":
        """The carried new-null domains as a mapping."""
        return dict(self.dom)


@dataclass(frozen=True)
class DeleteFacts:
    """Remove ``facts`` from ``T`` (every fact must be present)."""

    facts: frozenset = field()

    def __post_init__(self) -> None:
        fact_set = frozenset(self.facts)
        if not fact_set:
            raise ValueError("DeleteFacts needs at least one fact")
        if not all(isinstance(fact, Fact) for fact in fact_set):
            raise ValueError("DeleteFacts.facts must be Fact values")
        object.__setattr__(self, "facts", fact_set)


Delta = Union[ResolveNull, RestrictDomain, InsertFacts, DeleteFacts]

#: The delta kinds a compiled circuit absorbs by *conditioning* — fixing
#: choice-block literals in one linear pass, no recompilation.
RESOLUTION_KINDS = (ResolveNull, RestrictDomain)


def is_delta(value: object) -> bool:
    """True for any of the four delta record types."""
    return isinstance(
        value, (ResolveNull, RestrictDomain, InsertFacts, DeleteFacts)
    )


def resolution_only(delta: Delta) -> bool:
    """True when ``delta`` only narrows null choices (no fact changes)."""
    return isinstance(delta, RESOLUTION_KINDS)


def _term_key(term: Term) -> str:
    return repr(term)


def delta_form(delta: Delta) -> tuple:
    """Canonical, label-exact tuple form of a delta (fingerprint input).

    Mirrors the label-exact instance forms in
    :mod:`repro.engine.fingerprint`: the same delta always yields the
    same form, and the form orders sets deterministically.
    """
    if isinstance(delta, ResolveNull):
        return ("resolve", _term_key(delta.null), _term_key(delta.value))
    if isinstance(delta, RestrictDomain):
        return (
            "restrict",
            _term_key(delta.null),
            tuple(sorted(map(_term_key, delta.values))),
        )
    if isinstance(delta, InsertFacts):
        return (
            "insert",
            tuple(sorted(map(repr, delta.facts))),
            tuple(
                (_term_key(null), tuple(sorted(map(_term_key, values))))
                for null, values in delta.dom
            ),
        )
    if isinstance(delta, DeleteFacts):
        return ("delete", tuple(sorted(map(repr, delta.facts))))
    raise TypeError("not a delta: %r" % (delta,))


__all__ = [
    "Delta",
    "DeleteFacts",
    "InsertFacts",
    "RESOLUTION_KINDS",
    "ResolveNull",
    "RestrictDomain",
    "delta_form",
    "is_delta",
    "resolution_only",
]
