"""Relational facts ``R(t_1, ..., t_k)`` over constants and nulls."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.db.terms import Null, Term, is_null


class Fact:
    """An immutable fact: a relation name applied to a tuple of terms.

    Facts are value objects (hashable, comparable) so databases can be plain
    Python sets, which gives us the paper's set semantics for free.
    """

    __slots__ = ("_relation", "_terms")

    def __init__(self, relation: str, terms: Iterable[Term]) -> None:
        if not relation:
            raise ValueError("relation name must be non-empty")
        term_tuple = tuple(terms)
        if not term_tuple:
            raise ValueError(
                "facts must have arity >= 1 (the paper assumes arity(R) >= 1)"
            )
        self._relation = relation
        self._terms = term_tuple

    @property
    def relation(self) -> str:
        return self._relation

    @property
    def terms(self) -> tuple[Term, ...]:
        return self._terms

    @property
    def arity(self) -> int:
        return len(self._terms)

    def nulls(self) -> set[Null]:
        """The set of distinct nulls occurring in this fact."""
        return {term for term in self._terms if is_null(term)}

    def null_positions(self) -> list[int]:
        """Indices of positions holding nulls."""
        return [i for i, term in enumerate(self._terms) if is_null(term)]

    def constants(self) -> set[Term]:
        """The set of distinct constants occurring in this fact."""
        return {term for term in self._terms if not is_null(term)}

    def is_ground(self) -> bool:
        """True when the fact contains no nulls."""
        return not any(is_null(term) for term in self._terms)

    def substitute(self, valuation: dict[Null, Term]) -> "Fact":
        """Replace nulls by their images under ``valuation`` (others kept)."""
        return Fact(
            self._relation,
            tuple(
                valuation.get(term, term) if is_null(term) else term
                for term in self._terms
            ),
        )

    def __iter__(self) -> Iterator[Term]:
        return iter(self._terms)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fact)
            and other._relation == self._relation
            and other._terms == self._terms
        )

    def __hash__(self) -> int:
        return hash((self._relation, self._terms))

    def __repr__(self) -> str:
        return "%s(%s)" % (
            self._relation,
            ", ".join(repr(term) for term in self._terms),
        )

    def __lt__(self, other: "Fact") -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return (self._relation, tuple(map(repr, self._terms))) < (
            other._relation,
            tuple(map(repr, other._terms)),
        )
