"""Bag-semantics completions (a future-work item of Section 8).

The paper works under set semantics — ``ν(D)`` collapses duplicate facts,
which is the very reason ``#Val`` and ``#Comp`` differ.  Its final remarks
propose studying the problems under *bag semantics*, where a completion
keeps one (multiset) occurrence per fact of ``T``.  This module implements
that variant so the relationship can be explored:

* a :class:`BagDatabase` is a multiset of ground facts;
* two valuations yield the same bag completion iff they agree on every
  null *up to the table's symmetries* — in particular, for tables whose
  facts are pairwise distinct as *patterns*, bag completions are in
  bijection with valuations, so ``#Comp_bag(q) = #Val(q)`` there;
* in general ``#Comp(q) <= #Comp_bag(q) <= #Val(q)`` — both inequalities
  are strict on small examples exercised in the tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping

from repro.core.query import BooleanQuery
from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term
from repro.db.valuation import iter_valuations
from repro.eval.evaluate import evaluate


class BagDatabase:
    """A complete database under bag semantics: facts with multiplicity."""

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._facts: Counter = Counter()
        for fact in facts:
            if not fact.is_ground():
                raise ValueError("bag databases cannot contain nulls")
            self._facts[fact] += 1

    @property
    def multiplicities(self) -> Mapping[Fact, int]:
        return dict(self._facts)

    def multiplicity(self, fact: Fact) -> int:
        return self._facts.get(fact, 0)

    def to_set_database(self) -> Database:
        """The set-semantics projection (drop multiplicities)."""
        return Database(self._facts.keys())

    def __len__(self) -> int:
        """Total number of fact occurrences."""
        return sum(self._facts.values())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BagDatabase) and other._facts == self._facts

    def __hash__(self) -> int:
        return hash(frozenset(self._facts.items()))

    def __repr__(self) -> str:
        return "BagDatabase(%d occurrences of %d facts)" % (
            len(self),
            len(self._facts),
        )


def apply_valuation_bag(
    db: IncompleteDatabase, valuation: Mapping[Null, Term]
) -> BagDatabase:
    """The bag completion: substitute, *keep* duplicates."""
    return BagDatabase(fact.substitute(dict(valuation)) for fact in db.facts)


def iter_bag_completions(db: IncompleteDatabase) -> Iterator[BagDatabase]:
    """Distinct bag completions of ``D``."""
    seen: set[BagDatabase] = set()
    for valuation in iter_valuations(db):
        completion = apply_valuation_bag(db, valuation)
        if completion not in seen:
            seen.add(completion)
            yield completion


def count_bag_completions(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> int:
    """``#Comp_bag(q)(D)``: distinct bag completions satisfying ``q``.

    Query satisfaction is evaluated on the set projection — Boolean CQ
    semantics is insensitive to multiplicities.
    """
    count = 0
    for completion in iter_bag_completions(db):
        if query is None or evaluate(query, completion.to_set_database()):
            count += 1
    return count
