"""A queryable index of the paper's results and where they live here.

For a reproduction repository, traceability from statement to code is part
of the deliverable: every theorem, proposition and lemma that is realized
somewhere in this codebase is registered below with the modules that
implement it and the tests/benches that verify it.  The CLI exposes this
via ``repro-count cite <result>``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperResult:
    """One numbered statement of the paper, mapped to its realization."""

    identifier: str
    statement: str
    implemented_by: tuple[str, ...]
    verified_by: tuple[str, ...]
    notes: str = ""


_RESULTS: tuple[PaperResult, ...] = (
    PaperResult(
        "Definition 3.1",
        "the pattern preorder on sjfBCQs",
        ("repro.core.patterns.is_pattern_of",
         "repro.core.patterns.find_pattern_embedding"),
        ("tests/test_core_patterns.py",),
        "general decision procedure + closed-form detectors, cross-checked",
    ),
    PaperResult(
        "Lemma 3.3 / Lemma 4.1",
        "pattern reductions preserve #Val and #Comp parsimoniously",
        ("repro.reductions.pattern.transfer_database",),
        ("tests/test_reductions_pattern.py",),
        "Codd preservation caveat documented in the module docstring",
    ),
    PaperResult(
        "Proposition 3.4",
        "#Valu(R(x,x)) is #P-hard (from #3COL, fixed domain {1,2,3})",
        ("repro.reductions.coloring",),
        ("tests/test_reductions_valuations.py",
         "benchmarks/bench_table1_valuations.py"),
    ),
    PaperResult(
        "Proposition 3.5 (+ A.3, A.8)",
        "#ValCd(R(x)∧S(x)) is #P-hard (from #Avoidance on bipartite graphs)",
        ("repro.reductions.avoidance", "repro.graphs.avoidance"),
        ("tests/test_reductions_valuations.py",
         "tests/test_graphs_avoidance.py"),
    ),
    PaperResult(
        "Theorem 3.6",
        "#Val dichotomy on naive non-uniform tables",
        ("repro.exact.val_nonuniform", "repro.core.classify"),
        ("tests/test_exact_valuations.py", "tests/test_core_classify.py"),
    ),
    PaperResult(
        "Theorem 3.7",
        "#ValCd dichotomy on Codd tables",
        ("repro.exact.val_codd", "repro.core.classify"),
        ("tests/test_exact_valuations.py",),
    ),
    PaperResult(
        "Proposition 3.8",
        "#Valu hard patterns path / double-edge (from #IS, domain {0,1})",
        ("repro.reductions.independent_set",),
        ("tests/test_reductions_valuations.py",),
    ),
    PaperResult(
        "Theorem 3.9 (+ Ex. 3.10, A.11-A.14)",
        "#Valu dichotomy on uniform naive tables",
        ("repro.exact.val_uniform",),
        ("tests/test_exact_valuations.py", "tests/test_paper_examples.py"),
        "value-type/Möbius realization of the Prop. A.14 nested sums",
    ),
    PaperResult(
        "Proposition 3.11",
        "#ValuCd(path) is #P-hard (from #BIS via surjection interpolation)",
        ("repro.reductions.bis", "repro.util.linear"),
        ("tests/test_reductions_valuations.py", "tests/test_util_linear.py"),
    ),
    PaperResult(
        "Proposition 4.2",
        "#CompCd(R(x)) is #P-hard (parsimonious, from #VC)",
        ("repro.reductions.vertex_cover",),
        ("tests/test_reductions_completions.py",),
    ),
    PaperResult(
        "Theorems 4.3 / 4.4 (+ Lemma B.2, Prop. B.1)",
        "#Comp hard everywhere non-uniform; in #P for Codd tables",
        ("repro.exact.completion_check", "repro.core.classify"),
        ("tests/test_exact_completions.py",),
    ),
    PaperResult(
        "Proposition 4.5",
        "#Compu(R(x,x)/R(x,y)) hard on naive (from #IS) and Codd (from #PF)",
        ("repro.reductions.independent_set", "repro.reductions.pseudoforest",
         "repro.graphs.pseudoforest", "repro.graphs.matroid"),
        ("tests/test_reductions_completions.py",
         "tests/test_graphs_matroid.py"),
    ),
    PaperResult(
        "Theorems 4.6 / 4.7 (+ App. B.6)",
        "#Compu dichotomy: FP for unary schemas",
        ("repro.exact.comp_uniform", "repro.util.ilp"),
        ("tests/test_exact_completions.py", "tests/test_util_ilp.py"),
        "composition-shape refinement of the Eq. (7) profile enumeration",
    ),
    PaperResult(
        "Corollary 5.3 (+ Prop. 5.2, Thm. 5.1)",
        "#Val(q) has an FPRAS for every union of BCQs",
        ("repro.approx.events", "repro.approx.fpras",
         "repro.approx.sampler"),
        ("tests/test_approx.py", "benchmarks/bench_approximation.py"),
        "Karp-Luby realization; uniform generation included",
    ),
    PaperResult(
        "Theorem 5.5",
        "no FPRAS for #Comp(Cd) unless NP = RP",
        ("repro.reductions.vertex_cover", "repro.core.classify"),
        ("tests/test_core_classify.py",),
    ),
    PaperResult(
        "Proposition 5.6 / Theorem 5.7",
        "no FPRAS for #Compu unless NP = RP (3-colorability gap gadget)",
        ("repro.reductions.gap3col",),
        ("tests/test_reductions_completions.py",
         "benchmarks/bench_approximation.py"),
    ),
    PaperResult(
        "Proposition 6.1 (+ Lemma D.1)",
        "#Compu(q) outside #P unless NP ⊆ SPP",
        ("repro.reductions.spanp.pad_with_fresh_facts",
         "repro.complexity.classes"),
        ("tests/test_reductions_spanp.py",),
    ),
    PaperResult(
        "Theorem 6.3",
        "#Compu(¬q) is SpanP-complete (from #k3SAT, parsimonious)",
        ("repro.reductions.spanp", "repro.complexity.cnf"),
        ("tests/test_reductions_spanp.py", "benchmarks/bench_beyond_p.py"),
    ),
    PaperResult(
        "Theorem 6.4",
        "#Valu SpanP-complete for a fixed NP-checkable query "
        "(from #HamSubgraphs)",
        ("repro.reductions.hamiltonian", "repro.graphs.hamilton"),
        ("tests/test_reductions_spanp.py", "tests/test_graphs_hamilton.py"),
    ),
    PaperResult(
        "Table 1",
        "the seven dichotomies, as a decision procedure",
        ("repro.core.classify",),
        ("tests/test_core_classify.py", "benchmarks/bench_classifier.py"),
    ),
    PaperResult(
        "Figure 1 / Examples 2.1-2.2",
        "the worked running example",
        ("repro.db.valuation", "repro.exact.brute"),
        ("tests/test_db_valuation.py", "tests/test_exact_brute.py",
         "benchmarks/bench_figure1.py"),
    ),
)


def all_results() -> tuple[PaperResult, ...]:
    """Every indexed result, in paper order."""
    return _RESULTS


def find_results(text: str) -> list[PaperResult]:
    """Results whose identifier or statement contains ``text``
    (case-insensitive substring match)."""
    needle = text.strip().lower()
    return [
        result
        for result in _RESULTS
        if needle in result.identifier.lower()
        or needle in result.statement.lower()
    ]


def format_result(result: PaperResult) -> str:
    """Human-readable rendering for the CLI."""
    lines = [
        "%s — %s" % (result.identifier, result.statement),
        "  implemented by: %s" % ", ".join(result.implemented_by),
        "  verified by:    %s" % ", ".join(result.verified_by),
    ]
    if result.notes:
        lines.append("  notes:          %s" % result.notes)
    return "\n".join(lines)
