"""repro: a reproduction of "Counting Problems over Incomplete Databases".

Arenas, Barcelo, Monet — PODS 2020 (arXiv:1912.11064).

Public API highlights::

    from repro import (
        Atom, BCQ, Fact, IncompleteDatabase, Null,
        classify, count_valuations, count_completions,
    )
"""

from repro.core.query import Atom, BCQ, Const, Negation, UCQ, Var
from repro.core.classify import classify
from repro.db import Database, Fact, IncompleteDatabase, Null
from repro.exact import count_completions, count_valuations

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "BCQ",
    "Const",
    "Negation",
    "UCQ",
    "Var",
    "classify",
    "Database",
    "Fact",
    "IncompleteDatabase",
    "Null",
    "count_completions",
    "count_valuations",
    "__version__",
]
