"""repro: a reproduction of "Counting Problems over Incomplete Databases".

Arenas, Barcelo, Monet — PODS 2020 (arXiv:1912.11064).

Public API highlights::

    from repro import (
        Atom, BCQ, Fact, IncompleteDatabase, Null,
        classify, solve, count_valuations, count_completions,
    )

:func:`solve` is the unified front door — one call for every planner
problem (``val``, ``comp``, ``val-weighted``, ``marginals``, ``sweep``)
returning a structured :class:`Answer`; the per-problem functions remain
as thin wrappers.
"""

from repro.core.query import Atom, BCQ, Const, Negation, UCQ, Var
from repro.core.classify import classify
from repro.db import Database, Fact, IncompleteDatabase, Null
from repro.exact import (
    Answer,
    NoPolynomialAlgorithm,
    Plan,
    count_completions,
    count_valuations,
    count_valuations_sweep,
    count_valuations_weighted,
    plan_completions,
    plan_sweep,
    plan_valuations,
    plan_valuations_weighted,
    solve,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "BCQ",
    "Const",
    "Negation",
    "UCQ",
    "Var",
    "classify",
    "Database",
    "Fact",
    "IncompleteDatabase",
    "Null",
    "Answer",
    "NoPolynomialAlgorithm",
    "Plan",
    "count_completions",
    "count_valuations",
    "count_valuations_sweep",
    "count_valuations_weighted",
    "plan_completions",
    "plan_sweep",
    "plan_valuations",
    "plan_valuations_weighted",
    "solve",
    "__version__",
]
