"""Naive Monte-Carlo estimation of ``#Val`` (the non-FPRAS baseline).

Sampling valuations uniformly and scaling the acceptance fraction by the
total valuation count is unbiased but is *not* an FPRAS: when
``#Val(q)(D)`` is an exponentially small fraction of the valuation space,
polynomially many samples see no accepting valuation at all.  The benchmark
suite contrasts this estimator with the Karp-Luby FPRAS on exactly such
instances.

Like :mod:`repro.approx.fpras`, randomness is explicit (``seed`` or
``rng``, never the global ``random`` state) and the whole sample batch is
evaluated against null domains sorted once up front, so batch runs through
:mod:`repro.engine` are reproducible and don't pay a per-sample sort.
"""

from __future__ import annotations

import random

from repro.approx.fpras import resolve_rng
from repro.core.query import BooleanQuery
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term
from repro.db.valuation import apply_valuation, count_total_valuations
from repro.eval.evaluate import evaluate


def _sorted_domains(db: IncompleteDatabase) -> list[tuple[Null, list[Term]]]:
    """Each null with its domain in a deterministic sampling order."""
    domains: list[tuple[Null, list[Term]]] = []
    for null in db.nulls:
        domain = sorted(db.domain_of(null), key=repr)
        if not domain:
            raise ValueError("null %r has an empty domain" % (null,))
        domains.append((null, domain))
    return domains


def sample_valuation(
    db: IncompleteDatabase, rng: random.Random
) -> dict[Null, Term]:
    """One uniform valuation of ``db``."""
    return {null: rng.choice(domain) for null, domain in _sorted_domains(db)}


def naive_monte_carlo_valuations(
    db: IncompleteDatabase,
    query: BooleanQuery,
    samples: int,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> float:
    """Unbiased (but non-FPRAS) estimate of ``#Val(q)(D)``."""
    if samples <= 0:
        raise ValueError("need at least one sample")
    generator = resolve_rng(seed, rng)
    total = count_total_valuations(db)
    if total == 0:
        return 0.0
    domains = _sorted_domains(db)
    hits = 0
    for _ in range(samples):
        valuation = {
            null: generator.choice(domain) for null, domain in domains
        }
        if evaluate(query, apply_valuation(db, valuation)):
            hits += 1
    return total * hits / samples
