"""Randomized approximation of ``#Val`` (Section 5).

Corollary 5.3: ``#Val(q)`` admits an FPRAS for every union of BCQs.  The
paper derives this from SpanL membership (Prop. 5.2 + Theorem 5.1 [Arenas,
Croquevielle, Jayaram, Riveros 2019]); we realize the same guarantee with
the classic Karp-Luby union-of-events estimator, whose events are the
consistent embeddings of query atoms into facts — see
:mod:`repro.approx.events`.

The naive Monte-Carlo estimator is included as the baseline whose failure
mode (vanishing acceptance probability) motivates the FPRAS, and as the
contrast class for ``#Comp``, which by Theorem 5.5 / Prop. 5.6 has *no*
FPRAS at all unless NP = RP.
"""

from repro.approx.events import EmbeddingEvent, enumerate_events
from repro.approx.fpras import KarpLubyEstimator, fpras_count_valuations
from repro.approx.montecarlo import naive_monte_carlo_valuations
from repro.approx.sampler import (
    CircuitValuationSampler,
    NoSatisfyingValuation,
    SatisfyingValuationSampler,
)

__all__ = [
    "EmbeddingEvent",
    "enumerate_events",
    "KarpLubyEstimator",
    "fpras_count_valuations",
    "naive_monte_carlo_valuations",
    "CircuitValuationSampler",
    "NoSatisfyingValuation",
    "SatisfyingValuationSampler",
]
