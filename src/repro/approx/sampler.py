"""Uniform generation of satisfying valuations.

The paper derives its FPRAS (Theorem 5.1) from Arenas, Croquevielle,
Jayaram and Riveros [9], whose subject is *enumeration, counting and
uniform generation* for SpanL.  Counting and uniform generation are two
faces of the same coin, and the Karp-Luby event structure gives the
classic rejection sampler:

1. draw an event ``E_i`` with probability ``w_i / W``;
2. draw ``ν`` uniform in ``E_i``;
3. accept with probability ``1 / #{j : ν ∈ E_j}``.

Accepted valuations are exactly uniform over ``{ν : ν(D) |= q}``, and the
expected number of rounds per sample is ``W / #Val(q)(D) <= m`` — so for a
fixed UCQ the sampler runs in expected polynomial time.
"""

from __future__ import annotations

import random

from repro.core.query import BCQ, UCQ
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term
from repro.approx.events import EmbeddingEvent, enumerate_events
from repro.approx.fpras import resolve_rng


class NoSatisfyingValuation(RuntimeError):
    """The query is unsatisfiable on the instance (no event exists)."""


class SatisfyingValuationSampler:
    """Uniform sampler over the valuations ``ν`` with ``ν(D) |= q``."""

    def __init__(
        self,
        db: IncompleteDatabase,
        query: BCQ | UCQ,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._db = db
        self._events: list[EmbeddingEvent] = enumerate_events(db, query)
        self._weights = [event.weight for event in self._events]
        self._total = sum(self._weights)
        self._rng = resolve_rng(seed, rng)
        self._cumulative: list[int] = []
        acc = 0
        for weight in self._weights:
            acc += weight
            self._cumulative.append(acc)

    @property
    def num_events(self) -> int:
        return len(self._events)

    def _draw_event_index(self) -> int:
        target = self._rng.randrange(self._total)
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] > target:
                high = mid
            else:
                low = mid + 1
        return low

    def sample(self, max_rounds: int | None = None) -> dict[Null, Term]:
        """One uniform satisfying valuation (rejection sampling).

        Raises :class:`NoSatisfyingValuation` when no valuation satisfies
        the query, and ``RuntimeError`` if ``max_rounds`` rejections occur
        (``None`` = unbounded; the expected round count is at most the
        number of events).
        """
        if self._total == 0:
            raise NoSatisfyingValuation(
                "query has no embedding event on this database"
            )
        rounds = 0
        while max_rounds is None or rounds < max_rounds:
            rounds += 1
            event = self._events[self._draw_event_index()]
            valuation = event.sample(self._rng)
            containing = sum(
                1 for other in self._events if other.contains(valuation)
            )
            if self._rng.random() < 1.0 / containing:
                return valuation
        raise RuntimeError(
            "rejection sampling did not accept within %d rounds" % max_rounds
        )

    def sample_many(
        self, count: int, max_rounds_each: int | None = None
    ) -> list[dict[Null, Term]]:
        """``count`` independent uniform satisfying valuations."""
        return [self.sample(max_rounds_each) for _ in range(count)]
