"""Uniform (and weighted) generation of satisfying valuations.

The paper derives its FPRAS (Theorem 5.1) from Arenas, Croquevielle,
Jayaram and Riveros [9], whose subject is *enumeration, counting and
uniform generation* for SpanL.  Counting and uniform generation are two
faces of the same coin, and two samplers realize it here:

:class:`SatisfyingValuationSampler` — the classic Karp-Luby rejection
sampler over the embedding-event structure:

1. draw an event ``E_i`` with probability ``w_i / W``;
2. draw ``ν`` uniform in ``E_i``;
3. accept with probability ``1 / #{j : ν ∈ E_j}``.

Accepted valuations are exactly uniform over ``{ν : ν(D) |= q}``, and the
expected number of rounds per sample is ``W / #Val(q)(D) <= m`` — so for a
fixed UCQ the sampler runs in expected polynomial time.

:class:`CircuitValuationSampler` — the knowledge-compilation route: the
instance is compiled once into a d-DNNF circuit
(:class:`repro.compile.backend.ValuationCircuit`) and every sample is
drawn by iterated exact conditioning — one linear circuit pass per null,
never a rejection round or a re-search.  Per-sample cost is
``O(k · |circuit|)`` for ``k`` nulls, independent of the acceptance rate
that governs the rejection sampler, and non-uniform null-value weights
are supported for free.
"""

from __future__ import annotations

import random

from repro.compile.backend import ValuationCircuit
from repro.core.query import BCQ, UCQ
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term
from repro.db.valuation import NullWeights, resolve_null_weights
from repro.approx.events import EmbeddingEvent, enumerate_events
from repro.approx.fpras import resolve_rng


class NoSatisfyingValuation(RuntimeError):
    """The query is unsatisfiable on the instance (no event exists)."""


class SatisfyingValuationSampler:
    """Uniform sampler over the valuations ``ν`` with ``ν(D) |= q``."""

    def __init__(
        self,
        db: IncompleteDatabase,
        query: BCQ | UCQ,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._db = db
        self._events: list[EmbeddingEvent] = enumerate_events(db, query)
        self._weights = [event.weight for event in self._events]
        self._total = sum(self._weights)
        self._rng = resolve_rng(seed, rng)
        self._cumulative: list[int] = []
        acc = 0
        for weight in self._weights:
            acc += weight
            self._cumulative.append(acc)

    @property
    def num_events(self) -> int:
        return len(self._events)

    def _draw_event_index(self) -> int:
        target = self._rng.randrange(self._total)
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] > target:
                high = mid
            else:
                low = mid + 1
        return low

    def sample(self, max_rounds: int | None = None) -> dict[Null, Term]:
        """One uniform satisfying valuation (rejection sampling).

        Raises :class:`NoSatisfyingValuation` when no valuation satisfies
        the query, and ``RuntimeError`` if ``max_rounds`` rejections occur
        (``None`` = unbounded; the expected round count is at most the
        number of events).
        """
        if self._total == 0:
            raise NoSatisfyingValuation(
                "query has no embedding event on this database"
            )
        rounds = 0
        while max_rounds is None or rounds < max_rounds:
            rounds += 1
            event = self._events[self._draw_event_index()]
            valuation = event.sample(self._rng)
            containing = sum(
                1 for other in self._events if other.contains(valuation)
            )
            if self._rng.random() < 1.0 / containing:
                return valuation
        raise RuntimeError(
            "rejection sampling did not accept within %d rounds" % max_rounds
        )

    def sample_many(
        self, count: int, max_rounds_each: int | None = None
    ) -> list[dict[Null, Term]]:
        """``count`` independent uniform satisfying valuations."""
        return [self.sample(max_rounds_each) for _ in range(count)]


class CircuitValuationSampler:
    """Exact sampler over ``{ν : ν(D) |= q}`` via a compiled circuit.

    Compiles ``(D, q)`` once (the expensive step); each :meth:`sample`
    then draws by iterated conditioning — one marginal pass per null, so
    ``k`` linear circuit passes per sample and never a rejection round.
    The cost per sample is therefore independent of the acceptance rate
    that governs :class:`SatisfyingValuationSampler`.  ``weights`` biases
    the draw to ``P[ν] ∝ prod_⊥ w(⊥, ν(⊥))`` (exact for int/Fraction
    weights); the default is uniform.  The same API as the rejection
    sampler, with ``max_rounds`` accepted and ignored — conditioning
    cannot fail on a satisfiable instance.
    """

    def __init__(
        self,
        db: IncompleteDatabase,
        query: BCQ | UCQ,
        seed: int | None = None,
        rng: random.Random | None = None,
        weights: NullWeights | None = None,
    ) -> None:
        self._compiled = ValuationCircuit(db, query)
        if weights is not None:
            # Malformed tables fail here, eagerly, so the ValueError the
            # sampling path wraps into NoSatisfyingValuation can only
            # mean "zero satisfying mass".
            resolve_null_weights(db, weights)
        self._weights = weights
        self._rng = resolve_rng(seed, rng)

    @property
    def count(self) -> int:
        """``#Val(q)(D)`` — the sampler knows the exact count for free."""
        return self._compiled.count()

    @property
    def circuit(self):
        """The underlying compiled :class:`ValuationCircuit`."""
        return self._compiled

    def sample(self, max_rounds: int | None = None) -> dict[Null, Term]:
        """One exactly-distributed satisfying valuation.

        Raises :class:`NoSatisfyingValuation` when the query is
        unsatisfiable on the instance — or when the weight tables assign
        zero mass to every satisfying valuation, which is the same
        situation under the sampling distribution.
        """
        del max_rounds  # rejection-free: kept for API compatibility
        try:
            return self._compiled.sample_valuation(
                rng=self._rng, weights=self._weights
            )
        except ValueError as exc:
            raise NoSatisfyingValuation(
                "query has no satisfying valuation of nonzero weight "
                "on this database"
            ) from exc

    def sample_many(
        self, count: int, max_rounds_each: int | None = None
    ) -> list[dict[Null, Term]]:
        """``count`` independent exactly-distributed valuations."""
        return [self.sample(max_rounds_each) for _ in range(count)]
