"""Karp-Luby FPRAS for ``#Val(q)`` over unions of BCQs (Corollary 5.3).

The coverage (union-of-sets) estimator of Karp, Luby and Madras: with
events ``E_1..E_m`` of known weights ``w_i = |E_i|`` and ``W = sum w_i``,
repeat: draw event ``i`` with probability ``w_i / W``, draw ``ν`` uniform in
``E_i``, record ``X = 1 / #{j : ν in E_j}``.  Then ``E[W X] = |E_1 ∪ ... ∪
E_m| = #Val(q)(D)``.

Since ``X ∈ [1/m, 1]``, a multiplicative Chernoff bound gives relative
error ``ε`` with confidence ``1 - δ`` after
``t = ceil(3 m ln(2/δ) / ε²)`` samples — polynomial in the input and
``1/ε`` because ``m <= |D|^{|atoms|}`` for a fixed query.  That matches the
FPRAS definition of Section 5 (whose fixed confidence is 3/4; we expose
``δ``).

Randomness is always explicit: pass ``seed`` (an int) or ``rng`` (a
``random.Random``) — never the global ``random`` state — so batch runs
through :mod:`repro.engine` are reproducible job by job.  Samples are
evaluated in batches against choice structures precomputed once per
estimator (cumulative weights for event selection, sorted domains inside
each event), which is what makes many-sample batch jobs cheap.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass

from repro.core.query import BCQ, UCQ
from repro.db.incomplete import IncompleteDatabase
from repro.approx.events import EmbeddingEvent, enumerate_events


def resolve_rng(
    seed: int | None = None, rng: random.Random | None = None
) -> random.Random:
    """An explicit generator from either a seed or a caller-owned ``rng``.

    Passing both is an error — silently preferring one would make batch
    reproducibility depend on an invisible precedence rule.
    """
    if rng is not None:
        if seed is not None:
            raise ValueError("pass either seed or rng, not both")
        return rng
    return random.Random(seed)


@dataclass(frozen=True)
class EstimateReport:
    """An estimate together with the parameters that produced it."""

    estimate: float
    samples: int
    num_events: int
    total_event_weight: int


class KarpLubyEstimator:
    """Reusable estimator for ``#Val(q)(D)``, ``q`` a BCQ or UCQ."""

    def __init__(
        self,
        db: IncompleteDatabase,
        query: BCQ | UCQ,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._db = db
        self._query = query
        self._events: list[EmbeddingEvent] = enumerate_events(db, query)
        self._weights = [event.weight for event in self._events]
        self._total_weight = sum(self._weights)
        self._rng = resolve_rng(seed, rng)
        # cumulative weights for O(log m) event sampling
        self._cumulative: list[int] = []
        acc = 0
        for weight in self._weights:
            acc += weight
            self._cumulative.append(acc)

    @property
    def num_events(self) -> int:
        return len(self._events)

    @property
    def total_event_weight(self) -> int:
        """``W = sum |E_i|`` — an upper bound on ``#Val(q)(D)``."""
        return self._total_weight

    def _draw(self) -> float:
        """One coverage sample ``X = 1/#{j : ν ∈ E_j}``."""
        target = self._rng.randrange(self._total_weight)
        index = bisect_right(self._cumulative, target)
        valuation = self._events[index].sample(self._rng)
        containing = sum(
            1 for event in self._events if event.contains(valuation)
        )
        return 1.0 / containing

    def sample_count(self, epsilon: float, delta: float = 0.25) -> int:
        """The Chernoff-derived number of coverage samples."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ValueError("need 0 < epsilon < 1 and 0 < delta < 1")
        m = max(1, len(self._events))
        return math.ceil(3.0 * m * math.log(2.0 / delta) / epsilon**2)

    def estimate(
        self, epsilon: float, delta: float = 0.25
    ) -> EstimateReport:
        """(ε, δ)-approximation of ``#Val(q)(D)``.

        ``delta`` defaults to 1/4, matching the paper's FPRAS definition
        (success probability >= 3/4).
        """
        return self.estimate_with_samples(self.sample_count(epsilon, delta))

    def estimate_with_samples(self, samples: int) -> EstimateReport:
        """Coverage estimate from one batch of ``samples`` draws."""
        if samples <= 0:
            raise ValueError("need at least one sample")
        if self._total_weight == 0:
            # No event: no valuation can satisfy the query.
            return EstimateReport(0.0, samples, 0, 0)
        draw = self._draw
        acc = 0.0
        for _ in range(samples):
            acc += draw()
        mean = acc / samples
        return EstimateReport(
            estimate=mean * self._total_weight,
            samples=samples,
            num_events=len(self._events),
            total_event_weight=self._total_weight,
        )


def fpras_count_valuations(
    db: IncompleteDatabase,
    query: BCQ | UCQ,
    epsilon: float = 0.1,
    delta: float = 0.25,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> float:
    """One-shot FPRAS estimate of ``#Val(q)(D)`` (Corollary 5.3)."""
    estimator = KarpLubyEstimator(db, query, seed=seed, rng=rng)
    return estimator.estimate(epsilon, delta).estimate
