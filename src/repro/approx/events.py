"""Embedding events: the union structure behind the ``#Val`` FPRAS.

A valuation ``ν`` satisfies a BCQ ``q`` on ``D`` iff some *embedding* — an
assignment of each atom of ``q`` to a fact of ``D`` over the same relation —
becomes a homomorphic image under ``ν``.  Each embedding therefore defines
an **event**: the set of valuations consistent with it.  Unifying the fact
terms sitting at equal-variable positions (union–find) turns the event into
a product set:

* each equivalence class of nulls must take a single value from the
  intersection of its members' domains (and equal any constant unified in);
* all remaining nulls are free.

So event weights are products of set sizes, uniform sampling inside an
event is positionwise, and membership of a valuation in an event is a scan —
the three ingredients the Karp-Luby estimator needs.  The number of events
is at most ``|D|^{|atoms|}``, polynomial for a fixed query, and
``#Val(q)(D) = |union of all events|``.
"""

from __future__ import annotations

import random
from itertools import product
from typing import Iterator, Sequence

from repro.core.query import Atom, BCQ, Const, UCQ, Var
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term, is_null
from repro.util.unionfind import UnionFind


class EmbeddingEvent:
    """One consistent embedding of the query's atoms into facts of ``D``.

    Exposes exactly what Karp-Luby needs: ``weight`` (= ``|E|``),
    ``sample`` (uniform member), and ``contains``.
    """

    def __init__(
        self,
        db: IncompleteDatabase,
        classes: list[tuple[frozenset[Null], frozenset[Term]]],
    ) -> None:
        self._db = db
        #: (nulls of the class, allowed values) — pairwise disjoint classes.
        self._classes = classes
        constrained: set[Null] = set()
        for nulls, _allowed in classes:
            constrained |= nulls
        self._free = [null for null in db.nulls if null not in constrained]
        # Sorted choice lists, built on first sample: estimators draw from
        # each event thousands of times, so sorting per draw is a hot path.
        self._choices: tuple[
            list[tuple[tuple[Null, ...], list[Term]]],
            list[tuple[Null, list[Term]]],
        ] | None = None

    @property
    def weight(self) -> int:
        """``|E|``: number of valuations in the event."""
        total = 1
        for _nulls, allowed in self._classes:
            total *= len(allowed)
        for null in self._free:
            total *= len(self._db.domain_of(null))
        return total

    def _materialize(
        self,
    ) -> tuple[
        list[tuple[tuple[Null, ...], list[Term]]],
        list[tuple[Null, list[Term]]],
    ]:
        if self._choices is None:
            self._choices = (
                [
                    (tuple(nulls), sorted(allowed, key=repr))
                    for nulls, allowed in self._classes
                ],
                [
                    (null, sorted(self._db.domain_of(null), key=repr))
                    for null in self._free
                ],
            )
        return self._choices

    def sample(self, rng: random.Random) -> dict[Null, Term]:
        """A uniform valuation from the event (weight must be positive)."""
        class_choices, free_choices = self._materialize()
        valuation: dict[Null, Term] = {}
        for nulls, allowed in class_choices:
            value = rng.choice(allowed)
            for null in nulls:
                valuation[null] = value
        for null, domain in free_choices:
            valuation[null] = rng.choice(domain)
        return valuation

    def contains(self, valuation: dict[Null, Term]) -> bool:
        """Does this event contain the valuation?"""
        for nulls, allowed in self._classes:
            values = {valuation[null] for null in nulls}
            if len(values) != 1 or next(iter(values)) not in allowed:
                return False
        return True


def _node(kind: str, payload: object) -> tuple[str, object]:
    """Tagged union-find node; tags keep variables, db terms and query
    constants in disjoint namespaces (a db constant may itself be any
    hashable value, including tuples)."""
    return (kind, payload)


def _unify_embedding(
    db: IncompleteDatabase, atoms: Sequence[Atom], facts: Sequence[Fact]
) -> EmbeddingEvent | None:
    """Build the event for one atom->fact assignment, or ``None`` if the
    required equalities are unsatisfiable."""
    union_find: UnionFind[tuple[str, object]] = UnionFind()
    # Map each variable to a canonical node; unify with the terms below it.
    for atom, fact in zip(atoms, facts):
        if atom.relation != fact.relation or atom.arity != fact.arity:
            return None
        for query_term, db_term in zip(atom.terms, fact.terms):
            db_node = (
                _node("null", db_term)
                if is_null(db_term)
                else _node("const", db_term)
            )
            if isinstance(query_term, Const):
                if is_null(db_term):
                    union_find.union(_node("const", query_term.value), db_node)
                elif query_term.value != db_term:
                    return None
            else:
                assert isinstance(query_term, Var)
                union_find.union(_node("var", query_term.name), db_node)

    classes: list[tuple[frozenset[Null], frozenset[Term]]] = []
    for _root, members in union_find.classes().items():
        nulls = frozenset(
            payload for kind, payload in members if kind == "null"
        )
        constants = {payload for kind, payload in members if kind == "const"}
        if len(constants) > 1:
            return None
        if not nulls:
            continue  # a variable resting on constants only: no constraint
        allowed: frozenset[Term] | None = None
        for null in nulls:
            domain = db.domain_of(null)
            allowed = domain if allowed is None else allowed & domain
        assert allowed is not None
        if constants:
            allowed &= frozenset(constants)
        if not allowed:
            return None
        classes.append((frozenset(nulls), allowed))
    return EmbeddingEvent(db, classes)


def _bcq_events(
    db: IncompleteDatabase, query: BCQ
) -> Iterator[EmbeddingEvent]:
    atom_list = list(query.atoms)
    fact_choices = [sorted(db.relation(atom.relation)) for atom in atom_list]
    if any(not choices for choices in fact_choices):
        return
    for facts in product(*fact_choices):
        event = _unify_embedding(db, atom_list, facts)
        if event is not None and event.weight > 0:
            yield event


def enumerate_events(
    db: IncompleteDatabase, query: BCQ | UCQ
) -> list[EmbeddingEvent]:
    """All embedding events of ``query`` on ``db``.

    ``#Val(q)(D)`` equals the size of the union of the returned events; for
    a UCQ the events of all disjuncts are pooled (the union semantics of
    disjunction is union of events).
    """
    if isinstance(query, BCQ):
        return list(_bcq_events(db, query))
    if isinstance(query, UCQ):
        events: list[EmbeddingEvent] = []
        for disjunct in query.disjuncts:
            events.extend(_bcq_events(db, disjunct))
        return events
    raise TypeError(
        "events are defined for BCQs and UCQs; got %s" % type(query).__name__
    )
