"""Exhaustive counting of valuations and completions (ground truth).

These counters realize the problem *definitions* of Section 2 directly:
enumerate every valuation, apply it, evaluate the query.  They are
exponential in the number of nulls — which is exactly the behaviour the
#P-hardness results predict for the hard dichotomy cells — and serve as the
reference implementation that every polynomial-time algorithm and every
reduction is tested against.
"""

from __future__ import annotations

from repro.core.query import BooleanQuery
from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.valuation import (
    NullWeights,
    count_total_valuations,
    iter_valuations,
    resolve_null_weights,
)
from repro.eval.evaluate import evaluate


class BruteForceBudgetExceeded(RuntimeError):
    """The instance has more valuations than the enumeration budget."""


#: Default maximum number of valuations the brute-force counters will visit.
DEFAULT_BUDGET = 2_000_000


def _check_budget(db: IncompleteDatabase, budget: int | None) -> None:
    if budget is None:
        return
    total = count_total_valuations(db)
    if total > budget:
        raise BruteForceBudgetExceeded(
            "instance has %d valuations, budget is %d; raise `budget` or "
            "use a polynomial algorithm" % (total, budget)
        )


def _iter_substituted_fact_sets(db: IncompleteDatabase):
    """Yield the substituted fact set of every valuation, fast.

    Internal hot path: skips the per-valuation domain validation of
    :func:`apply_valuation` (the enumerator only produces valid valuations)
    and avoids constructing :class:`Database` objects until needed.
    """
    facts = sorted(db.facts)
    for valuation in iter_valuations(db):
        yield frozenset(fact.substitute(valuation) for fact in facts)


def count_valuations_brute(
    db: IncompleteDatabase,
    query: BooleanQuery,
    budget: int | None = DEFAULT_BUDGET,
) -> int:
    """``#Val(q)(D)`` by definition: enumerate valuations, evaluate ``q``.

    Distinct valuations often collapse to the same completion; ``q`` is
    evaluated once per distinct completion and the verdict reused.
    """
    _check_budget(db, budget)
    verdicts: dict[frozenset[Fact], bool] = {}
    count = 0
    for fact_set in _iter_substituted_fact_sets(db):
        verdict = verdicts.get(fact_set)
        if verdict is None:
            verdict = evaluate(query, Database(fact_set))
            verdicts[fact_set] = verdict
        if verdict:
            count += 1
    return count


def count_valuations_weighted_brute(
    db: IncompleteDatabase,
    query: BooleanQuery,
    weights: NullWeights | None = None,
    budget: int | None = DEFAULT_BUDGET,
):
    """Weighted ``#Val`` by definition: each satisfying valuation adds its
    product of per-null value weights.

    The uniform all-ones convention recovers
    :func:`count_valuations_brute`; arbitrary int/Fraction weights stay
    exact.  This is the ground truth the circuit backend's
    ``weighted_count`` is tested against.
    """
    _check_budget(db, budget)
    resolved = resolve_null_weights(db, weights)
    nulls = db.nulls
    facts = sorted(db.facts)
    verdicts: dict[frozenset[Fact], bool] = {}
    total: object = 0
    for valuation in iter_valuations(db):
        fact_set = frozenset(fact.substitute(valuation) for fact in facts)
        verdict = verdicts.get(fact_set)
        if verdict is None:
            verdict = evaluate(query, Database(fact_set))
            verdicts[fact_set] = verdict
        if verdict:
            weight: object = 1
            for null in nulls:
                weight = weight * resolved[null][valuation[null]]  # type: ignore[operator]
            total = total + weight  # type: ignore[operator]
    return total


def count_completions_brute(
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    budget: int | None = DEFAULT_BUDGET,
) -> int:
    """``#Comp(q)(D)`` by definition: enumerate *distinct* completions.

    With ``query=None`` counts all completions of ``D`` — itself a #P-hard
    quantity in general (Prop. 4.2 makes it hard already for a single unary
    relation in the non-uniform setting).
    """
    _check_budget(db, budget)
    seen: set[frozenset[Fact]] = set()
    count = 0
    for fact_set in _iter_substituted_fact_sets(db):
        if fact_set in seen:
            continue
        seen.add(fact_set)
        if query is None or evaluate(query, Database(fact_set)):
            count += 1
    return count


def valuation_completion_gap(
    db: IncompleteDatabase,
    query: BooleanQuery,
    budget: int | None = DEFAULT_BUDGET,
) -> tuple[int, int]:
    """``(#Val(q)(D), #Comp(q)(D))`` in one pass (Example 2.2's contrast)."""
    _check_budget(db, budget)
    valuations = 0
    verdicts: dict[frozenset[Fact], bool] = {}
    for fact_set in _iter_substituted_fact_sets(db):
        verdict = verdicts.get(fact_set)
        if verdict is None:
            verdict = evaluate(query, Database(fact_set))
            verdicts[fact_set] = verdict
        if verdict:
            valuations += 1
    return valuations, sum(1 for verdict in verdicts.values() if verdict)
