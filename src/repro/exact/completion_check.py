"""Completion recognition for Codd tables (Lemma B.2).

Given a Codd table ``D`` and a set ``S`` of ground facts, decide in
polynomial time whether some valuation ``ν`` has ``ν(D) = S``.  This is the
certificate check behind the membership of ``#CompCd(q)`` in #P
(Prop. B.1 / Theorem 4.4): guess ``S``, verify it with a maximum bipartite
matching between the facts of ``D`` and the compatible facts of ``S``.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import is_null
from repro.graphs.matching import maximum_matching_size


def _fact_can_become(
    db: IncompleteDatabase, template: Fact, ground: Fact
) -> bool:
    """Whether some valuation of the template's nulls yields ``ground``.

    For a Codd table the nulls of one fact are pairwise distinct, so the
    check is positionwise: constants must agree, nulls must have the target
    value in their domain.
    """
    if template.relation != ground.relation or template.arity != ground.arity:
        return False
    for term, value in zip(template.terms, ground.terms):
        if is_null(term):
            if value not in db.domain_of(term):
                return False
        elif term != value:
            return False
    return True


def is_completion_of_codd(db: IncompleteDatabase, candidate: Database) -> bool:
    """Lemma B.2: is ``candidate`` a completion of the Codd table ``db``?

    Polynomial time: (a) every fact of ``db`` must be able to become *some*
    fact of ``candidate``; (b) a maximum matching in the bipartite graph
    (facts of ``db``) x (facts of ``candidate``) must saturate ``candidate``
    — i.e. have size ``|candidate|`` — so that every candidate fact is
    *produced* by a distinct db fact, with leftover db facts free to
    duplicate an already-produced fact (set semantics absorbs them).
    """
    if not db.is_codd:
        raise ValueError("Lemma B.2 applies to Codd tables")

    db_facts = sorted(db.facts)
    candidate_facts = sorted(candidate.facts)
    compatibility: dict[int, list[int]] = {}
    for i, template in enumerate(db_facts):
        compatible = [
            j
            for j, ground in enumerate(candidate_facts)
            if _fact_can_become(db, template, ground)
        ]
        if not compatible:
            # This fact must appear in every completion in some form, but
            # no candidate fact can absorb it: reject (condition (*)).
            return False
        compatibility[i] = compatible

    matching = maximum_matching_size(list(range(len(db_facts))), compatibility)
    return matching == len(candidate_facts)
