"""Tractable case of ``#Valu(q)`` on uniform naive tables (Theorem 3.9).

When none of ``R(x,x)``, ``R(x) ∧ S(x,y) ∧ T(y)``, ``R(x,y) ∧ S(x,y)`` is a
pattern of the sjfBCQ ``q``:

* no atom repeats a variable, and each atom contains at most one variable
  that also occurs in another atom (Lemma A.11);
* deleting the once-occurring variables (Lemma A.12) turns ``q`` into a
  conjunction of *basic singletons* — groups of unary atoms sharing one
  variable — and multiplies the count by ``d^(#nulls only in deleted
  columns)``;
* inclusion–exclusion over the components (Lemma A.13) reduces the problem
  to computing ``N_S(D)``: the number of valuations satisfying **no**
  component of ``S``.

``N_S`` is computed by a value-type generating-function method equivalent to
Prop. A.14's nested-sum construction, organized as follows.  Classify each
domain value by the set of relations where it already occurs as a constant
(its *type* τ).  A valuation is counted by ``N_S`` iff no value's *coverage*
(constant type ∪ relations reached via nulls mapped to it) contains a
component.  A per-value Möbius transform replaces the coverage predicate by
indicators ``[coverage ⊆ W]``, which factorize over the *null blocks*
(groups of nulls with equal relation-occurrence sets): a block ``s`` can
then only land on values whose chosen ``W ⊇ s``.  Aggregating values of
equal type with a polynomial DP over block-profile counts yields ``N_S`` in
time polynomial in the data (and exponential in the fixed schema, as the
paper warns).
"""

from __future__ import annotations

from itertools import combinations

from repro.core.patterns import (
    has_double_edge_pattern,
    has_path_pattern,
    has_repeated_variable_atom,
)
from repro.core.query import BCQ, Var
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term, is_null


def applies_to(query: BCQ) -> bool:
    """True when the Theorem 3.9 tractable case covers ``query``."""
    return (
        query.is_self_join_free
        and query.is_variable_only
        and not has_repeated_variable_atom(query)
        and not has_path_pattern(query)
        and not has_double_edge_pattern(query)
    )


def shared_variables(query: BCQ) -> list[Var]:
    """Variables occurring in at least two atoms (survive Lemma A.12)."""
    return [
        variable
        for variable in query.variables()
        if len(query.atoms_containing(variable)) >= 2
    ]


def basic_singleton_components(query: BCQ) -> dict[Var, frozenset[str]]:
    """The components of ``G_q`` as variable -> set of relation names.

    Valid for pattern-free queries, where every component is a clique whose
    edges all carry the same single variable (Lemma A.11).
    """
    components: dict[Var, frozenset[str]] = {}
    for variable in shared_variables(query):
        atoms = query.atoms_containing(variable)
        components[variable] = frozenset(atom.relation for atom in atoms)
    return components


def _projected_column(
    db: IncompleteDatabase, relation: str, position: int
) -> frozenset[Term]:
    """Distinct terms in one column of a relation (set semantics)."""
    return frozenset(fact.terms[position] for fact in db.relation(relation))


def _projection(
    db: IncompleteDatabase, query: BCQ
) -> tuple[dict[str, frozenset[Term]], set[Null]]:
    """Unary projections of the shared-variable columns, plus the set of
    nulls that appear in at least one projected column."""
    columns: dict[str, frozenset[Term]] = {}
    projection_nulls: set[Null] = set()
    for variable, relations in basic_singleton_components(query).items():
        for atom in query.atoms_containing(variable):
            position = list(atom.terms).index(variable)
            column = _projected_column(db, atom.relation, position)
            columns[atom.relation] = column
            projection_nulls |= {term for term in column if is_null(term)}
    return columns, projection_nulls


def count_valuations_uniform(db: IncompleteDatabase, query: BCQ) -> int:
    """``#Valu(q)(D)`` for pattern-free ``q`` (Theorem 3.9).

    Requires a uniform incomplete database; naive tables welcome.
    """
    if not applies_to(query):
        raise ValueError(
            "Theorem 3.9 requires an sjfBCQ without the patterns R(x,x), "
            "R(x)∧S(x,y)∧T(y) and R(x,y)∧S(x,y); got %r" % (query,)
        )
    if not db.is_uniform:
        raise ValueError("count_valuations_uniform requires a uniform domain")

    for relation in query.relations:
        if not db.relation(relation):
            return 0

    domain = db.uniform_domain
    d = len(domain)
    all_nulls = set(db.nulls)
    if d == 0 and all_nulls:
        return 0  # no valuation can assign the nulls

    columns, projection_nulls = _projection(db, query)
    dropped_nulls = all_nulls - projection_nulls
    components = list(basic_singleton_components(query).values())

    total = 0
    for size in range(len(components) + 1):
        for chosen in combinations(components, size):
            n_s = _count_component_avoiding(
                list(chosen), columns, domain, projection_nulls
            )
            total += -n_s if size % 2 else n_s
    return total * d ** len(dropped_nulls)


def _count_component_avoiding(
    groups: list[frozenset[str]],
    columns: dict[str, frozenset[Term]],
    domain: frozenset[Term],
    projection_nulls: set[Null],
) -> int:
    """``N_S``: valuations of the projection nulls under which no group in
    ``groups`` has a common value across all its relations."""
    d = len(domain)
    union_relations = sorted(set().union(*groups)) if groups else []
    relevant = set(union_relations)

    constants_by_relation = {
        relation: {t for t in columns[relation] if not is_null(t)}
        for relation in union_relations
    }
    nulls_by_relation = {
        relation: {t for t in columns[relation] if is_null(t)}
        for relation in union_relations
    }

    # A group already covered by one constant is satisfied by *every*
    # valuation, so no valuation avoids it.
    for group in groups:
        common = None
        for relation in group:
            constants = constants_by_relation[relation]
            common = constants if common is None else common & constants
        if common:
            return 0

    # Nulls not occurring in any relevant relation are unconstrained here.
    constrained: set[Null] = set()
    for relation in union_relations:
        constrained |= nulls_by_relation[relation]
    free_count = len(projection_nulls - constrained)

    # Null blocks: occurrence set (within the relevant relations) -> count.
    blocks: dict[frozenset[str], int] = {}
    for null in constrained:
        signature = frozenset(
            relation
            for relation in union_relations
            if null in nulls_by_relation[relation]
        )
        blocks[signature] = blocks.get(signature, 0) + 1

    # Value types: relations where the value is already a constant.
    type_counts: dict[frozenset[str], int] = {}
    for value in domain:
        value_type = frozenset(
            relation
            for relation in union_relations
            if value in constants_by_relation[relation]
        )
        type_counts[value_type] = type_counts.get(value_type, 0) + 1

    core = _coverage_count(groups, relevant, type_counts, blocks)
    return core * d**free_count


def _coverage_count(
    groups: list[frozenset[str]],
    relations: set[str],
    type_counts: dict[frozenset[str], int],
    blocks: dict[frozenset[str], int],
) -> int:
    """Count maps of block nulls to typed values with no group covered.

    Implements the Möbius-transform factorization described in the module
    docstring.  ``type_counts`` must cover the whole domain (its counts sum
    to ``d``).
    """

    def allowed(covered: frozenset[str]) -> bool:
        return not any(group <= covered for group in groups)

    relation_list = sorted(relations)
    all_subsets = [
        frozenset(chosen)
        for size in range(len(relation_list) + 1)
        for chosen in combinations(relation_list, size)
    ]

    # Möbius coefficients c_t(W) = sum_{V ⊇ W, allowed(t ∪ V)} (-1)^{|V|-|W|}.
    coefficient: dict[tuple[frozenset[str], frozenset[str]], int] = {}
    for value_type in type_counts:
        for lower in all_subsets:
            acc = 0
            for upper in all_subsets:
                if lower <= upper and allowed(value_type | upper):
                    acc += -1 if (len(upper) - len(lower)) % 2 else 1
            coefficient[(value_type, lower)] = acc

    # Two W's matter only through which blocks they absorb; group them.
    block_signatures = sorted(blocks, key=repr)

    def profile(w: frozenset[str]) -> frozenset[frozenset[str]]:
        return frozenset(s for s in block_signatures if s <= w)

    profiles = sorted({profile(w) for w in all_subsets}, key=repr)
    profile_index = {p: i for i, p in enumerate(profiles)}
    width = len(profiles)

    # Per-type linear form over profile slots.
    linear_forms: dict[frozenset[str], list[tuple[int, int]]] = {}
    for value_type in type_counts:
        slot_coefficients = [0] * width
        for w in all_subsets:
            slot_coefficients[profile_index[profile(w)]] += coefficient[
                (value_type, w)
            ]
        linear_forms[value_type] = [
            (slot, c) for slot, c in enumerate(slot_coefficients) if c != 0
        ]

    # Polynomial DP: state = how many domain values chose each profile slot.
    poly: dict[tuple[int, ...], int] = {(0,) * width: 1}
    for value_type, count in sorted(type_counts.items(), key=repr):
        form = linear_forms[value_type]
        for _ in range(count):
            next_poly: dict[tuple[int, ...], int] = {}
            for state, weight in poly.items():
                for slot, c in form:
                    bumped = list(state)
                    bumped[slot] += 1
                    key = tuple(bumped)
                    next_poly[key] = next_poly.get(key, 0) + weight * c
            poly = next_poly
            if not poly:
                return 0

    total = 0
    for state, weight in poly.items():
        term = weight
        for signature, multiplicity in blocks.items():
            slots = sum(
                state[profile_index[p]] for p in profiles if signature in p
            )
            term *= slots**multiplicity
            if term == 0:
                break
        total += term
    return total
