"""Tractable case of ``#Val(q)`` on non-uniform naive tables (Theorem 3.6).

When neither ``R(x,x)`` nor ``R(x) ∧ S(x)`` is a pattern of the sjfBCQ
``q``, every variable occurs exactly once in ``q``.  Then a completion
``ν(D)`` satisfies ``q`` iff every relation of ``sig(q)`` is non-empty in
``D`` (footnote 2 of the paper), so ``#Val(q)(D)`` is either ``0`` or the
total number of valuations — computable as the product of the domain sizes.
"""

from __future__ import annotations

from repro.core.patterns import has_repeated_variable_atom, has_shared_variable
from repro.core.query import BCQ
from repro.db.incomplete import IncompleteDatabase
from repro.db.valuation import (
    NullWeights,
    count_total_valuations,
    weighted_total_valuations,
)


def applies_to(query: BCQ) -> bool:
    """True when the Theorem 3.6 tractable case covers ``query``."""
    return (
        query.is_self_join_free
        and query.is_variable_only
        and not has_repeated_variable_atom(query)
        and not has_shared_variable(query)
    )


def count_valuations_single_occurrence(
    db: IncompleteDatabase, query: BCQ
) -> int:
    """``#Val(q)(D)`` for pattern-free ``q`` (Theorem 3.6), any table kind.

    Works on naive and Codd tables, uniform or not — the argument never uses
    those restrictions.
    """
    if not applies_to(query):
        raise ValueError(
            "Theorem 3.6 requires an sjfBCQ without the patterns R(x,x) "
            "and R(x)∧S(x); got %r" % (query,)
        )
    for relation in query.relations:
        if not db.relation(relation):
            return 0
    return count_total_valuations(db)


def count_valuations_weighted_single_occurrence(
    db: IncompleteDatabase,
    query: BCQ,
    weights: NullWeights | None = None,
):
    """Weighted ``#Val(q)(D)`` for pattern-free ``q`` — the weighted face
    of Theorem 3.6.

    The zero-or-all structure survives weighting: either no valuation
    satisfies ``q`` (an empty relation of ``sig(q)``) and the weighted
    count is ``0``, or every valuation does and it is the factorized
    weighted total ``prod_⊥ sum_c w(⊥, c)``.  Still closed-form, still
    polynomial, for *any* per-null weight tables — the generalized
    (Kenig–Suciu-style) counting problem stays tractable on this cell.
    """
    if not applies_to(query):
        raise ValueError(
            "Theorem 3.6 requires an sjfBCQ without the patterns R(x,x) "
            "and R(x)∧S(x); got %r" % (query,)
        )
    for relation in query.relations:
        if not db.relation(relation):
            return 0
    return weighted_total_valuations(db, weights)
