"""The solver planner: one method registry behind every counting front door.

Every exact algorithm in the repo — the closed-form Table 1 cells, the
lineage #SAT backend, the d-DNNF circuit pipeline, brute enumeration — is
registered here as a :class:`Method` with

* the **problem kinds** it serves (``val``, ``comp``, ``val-weighted``,
  ``marginals``, ``sweep``),
* an **applicability predicate** returning a human-readable reason either
  way (the dichotomy conditions, database shape, query class),
* **capability flags** (polynomial? weighted counting? marginals?),
* a **cheap cost estimate** — a tier encoding the preference lattice
  (closed form < lineage < circuit < brute) plus a bounded size term, so
  two applicable methods in the same tier still order deterministically,
* the **solver callable** itself.

:func:`plan` turns ``(problem, D, q, method)`` into an explainable
:class:`Plan`: the chosen method plus every rejected alternative with its
reason.  ``method='auto'`` picks the cheapest applicable method,
``method='poly'`` restricts the choice to polynomial methods (and the plan
carries the hardness verdict when none applies), and a concrete method
name is honored verbatim — with the registered fallback (e.g. the lineage
compiler degrading to ``brute`` on a non-(U)CQ) applied exactly where the
old dispatch ``if`` chains did.  :mod:`repro.exact.dispatch` and the
``repro-count plan`` CLI are the two consumers; the batch engine reaches
the registry through dispatch.

Adding a solver is now one :func:`register` call — dispatch, ``auto``,
``plan`` output and the capability table all pick it up without touching
a conditional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.compile.backend import (
    count_completions_circuit,
    count_completions_delta,
    count_completions_lineage,
    count_valuations_circuit,
    count_valuations_delta,
    count_valuations_lineage,
    lineage_supports,
    valuation_marginals,
)
from repro.compile.dpdb import (
    DPDB_WIDTH_LIMIT,
    count_completions_dpdb,
    count_valuations_dpdb,
    dpdb_probe,
)
from repro.core.patterns import (
    has_atom_with_two_variables,
    has_double_edge_pattern,
    has_path_pattern,
    has_repeated_variable_atom,
    has_shared_variable,
)
from repro.core.query import BCQ, BooleanQuery
from repro.db.deltas import resolution_only as _resolution_only
from repro.db.incomplete import IncompleteDatabase
from repro.db.valuation import count_total_valuations
from repro.exact import brute
from repro.exact import comp_uniform as _comp_uniform
from repro.exact import val_codd as _val_codd
from repro.exact import val_nonuniform as _val_nonuniform
from repro.exact import val_uniform as _val_uniform
from repro.obs import event as _obs_event, incr as _incr, span as _span


class NoPolynomialAlgorithm(ValueError):
    """Raised by ``method='poly'`` when no tractable algorithm applies —
    i.e. the instance sits in a #P-hard cell of Table 1."""


#: Problem kinds the planner understands.  ``sweep`` is the batched form
#: of ``val-weighted``: one instance, a *sequence* of weight tables, one
#: answer per table (the circuit method compiles once and answers all of
#: them in a single vectorized pass).
PROBLEMS = ("val", "comp", "val-weighted", "marginals", "sweep")

#: Problems for which ``method='poly'`` is a valid request (the weighted
#: and marginal problems never offered a poly mode; keep their method
#: vocabulary unchanged).
_POLY_PROBLEMS = frozenset({"val", "comp"})

#: Cost tiers: the preference lattice ``auto`` optimizes over.  Within a
#: problem, any applicable lower-tier method beats any higher-tier one;
#: the fractional size term added by each estimator stays below 1.0 so it
#: can only order methods *within* a tier.
TIER_CLOSED_FORM = 1.0
TIER_CLOSED_FORM_CODD = 2.0
TIER_CLOSED_FORM_UNIFORM = 3.0
TIER_DELTA = 8.5
TIER_DPDB = 9.0
TIER_LINEAGE = 10.0
TIER_CIRCUIT = 11.0
TIER_BRUTE = 20.0


Applies = Callable[[IncompleteDatabase, BooleanQuery | None], "tuple[bool, str]"]
Cost = Callable[[IncompleteDatabase, BooleanQuery | None], float]
Run = Callable[..., Any]
Detail = Callable[
    [IncompleteDatabase, BooleanQuery | None], "Mapping[str, Any] | None"
]


@dataclass(frozen=True)
class Method:
    """One registered solver: capabilities, applicability, cost, entry point."""

    name: str
    problem: str
    description: str
    polynomial: bool
    supports_weights: bool
    supports_marginals: bool
    applies: Applies
    cost: Cost
    run: Run
    #: Method to degrade to when this one is *forced* on an instance it
    #: cannot handle (``None``: honor the forced choice and let the solver
    #: raise its own error).
    fallback: str | None = None
    #: Optional cost-detail hook: structured numbers behind the cost
    #: estimate (e.g. the dpdb width probe), surfaced in :class:`Plan`
    #: rows and ``repro-count plan --json``.
    detail: Detail | None = None


#: problem -> method name -> registration, in registration order.
_REGISTRY: dict[str, dict[str, Method]] = {problem: {} for problem in PROBLEMS}


def register(method: Method) -> Method:
    """Add a solver to the registry (idempotent re-registration replaces)."""
    if method.problem not in _REGISTRY:
        raise ValueError(
            "unknown problem %r (one of %s)" % (method.problem, PROBLEMS)
        )
    _REGISTRY[method.problem][method.name] = method
    return method


def methods_for(problem: str) -> tuple[Method, ...]:
    """Every registered method of one problem kind, in registration order."""
    if problem not in _REGISTRY:
        raise ValueError("unknown problem %r (one of %s)" % (problem, PROBLEMS))
    return tuple(_REGISTRY[problem].values())


def method_names(problem: str) -> tuple[str, ...]:
    """The valid ``method=`` vocabulary of a problem (requests included)."""
    names: list[str] = ["auto"]
    if problem in _POLY_PROBLEMS:
        names.append("poly")
    names.extend(_REGISTRY[problem])
    return tuple(names)


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Considered:
    """One method's verdict inside a plan."""

    method: str
    applicable: bool
    reason: str
    cost: float | None
    polynomial: bool
    supports_weights: bool
    supports_marginals: bool
    #: Structured cost detail (e.g. ``{"width": 8, "width_limit": 12}``
    #: from the dpdb probe); ``None`` for methods without a detail hook.
    detail: Mapping[str, Any] | None = None


@dataclass(frozen=True)
class Plan:
    """An explainable method choice: what was picked, what was not, and why."""

    problem: str
    requested: str
    chosen: str | None
    considered: tuple[Considered, ...]
    notes: tuple[str, ...] = ()
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``repro-count plan --json`` payload)."""
        return {
            "problem": self.problem,
            "requested": self.requested,
            "chosen": self.chosen,
            "error": self.error,
            "notes": list(self.notes),
            "considered": [
                {
                    "method": item.method,
                    "applicable": item.applicable,
                    "reason": item.reason,
                    "cost": item.cost,
                    "polynomial": item.polynomial,
                    "supports_weights": item.supports_weights,
                    "supports_marginals": item.supports_marginals,
                    "detail": dict(item.detail) if item.detail else None,
                }
                for item in self.considered
            ],
        }

    def explain(self) -> str:
        """Human-readable report: chosen method, alternatives, reasons."""
        lines = [
            "problem:    %s" % self.problem,
            "requested:  %s" % self.requested,
            "chosen:     %s" % (self.chosen if self.chosen else "(none)"),
        ]
        if self.error:
            lines.append("error:      %s" % self.error)
        for note in self.notes:
            lines.append("note:       %s" % note)
        lines.append("considered:")
        for item in self.considered:
            marker = "*" if item.method == self.chosen else " "
            verdict = (
                "cost %-6.2f" % item.cost
                if item.applicable and item.cost is not None
                else "n/a        "
            )
            flags = "".join(
                (
                    "P" if item.polynomial else "-",
                    "w" if item.supports_weights else "-",
                    "m" if item.supports_marginals else "-",
                )
            )
            lines.append(
                "  %s %-18s %s [%s]  %s"
                % (marker, item.method, verdict, flags, item.reason)
            )
            if item.detail:
                lines.append(
                    "    detail: %s"
                    % ", ".join(
                        "%s=%s" % (key, value)
                        for key, value in item.detail.items()
                    )
                )
        return "\n".join(lines)


def plan(
    problem: str,
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    method: str = "auto",
) -> Plan:
    """Build the explainable plan for one instance.

    Raises :class:`ValueError` for an unknown problem or a method name
    outside the problem's vocabulary; every *semantic* failure (``poly``
    on a hard cell, no applicable method) is reported in :attr:`Plan.error`
    so the CLI can still print the full analysis.
    """
    entries = methods_for(problem)
    valid = method_names(problem)
    if method not in valid:
        raise ValueError("unknown method %r (one of %s)" % (method, valid))

    considered: list[Considered] = []
    verdicts: dict[str, tuple[bool, str, float | None]] = {}
    for entry in entries:
        applicable, reason = entry.applies(db, query)
        cost = entry.cost(db, query) if applicable else None
        detail = (
            entry.detail(db, query)
            if applicable and entry.detail is not None
            else None
        )
        verdicts[entry.name] = (applicable, reason, cost)
        considered.append(
            Considered(
                method=entry.name,
                applicable=applicable,
                reason=reason,
                cost=cost,
                polynomial=entry.polynomial,
                supports_weights=entry.supports_weights,
                supports_marginals=entry.supports_marginals,
                detail=detail,
            )
        )

    notes: list[str] = []
    error: str | None = None
    chosen: str | None
    if method in ("auto", "poly"):
        pool = [
            entry
            for entry in entries
            if verdicts[entry.name][0]
            and (method == "auto" or entry.polynomial)
        ]
        if pool:
            chosen = min(
                pool, key=lambda entry: verdicts[entry.name][2]  # type: ignore[arg-type, return-value]
            ).name
        else:
            chosen = None
            error = _no_method_error(problem, query, method)
    else:
        entry = _REGISTRY[problem][method]
        applicable, reason, _cost = verdicts[method]
        if not applicable and entry.fallback is not None:
            chosen = entry.fallback
            notes.append(
                "requested %r cannot handle this instance (%s); "
                "degrading to %r" % (method, reason, entry.fallback)
            )
        else:
            chosen = method
            if not applicable:
                notes.append(
                    "forced %r although the planner does not expect it to "
                    "apply (%s); the solver will raise its own error"
                    % (method, reason)
                )
    _obs_event(
        "planner.decision",
        problem=problem,
        requested=method,
        chosen=chosen,
        rejected={
            item.method: item.reason for item in considered if not item.applicable
        },
        costs={
            item.method: item.cost
            for item in considered
            if item.cost is not None
        },
        failed=error is not None,
    )
    if chosen is not None:
        _incr("planner.chosen.%s" % chosen)
    return Plan(
        problem=problem,
        requested=method,
        chosen=chosen,
        considered=tuple(considered),
        notes=tuple(notes),
        error=error,
    )


def _no_method_error(
    problem: str, query: BooleanQuery | None, method: str
) -> str:
    if method == "poly":
        if problem == "comp":
            return (
                "no polynomial-time algorithm for counting completions on "
                "this instance; the dichotomies place it in a #P-hard cell"
            )
        return (
            "no polynomial-time algorithm for %r on this instance; "
            "the dichotomies place it in a #P-hard cell" % (query,)
        )
    return "no registered method can solve problem %r on this instance" % problem


def resolve(
    problem: str,
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    method: str = "auto",
) -> str:
    """The concrete method a front door will run (see :func:`plan`).

    ``method='poly'`` raises :class:`NoPolynomialAlgorithm` on hard cells;
    an instance no method can solve raises :class:`ValueError`.
    """
    built = plan(problem, db, query, method)
    if built.chosen is None:
        if method == "poly":
            raise NoPolynomialAlgorithm(built.error)
        raise ValueError(built.error)
    return built.chosen


def run(
    problem: str,
    method: str,
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    budget: int | None = None,
    weights: Mapping[Any, Any] | None = None,
) -> Any:
    """Execute one *resolved* method through its registry entry."""
    entry = _REGISTRY.get(problem, {}).get(method)
    if entry is None:
        raise ValueError(
            "no registered method %r for problem %r" % (method, problem)
        )
    with _span("planner.run", problem=problem, method=method):
        return entry.run(db, query, budget=budget, weights=weights)


# ---------------------------------------------------------------------------
# applicability predicates (reasons in both directions)
# ---------------------------------------------------------------------------


def _sjf_bcq_gate(query: BooleanQuery | None) -> str | None:
    """The shared precondition of every Table 1 closed form, or ``None``."""
    if query is None:
        return "closed forms need a query"
    if not isinstance(query, BCQ):
        return "query is not a BCQ (the Table 1 dichotomies cover sjfBCQs)"
    if not query.is_self_join_free:
        return "query has self-joins (outside the sjfBCQ dichotomies)"
    if not query.is_variable_only:
        return "query atoms carry constants (outside the sjfBCQ dichotomies)"
    return None


def _applies_single_occurrence(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> tuple[bool, str]:
    gate = _sjf_bcq_gate(query)
    if gate is not None:
        return False, gate
    assert isinstance(query, BCQ)
    if has_repeated_variable_atom(query):
        return False, "an atom repeats a variable (R(x,x)-style pattern)"
    if has_shared_variable(query):
        return False, "two atoms share a variable (join pattern)"
    return True, "pattern-free sjfBCQ: Theorem 3.6 closed form"


def _applies_codd(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> tuple[bool, str]:
    gate = _sjf_bcq_gate(query)
    if gate is not None:
        return False, gate
    assert isinstance(query, BCQ)
    if not db.is_codd:
        return False, "database is not a Codd table (some null occurs twice)"
    if has_shared_variable(query):
        return False, "two atoms share a variable (join pattern)"
    return True, "Codd table, join-free query: Theorem 3.7 per-null independence"


def _applies_uniform_val(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> tuple[bool, str]:
    gate = _sjf_bcq_gate(query)
    if gate is not None:
        return False, gate
    assert isinstance(query, BCQ)
    if not db.is_uniform:
        return False, "database is not uniform (per-null domains differ)"
    if has_repeated_variable_atom(query):
        return False, "an atom repeats a variable (R(x,x)-style pattern)"
    if has_path_pattern(query):
        return False, "query contains the path pattern (hard under Theorem 3.9)"
    if has_double_edge_pattern(query):
        return (
            False,
            "query contains the double-edge pattern (hard under Theorem 3.9)",
        )
    return True, "uniform table, pattern-free query: Theorem 3.9 algorithm"


def _applies_uniform_unary(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> tuple[bool, str]:
    if query is not None:
        gate = _sjf_bcq_gate(query)
        if gate is not None:
            return False, gate
        assert isinstance(query, BCQ)
        if has_repeated_variable_atom(query):
            return False, "an atom repeats a variable (R(x,x)-style pattern)"
        if has_atom_with_two_variables(query):
            return False, "an atom uses two variables (non-unary join shape)"
    if not db.is_uniform:
        return False, "database is not uniform (per-null domains differ)"
    if any(fact.arity != 1 for fact in db.facts):
        return False, "schema is not unary (some fact has arity > 1)"
    return True, "uniform unary instance: Theorem 4.6 closed form"


def _applies_lineage(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> tuple[bool, str]:
    if not lineage_supports(query):
        return False, "lineage compilation handles (U)CQs only"
    return True, "(U)CQ lineage compiles to CNF; exact #SAT search"


def _applies_dpdb(kind: str) -> Applies:
    """Applicability of the tree-decomposition DP for ``val``/``comp``.

    Applies wherever lineage does (a forced ``method='dpdb'`` is honored;
    the runner itself degrades to the trail core above its hard width
    cap), but the *reason* carries the width probe's verdict so the plan
    explains why ``auto`` did or did not pick it.
    """

    def applies(
        db: IncompleteDatabase, query: BooleanQuery | None
    ) -> tuple[bool, str]:
        if (kind == "val" or query is not None) and not lineage_supports(
            query
        ):
            return False, "lineage compilation handles (U)CQs only"
        probe = dpdb_probe(kind, db, query)
        if probe.ok and probe.width is not None:
            if probe.width <= DPDB_WIDTH_LIMIT:
                return True, (
                    "elimination width %d <= %d: join/project/sum DP "
                    "linear in formula size" % (probe.width, DPDB_WIDTH_LIMIT)
                )
            return True, (
                "elimination width %d > %d: trail search preferred"
                % (probe.width, DPDB_WIDTH_LIMIT)
            )
        return True, "%s; trail search preferred" % probe.reason

    return applies


def _applies_circuit(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> tuple[bool, str]:
    if not lineage_supports(query):
        return False, "lineage compilation handles (U)CQs only"
    return True, "(U)CQ lineage compiles to a reusable d-DNNF circuit"


def _applies_marginal_circuit(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> tuple[bool, str]:
    if query is None:
        return False, "marginals are per-null posteriors; a query is required"
    if not lineage_supports(query):
        return False, "lineage compilation handles (U)CQs only"
    return True, "(U)CQ lineage compiles to a reusable d-DNNF circuit"


def _delta_provenance(db: IncompleteDatabase) -> tuple[int, bool]:
    """``(chain depth, resolution-only?)`` of the delta provenance chain.

    Depth 0 means no provenance (the instance was built directly, not via
    :meth:`~repro.db.incomplete.IncompleteDatabase.apply`).  The walk is
    bounded so pathological hand-built chains cannot loop the planner.
    """
    depth = 0
    pure = True
    node = db
    while depth < 64:
        parent = getattr(node, "parent", None)
        delta = getattr(node, "delta", None)
        if parent is None or delta is None:
            break
        if not _resolution_only(delta):
            pure = False
        depth += 1
        node = parent
    return depth, pure


def _applies_delta(kind: str) -> Applies:
    """Applicability of the incremental delta method for ``val``/``comp``."""

    def applies(
        db: IncompleteDatabase, query: BooleanQuery | None
    ) -> tuple[bool, str]:
        if (kind == "val" or query is not None) and not lineage_supports(
            query
        ):
            return False, "lineage compilation handles (U)CQs only"
        depth, pure = _delta_provenance(db)
        if depth == 0:
            return False, (
                "instance has no delta provenance (no parent circuit to "
                "derive from)"
            )
        if kind == "val" and pure:
            return True, (
                "answer from the parent circuit by conditioning "
                "(no recompilation)"
            )
        return True, (
            "recompile only the lineage components the delta touched; "
            "splice the rest from cache"
        )

    return applies


def _delta_cost(kind: str) -> Cost:
    """Below every search tier for a conditionable chain; otherwise the
    componentwise recompile lands just *above* the circuit method (same
    asymptotics, splicing pays off only when the component store is warm,
    which a cold cost estimate must not assume)."""

    def cost(db: IncompleteDatabase, query: BooleanQuery | None) -> float:
        depth, pure = _delta_provenance(db)
        if kind == "val" and pure:
            return TIER_DELTA + _fraction(depth)
        return (
            TIER_CIRCUIT
            + 0.5
            + _fraction(_effective_search_variables(db)) / 2.0
        )

    return cost


def _delta_detail(kind: str) -> Detail:
    def detail(
        db: IncompleteDatabase, query: BooleanQuery | None
    ) -> Mapping[str, Any] | None:
        depth, pure = _delta_provenance(db)
        mode = "condition" if kind == "val" and pure else "splice"
        return {"chain": depth, "resolution_only": pure, "mode": mode}

    return detail


def _applies_always(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> tuple[bool, str]:
    return True, "enumeration works on any query (budgeted)"


# ---------------------------------------------------------------------------
# cost estimates (tier + bounded size term)
# ---------------------------------------------------------------------------


def _fraction(size: int) -> float:
    """A monotone size proxy in ``[0, 1)`` — orders within a tier only."""
    return size / (size + 1.0)


def _instance_size(db: IncompleteDatabase, query: BooleanQuery | None) -> int:
    atoms = len(query.atoms) if isinstance(query, BCQ) else 1
    return len(db.facts) * max(atoms, 1)


def _choice_variables(db: IncompleteDatabase) -> int:
    return sum(len(db.domain_of(null)) for null in db.nulls)


def _effective_search_variables(db: IncompleteDatabase) -> int:
    """Choice variables the search will actually branch over.

    The counter's preprocessing pass (:mod:`repro.compile.preprocess`)
    runs before every lineage/circuit search: a singleton-domain null's
    exactly-one block is a unit clause, so its variable is propagated
    away at the root and never costs a decision.  The cost estimate sees
    the formula the search sees, not the raw encoding.
    """
    return sum(
        domain_size
        for null in db.nulls
        if (domain_size := len(db.domain_of(null))) > 1
    )


def _closed_form_cost(tier: float) -> Cost:
    def cost(db: IncompleteDatabase, query: BooleanQuery | None) -> float:
        return tier + _fraction(_instance_size(db, query))

    return cost


def _search_cost(tier: float) -> Cost:
    def cost(db: IncompleteDatabase, query: BooleanQuery | None) -> float:
        # The search is exponential in lineage treewidth, which no cheap
        # estimate sees; the size term is the choice-variable count *after*
        # the counter's preprocessing strips what root propagation removes.
        return tier + _fraction(_effective_search_variables(db))

    return cost


def _dpdb_cost(kind: str) -> Cost:
    """Width-driven estimate: below the width limit the DP undercuts the
    trail search (:data:`TIER_DPDB` < :data:`TIER_LINEAGE`); at high width
    or a blown probe budget it lands strictly *between* lineage and
    circuit (``TIER_LINEAGE + 0.5 + frac/2`` with ``frac < 1``), so
    ``auto`` keeps preferring the trail core without dpdb ever looking
    cheaper than the method it would delegate to."""

    def cost(db: IncompleteDatabase, query: BooleanQuery | None) -> float:
        probe = dpdb_probe(kind, db, query)
        if (
            probe.ok
            and probe.width is not None
            and probe.width <= DPDB_WIDTH_LIMIT
        ):
            return TIER_DPDB + _fraction(probe.width)
        return (
            TIER_LINEAGE
            + 0.5
            + _fraction(_effective_search_variables(db)) / 2.0
        )

    return cost


def _dpdb_detail(kind: str) -> Detail:
    def detail(
        db: IncompleteDatabase, query: BooleanQuery | None
    ) -> Mapping[str, Any] | None:
        return dpdb_probe(kind, db, query).detail()

    return detail


def _brute_cost(db: IncompleteDatabase, query: BooleanQuery | None) -> float:
    # Enumeration visits every valuation: the magnitude of the product is
    # the honest cost signal, capped into the tier's band.  bit_length()
    # (never str()) keeps this safe past CPython's int-to-str digit limit
    # on astronomically large totals.
    bits = count_total_valuations(db).bit_length()
    return TIER_BRUTE + min(bits, 999) / 1000.0


# ---------------------------------------------------------------------------
# registrations
# ---------------------------------------------------------------------------


def _run_ignoring(function: Callable[..., Any], *forward: str) -> Run:
    """Adapt a solver to the uniform ``run(db, query, budget, weights)``
    signature, forwarding only the knobs it takes."""

    def adapted(
        db: IncompleteDatabase,
        query: BooleanQuery | None,
        budget: int | None = None,
        weights: Any = None,
    ) -> Any:
        kwargs = {}
        if "budget" in forward:
            kwargs["budget"] = budget
        if "weights" in forward:
            kwargs["weights"] = weights
        return function(db, query, **kwargs)

    return adapted


register(Method(
    name="single-occurrence",
    problem="val",
    description="Theorem 3.6 closed formula (pattern-free sjfBCQs)",
    polynomial=True,
    supports_weights=True,
    supports_marginals=False,
    applies=_applies_single_occurrence,
    cost=_closed_form_cost(TIER_CLOSED_FORM),
    run=_run_ignoring(_val_nonuniform.count_valuations_single_occurrence),
))

register(Method(
    name="codd",
    problem="val",
    description="Theorem 3.7 per-null independence (Codd tables)",
    polynomial=True,
    supports_weights=False,
    supports_marginals=False,
    applies=_applies_codd,
    cost=_closed_form_cost(TIER_CLOSED_FORM_CODD),
    run=_run_ignoring(_val_codd.count_valuations_codd),
))

register(Method(
    name="uniform",
    problem="val",
    description="Theorem 3.9 algorithm (uniform naive tables)",
    polynomial=True,
    supports_weights=False,
    supports_marginals=False,
    applies=_applies_uniform_val,
    cost=_closed_form_cost(TIER_CLOSED_FORM_UNIFORM),
    run=_run_ignoring(_val_uniform.count_valuations_uniform),
))

register(Method(
    name="delta",
    problem="val",
    description="condition/resplice the parent instance's circuit (updates)",
    polynomial=False,
    supports_weights=False,
    supports_marginals=False,
    applies=_applies_delta("val"),
    cost=_delta_cost("val"),
    run=_run_ignoring(count_valuations_delta),
    fallback="circuit",
    detail=_delta_detail("val"),
))

register(Method(
    name="dpdb",
    problem="val",
    description="lineage -> CNF, join/project/sum DP over a tree decomposition",
    polynomial=False,
    supports_weights=False,
    supports_marginals=False,
    applies=_applies_dpdb("val"),
    cost=_dpdb_cost("val"),
    run=_run_ignoring(count_valuations_dpdb),
    fallback="brute",
    detail=_dpdb_detail("val"),
))

register(Method(
    name="lineage",
    problem="val",
    description="lineage -> CNF, exact #SAT with component caching",
    polynomial=False,
    supports_weights=False,
    supports_marginals=False,
    applies=_applies_lineage,
    cost=_search_cost(TIER_LINEAGE),
    run=_run_ignoring(count_valuations_lineage),
    fallback="brute",
))

register(Method(
    name="circuit",
    problem="val",
    description="the same search recorded once as a d-DNNF circuit",
    polynomial=False,
    supports_weights=True,
    supports_marginals=True,
    applies=_applies_circuit,
    cost=_search_cost(TIER_CIRCUIT),
    run=_run_ignoring(count_valuations_circuit),
    fallback="brute",
))

register(Method(
    name="brute",
    problem="val",
    description="enumerate all valuations (budgeted)",
    polynomial=False,
    supports_weights=True,
    supports_marginals=False,
    applies=_applies_always,
    cost=_brute_cost,
    run=_run_ignoring(brute.count_valuations_brute, "budget"),
))

register(Method(
    name="uniform-unary",
    problem="comp",
    description="Theorem 4.6 closed form (uniform, unary schema)",
    polynomial=True,
    supports_weights=False,
    supports_marginals=False,
    applies=_applies_uniform_unary,
    cost=_closed_form_cost(TIER_CLOSED_FORM),
    run=_run_ignoring(_comp_uniform.count_completions_uniform_unary),
))

register(Method(
    name="delta",
    problem="comp",
    description="recompile only delta-touched components, splice the rest",
    polynomial=False,
    supports_weights=False,
    supports_marginals=False,
    applies=_applies_delta("comp"),
    cost=_delta_cost("comp"),
    run=_run_ignoring(count_completions_delta),
    fallback="circuit",
    detail=_delta_detail("comp"),
))

register(Method(
    name="dpdb",
    problem="comp",
    description="canonical-fact encoding, projected DP over a tree decomposition",
    polynomial=False,
    supports_weights=False,
    supports_marginals=False,
    applies=_applies_dpdb("comp"),
    cost=_dpdb_cost("comp"),
    run=_run_ignoring(count_completions_dpdb),
    fallback="brute",
    detail=_dpdb_detail("comp"),
))

register(Method(
    name="lineage",
    problem="comp",
    description="canonical-fact encoding + projected exact model counting",
    polynomial=False,
    supports_weights=False,
    supports_marginals=False,
    applies=_applies_lineage,
    cost=_search_cost(TIER_LINEAGE),
    run=_run_ignoring(count_completions_lineage),
    fallback="brute",
))

register(Method(
    name="circuit",
    problem="comp",
    description="the projected search recorded as a d-DNNF circuit",
    polynomial=False,
    supports_weights=False,
    supports_marginals=True,
    applies=_applies_circuit,
    cost=_search_cost(TIER_CIRCUIT),
    run=_run_ignoring(count_completions_circuit),
    fallback="brute",
))

register(Method(
    name="brute",
    problem="comp",
    description="enumerate valuations, deduplicate completions (budgeted)",
    polynomial=False,
    supports_weights=False,
    supports_marginals=False,
    applies=_applies_always,
    cost=_brute_cost,
    run=_run_ignoring(brute.count_completions_brute, "budget"),
))

register(Method(
    name="single-occurrence",
    problem="val-weighted",
    description="Theorem 3.6 cell: the weighted total stays a per-null product",
    polynomial=True,
    supports_weights=True,
    supports_marginals=False,
    applies=_applies_single_occurrence,
    cost=_closed_form_cost(TIER_CLOSED_FORM),
    run=_run_ignoring(
        _val_nonuniform.count_valuations_weighted_single_occurrence, "weights"
    ),
))


def _run_weighted_circuit(
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    budget: int | None = None,
    weights: Any = None,
) -> Any:
    from repro.compile.backend import ValuationCircuit

    assert query is not None
    return ValuationCircuit(db, query).weighted_count(weights)


register(Method(
    name="circuit",
    problem="val-weighted",
    description="one weighted upward pass over the compiled d-DNNF",
    polynomial=False,
    supports_weights=True,
    supports_marginals=True,
    applies=_applies_circuit,
    cost=_search_cost(TIER_CIRCUIT),
    run=_run_weighted_circuit,
    fallback="brute",
))

register(Method(
    name="brute",
    problem="val-weighted",
    description="weighted enumeration of all valuations (budgeted)",
    polynomial=False,
    supports_weights=True,
    supports_marginals=False,
    applies=_applies_always,
    cost=_brute_cost,
    run=_run_ignoring(
        brute.count_valuations_weighted_brute, "budget", "weights"
    ),
))


def _run_marginals(
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    budget: int | None = None,
    weights: Any = None,
) -> Any:
    assert query is not None
    return valuation_marginals(db, query, weights)


register(Method(
    name="circuit",
    problem="marginals",
    description="all (null, value) posteriors in one up+down circuit pass",
    polynomial=False,
    supports_weights=True,
    supports_marginals=True,
    applies=_applies_marginal_circuit,
    cost=_search_cost(TIER_CIRCUIT),
    run=_run_marginals,
))


def _run_sweep_single_occurrence(
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    budget: int | None = None,
    weights: Any = None,
) -> Any:
    return [
        _val_nonuniform.count_valuations_weighted_single_occurrence(
            db, query, weights=row
        )
        for row in (weights or ())
    ]


def _run_sweep_circuit(
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    budget: int | None = None,
    weights: Any = None,
) -> Any:
    from repro.compile.backend import ValuationCircuit

    assert query is not None
    return ValuationCircuit(db, query).weighted_count_many(list(weights or ()))


def _run_sweep_brute(
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    budget: int | None = None,
    weights: Any = None,
) -> Any:
    return [
        brute.count_valuations_weighted_brute(
            db, query, weights=row, budget=budget
        )
        for row in (weights or ())
    ]


register(Method(
    name="single-occurrence",
    problem="sweep",
    description="Theorem 3.6 cell: one per-null product per weight table",
    polynomial=True,
    supports_weights=True,
    supports_marginals=False,
    applies=_applies_single_occurrence,
    cost=_closed_form_cost(TIER_CLOSED_FORM),
    run=_run_sweep_single_occurrence,
))

register(Method(
    name="circuit",
    problem="sweep",
    description="compile once, answer every weight table in one batched pass",
    polynomial=False,
    supports_weights=True,
    supports_marginals=True,
    applies=_applies_circuit,
    cost=_search_cost(TIER_CIRCUIT),
    run=_run_sweep_circuit,
    fallback="brute",
))

register(Method(
    name="brute",
    problem="sweep",
    description="weighted enumeration repeated per weight table (budgeted)",
    polynomial=False,
    supports_weights=True,
    supports_marginals=False,
    applies=_applies_always,
    cost=_brute_cost,
    run=_run_sweep_brute,
))


__all__ = [
    "Considered",
    "Method",
    "NoPolynomialAlgorithm",
    "PROBLEMS",
    "Plan",
    "method_names",
    "methods_for",
    "plan",
    "register",
    "resolve",
    "run",
]
