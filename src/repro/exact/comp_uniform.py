"""Tractable case of ``#Compu(q)`` — unary schemas, uniform domain
(Theorem 4.6 / Appendix B.6).

When neither ``R(x,x)`` nor ``R(x,y)`` is a pattern of ``q``, every relation
in ``q`` is unary.  A completion of a unary uniform database is determined
by the *membership map* sending each domain value to the set of relations
containing it, so counting completions reduces to counting realizable
membership maps.

The appendix enumerates profiles ``(|I_s|)_s`` of the value sets with
membership exactly ``s`` (Lemmas B.17/B.18) and filters them with a
feasibility system (Lemma B.19).  We implement the same idea with one
refinement: realizability depends not only on the *sizes* of the final
membership classes but on their *composition* — which initial class
(constants of type ``s``, or fresh domain values) each member came from —
so we enumerate composition shapes:

* ``upgrade[s][t]`` — constants of initial type ``s`` whose final type is
  ``t ⊋ s`` (nulls added the missing relations);
* ``fresh[t]`` — values outside all constants whose final type is ``t``.

Each shape is weighted by exact multinomials (values within a class are
interchangeable) and kept iff a valuation realizes it, decided by a small
integer program: every value with a *deficit* ``t \\ s`` must receive nulls
whose occurrence-sets (blocks) lie inside ``t`` and jointly cover the
deficit, within the per-block null budgets; blocks with no landing type are
fatal.  Finally ``q`` (a conjunction of basic singletons over unary
relations) holds iff every component has some value whose final type
contains it.

Exponential in the (fixed) schema, polynomial in ``d`` and the table size.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

from repro.core.patterns import (
    has_atom_with_two_variables,
    has_repeated_variable_atom,
)
from repro.core.query import BCQ
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Term, is_null
from repro.util.combinatorics import binomial
from repro.util.ilp import IntegerFeasibilityProblem, is_feasible


def applies_to(query: BCQ) -> bool:
    """True when the Theorem 4.6 tractable case covers ``query``."""
    return (
        query.is_self_join_free
        and query.is_variable_only
        and not has_repeated_variable_atom(query)
        and not has_atom_with_two_variables(query)
    )


def _query_components(query: BCQ) -> list[frozenset[str]]:
    """Components of a unary-schema sjfBCQ: relation groups per variable."""
    groups: dict[object, set[str]] = {}
    for atom in query.atoms:
        variable = atom.variables()[0]
        groups.setdefault(variable, set()).add(atom.relation)
    return [frozenset(group) for group in groups.values()]


class _Instance:
    """Preprocessed unary uniform instance."""

    def __init__(self, db: IncompleteDatabase, relations: Sequence[str]):
        if not db.is_uniform:
            raise ValueError("the Theorem 4.6 algorithm needs a uniform domain")
        for fact in db.facts:
            if fact.arity != 1:
                raise ValueError(
                    "the Theorem 4.6 algorithm needs a unary schema; got %r"
                    % (fact,)
                )
        self.relations = sorted(set(relations) | db.relations)
        self.domain = db.uniform_domain
        self.d = len(self.domain)

        membership_constants: dict[Term, set[str]] = {}
        membership_nulls: dict[Term, set[str]] = {}
        for fact in db.facts:
            term = fact.terms[0]
            target = membership_nulls if is_null(term) else membership_constants
            target.setdefault(term, set()).add(fact.relation)

        # In-domain constants by initial type; out-of-domain constants keep
        # a fixed type in every completion (they only matter for q).
        self.constant_classes: dict[frozenset[str], int] = {}
        self.fixed_types: set[frozenset[str]] = set()
        for constant, relations_of in membership_constants.items():
            signature = frozenset(relations_of)
            if constant in self.domain:
                self.constant_classes[signature] = (
                    self.constant_classes.get(signature, 0) + 1
                )
            else:
                self.fixed_types.add(signature)

        # Null blocks by occurrence signature.
        self.blocks: dict[frozenset[str], int] = {}
        for null, relations_of in membership_nulls.items():
            signature = frozenset(relations_of)
            self.blocks[signature] = self.blocks.get(signature, 0) + 1

        self.num_constants = sum(self.constant_classes.values())
        self.free_pool = self.d - self.num_constants

        self.nonempty_types = [
            frozenset(chosen)
            for size in range(1, len(self.relations) + 1)
            for chosen in combinations(self.relations, size)
        ]


def _iter_class_assignments(
    capacity: int, targets: Sequence[frozenset[str]]
) -> Iterator[dict[frozenset[str], int]]:
    """All ways to send ``0..capacity`` items into the target types."""

    def recurse(
        index: int, remaining: int
    ) -> Iterator[dict[frozenset[str], int]]:
        if index == len(targets):
            yield {}
            return
        for count in range(remaining + 1):
            for tail in recurse(index + 1, remaining - count):
                if count:
                    tail = dict(tail)
                    tail[targets[index]] = count
                yield tail

    yield from recurse(0, capacity)


def _shape_weight(
    instance: _Instance,
    upgrades: dict[frozenset[str], dict[frozenset[str], int]],
    fresh: dict[frozenset[str], int],
) -> int:
    """Number of membership maps with this composition shape."""
    weight = 1
    for source, moves in upgrades.items():
        available = instance.constant_classes.get(source, 0)
        for target in sorted(moves, key=repr):
            count = moves[target]
            weight *= binomial(available, count)
            available -= count
    available = instance.free_pool
    for target in sorted(fresh, key=repr):
        count = fresh[target]
        weight *= binomial(available, count)
        available -= count
    return weight


def _present_types(
    instance: _Instance,
    upgrades: dict[frozenset[str], dict[frozenset[str], int]],
    fresh: dict[frozenset[str], int],
) -> set[frozenset[str]]:
    """Final types carried by at least one *in-domain* value.

    Out-of-domain constants are excluded: their (fixed) types count for
    query satisfaction but cannot absorb nulls — callers add
    ``instance.fixed_types`` where appropriate.
    """
    present: set[frozenset[str]] = set()
    for target, count in fresh.items():
        if count:
            present.add(target)
    for source, moves in upgrades.items():
        moved = 0
        for target, count in moves.items():
            if count:
                present.add(target)
            moved += count
        if instance.constant_classes.get(source, 0) - moved > 0:
            present.add(source)
    for source, size in instance.constant_classes.items():
        if source not in upgrades and size > 0:
            present.add(source)
    return present


def _minimal_covers(
    deficit: frozenset[str], usable_blocks: list[frozenset[str]]
) -> list[tuple[frozenset[str], ...]]:
    """Inclusion-minimal sets of blocks jointly covering ``deficit``."""
    covers: list[tuple[frozenset[str], ...]] = []
    for size in range(1, len(usable_blocks) + 1):
        for chosen in combinations(usable_blocks, size):
            union: frozenset[str] = frozenset().union(*chosen)
            if deficit <= union:
                chosen_set = set(chosen)
                if not any(set(c) < chosen_set for c in covers):
                    covers.append(chosen)
    # Drop non-minimal covers found at larger sizes.
    minimal = [
        cover
        for cover in covers
        if not any(set(other) < set(cover) for other in covers)
    ]
    return minimal


def _shape_feasible(
    instance: _Instance,
    upgrades: dict[frozenset[str], dict[frozenset[str], int]],
    fresh: dict[frozenset[str], int],
    present: set[frozenset[str]],
) -> bool:
    """Lemma B.19 realizability: can some valuation produce this shape?

    ``present`` must be the in-domain present types (fixed out-of-domain
    types never absorb nulls: nulls map into the domain).
    """
    for block, count in instance.blocks.items():
        if count and not any(block <= final_type for final_type in present):
            return False

    # Deficit classes: (deficit, #values, usable blocks).
    demands: list[tuple[frozenset[str], int, list[frozenset[str]]]] = []

    def add_demand(source: frozenset[str], target: frozenset[str], k: int):
        if k == 0:
            return
        deficit = target - source
        usable = [
            block
            for block, available in instance.blocks.items()
            if available and block <= target
        ]
        demands.append((deficit, k, usable))

    for source, moves in upgrades.items():
        for target, count in moves.items():
            add_demand(source, target, count)
    for target, count in fresh.items():
        add_demand(frozenset(), target, count)

    if not demands:
        return True

    problem = IntegerFeasibilityProblem()
    block_usage: dict[frozenset[str], list[int]] = {
        block: [] for block in instance.blocks
    }
    class_vars: list[tuple[int, list[int]]] = []
    for deficit, k, usable in demands:
        covers = _minimal_covers(deficit, usable)
        if not covers:
            return False
        variables = []
        for cover in covers:
            var = problem.add_variable(0, k)
            variables.append(var)
            for block in cover:
                block_usage[block].append(var)
        class_vars.append((k, variables))

    num_vars = problem.num_variables
    for k, variables in class_vars:
        coeffs = [0] * num_vars
        for var in variables:
            coeffs[var] = 1
        problem.add_constraint(coeffs, "==", k)
    for block, variables in block_usage.items():
        if not variables:
            continue
        coeffs = [0] * num_vars
        for var in variables:
            coeffs[var] += 1
        problem.add_constraint(coeffs, "<=", instance.blocks[block])
    return is_feasible(problem)


def count_completions_uniform_unary(
    db: IncompleteDatabase, query: BCQ | None = None
) -> int:
    """``#Compu(q)(D)`` for unary schemas (Theorem 4.6); ``query=None``
    counts *all* completions of ``D``.

    Polynomial in ``|dom|`` and the table for a fixed schema.
    """
    if query is not None and not applies_to(query):
        raise ValueError(
            "Theorem 4.6 requires an sjfBCQ whose relations are all unary; "
            "got %r" % (query,)
        )
    relations = sorted(query.relations) if query is not None else []
    # A query relation with no facts stays empty in every completion
    # (closed-world: valuations never invent facts), so q is never satisfied.
    if any(not db.relation(r) for r in relations):
        return 0
    instance = _Instance(db, relations)
    components = _query_components(query) if query is not None else []
    upgrade_sources = [
        source
        for source in instance.constant_classes
        if any(source < t for t in instance.nonempty_types)
    ]

    total = 0
    fresh_targets = instance.nonempty_types

    def iter_upgrades(
        index: int,
    ) -> Iterator[dict[frozenset[str], dict[frozenset[str], int]]]:
        if index == len(upgrade_sources):
            yield {}
            return
        source = upgrade_sources[index]
        capacity = instance.constant_classes[source]
        targets = [t for t in instance.nonempty_types if source < t]
        for assignment in _iter_class_assignments(capacity, targets):
            for tail in iter_upgrades(index + 1):
                result = dict(tail)
                if assignment:
                    result[source] = assignment
                yield result

    for upgrades in iter_upgrades(0):
        for fresh in _iter_class_assignments(
            instance.free_pool, fresh_targets
        ):
            weight = _shape_weight(instance, upgrades, fresh)
            if weight == 0:
                continue
            present = _present_types(instance, upgrades, fresh)
            satisfaction_types = present | instance.fixed_types
            if components and not all(
                any(component <= final for final in satisfaction_types)
                for component in components
            ):
                continue
            if not _shape_feasible(instance, upgrades, fresh, present):
                continue
            total += weight
    return total


def count_completions_single_unary(db: IncompleteDatabase) -> int:
    """Closed form for one unary relation (warm-ups B.6.1/B.6.2).

    With ``c`` in-domain constants and ``n`` nulls over uniform domain of
    size ``d``: the completions add ``i`` fresh values, ``0 <= i <= n``,
    with ``i >= 1`` forced when ``c = 0 < n`` — i.e.
    ``sum_i C(d - c, i)`` over the valid range.
    """
    if not db.is_uniform:
        raise ValueError("single-unary closed form needs a uniform domain")
    relations = db.relations
    if len(relations) > 1:
        raise ValueError("closed form applies to a single unary relation")
    if any(fact.arity != 1 for fact in db.facts):
        raise ValueError("closed form applies to a unary relation")
    domain = db.uniform_domain
    d = len(domain)
    constants = {f.terms[0] for f in db.facts if not is_null(f.terms[0])}
    in_domain = len(constants & domain)
    nulls = len(db.nulls)
    if nulls == 0:
        return 1
    lowest = 0 if (in_domain > 0) else 1
    return sum(binomial(d - in_domain, i) for i in range(lowest, nulls + 1))
