"""Exact counting of valuations and completions.

* :mod:`repro.exact.brute` — exhaustive enumeration (exponential ground
  truth used to validate everything else and to realize the hard sides of
  the dichotomies).
* :mod:`repro.exact.val_nonuniform` — Theorem 3.6 tractable case.
* :mod:`repro.exact.val_codd` — Theorem 3.7 tractable case.
* :mod:`repro.exact.val_uniform` — Theorem 3.9 / Prop. A.14 tractable case.
* :mod:`repro.exact.comp_uniform` — Theorem 4.6 / Appendix B.6 tractable
  case (unary schemas, uniform domain), with the warm-up closed forms.
* :mod:`repro.exact.completion_check` — Lemma B.2 certificate check for
  Codd tables (bipartite matching).
* :mod:`repro.exact.dispatch` — ``count_valuations`` / ``count_completions``
  front doors that pick the best applicable algorithm; on hard cells they
  now prefer the lineage-compilation backend (:mod:`repro.compile`) over
  brute force for (U)CQs.
"""

from repro.exact.brute import (
    BruteForceBudgetExceeded,
    count_completions_brute,
    count_valuations_brute,
)
from repro.exact.val_nonuniform import count_valuations_single_occurrence
from repro.exact.val_codd import count_valuations_codd
from repro.exact.val_uniform import count_valuations_uniform
from repro.exact.comp_uniform import (
    count_completions_single_unary,
    count_completions_uniform_unary,
)
from repro.exact.completion_check import is_completion_of_codd
from repro.exact.dispatch import (
    Answer,
    NoPolynomialAlgorithm,
    Plan,
    count_completions,
    count_valuations,
    count_valuations_sweep,
    count_valuations_weighted,
    plan_completions,
    plan_sweep,
    plan_valuations,
    plan_valuations_weighted,
    resolve_completion_method,
    resolve_sweep_method,
    resolve_valuation_method,
    resolve_weighted_method,
    solve,
)

__all__ = [
    "BruteForceBudgetExceeded",
    "count_completions_brute",
    "count_valuations_brute",
    "count_valuations_single_occurrence",
    "count_valuations_codd",
    "count_valuations_uniform",
    "count_completions_single_unary",
    "count_completions_uniform_unary",
    "is_completion_of_codd",
    "Answer",
    "NoPolynomialAlgorithm",
    "Plan",
    "count_completions",
    "count_valuations",
    "count_valuations_sweep",
    "count_valuations_weighted",
    "plan_completions",
    "plan_sweep",
    "plan_valuations",
    "plan_valuations_weighted",
    "resolve_completion_method",
    "resolve_sweep_method",
    "resolve_valuation_method",
    "resolve_weighted_method",
    "solve",
]
