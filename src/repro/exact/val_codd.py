"""Tractable case of ``#ValCd(q)`` on Codd tables (Theorem 3.7).

When ``R(x) ∧ S(x)`` is not a pattern of the sjfBCQ ``q``, no two atoms
share a variable, so on a Codd table the count factorizes over atoms:

``#ValCd(q)(D) = prod_i #ValCd(R_i(x̄_i))(D(R_i)) * prod_{free ⊥} |dom(⊥)|``

and for one atom over one relation,

``#ValCd(R(x̄))(D(R)) = total(R) - prod_j ρ(t̄_j)``

where ``ρ(t̄_j)`` counts the valuations of the nulls of tuple ``t̄_j`` that
do **not** match the atom (the tuples have pairwise-disjoint nulls because
the table is Codd).  Works for uniform and non-uniform domains alike.

Unlike the paper's proof we do not replace constants by fresh singleton-
domain nulls; the per-variable intersection simply treats a constant ``c``
as having domain ``{c}``.
"""

from __future__ import annotations

from math import prod

from repro.core.patterns import has_shared_variable
from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Term, is_null


def applies_to(query: BCQ) -> bool:
    """True when the Theorem 3.7 tractable case covers ``query``."""
    return (
        query.is_self_join_free
        and query.is_variable_only
        and not has_shared_variable(query)
    )


def _domain_of_term(db: IncompleteDatabase, term: Term) -> frozenset[Term]:
    """The value set a term can take: ``dom(⊥)`` for nulls, ``{c}`` else."""
    if is_null(term):
        return db.domain_of(term)
    return frozenset((term,))


def _matching_valuations(
    db: IncompleteDatabase, atom: Atom, fact: Fact
) -> int:
    """Valuations of the fact's nulls making it a homomorphic image of
    ``atom``.

    For each variable ``x`` of the atom, every position of ``x`` must carry
    the same value, available to all the terms there; distinct variables
    are independent because the fact's nulls are pairwise distinct (Codd).
    """
    count = 1
    for variable in atom.variables():
        positions = [
            i for i, term in enumerate(atom.terms) if term == variable
        ]
        allowed: frozenset[Term] | None = None
        for position in positions:
            term_domain = _domain_of_term(db, fact.terms[position])
            allowed = (
                term_domain if allowed is None else allowed & term_domain
            )
        assert allowed is not None  # atoms have arity >= 1
        count *= len(allowed)
        if count == 0:
            return 0
    return count


def _count_atom(db: IncompleteDatabase, atom: Atom) -> int:
    """``#ValCd(R(x̄))(D(R))``: valuations of the nulls of ``D(R)`` under
    which some tuple matches the atom."""
    facts = sorted(db.relation(atom.relation))
    if not facts:
        return 0
    for fact in facts:
        if fact.arity != atom.arity:
            raise ValueError(
                "arity mismatch between %r and fact %r" % (atom, fact)
            )
    total = prod(
        len(db.domain_of(null)) for fact in facts for null in fact.nulls()
    )
    no_match = 1
    for fact in facts:
        fact_total = prod(len(db.domain_of(null)) for null in fact.nulls())
        no_match *= fact_total - _matching_valuations(db, atom, fact)
    return total - no_match


def count_valuations_codd(db: IncompleteDatabase, query: BCQ) -> int:
    """``#ValCd(q)(D)`` for ``q`` without the ``R(x)∧S(x)`` pattern
    (Theorem 3.7).  Requires a Codd table; domains may be non-uniform."""
    if not applies_to(query):
        raise ValueError(
            "Theorem 3.7 requires an sjfBCQ without the pattern R(x)∧S(x); "
            "got %r" % (query,)
        )
    if not db.is_codd:
        raise ValueError("count_valuations_codd requires a Codd table")

    result = 1
    query_relations = query.relations
    atoms_by_relation = {atom.relation: atom for atom in query.atoms}
    for relation, atom in sorted(atoms_by_relation.items()):
        result *= _count_atom(db, atom)
        if result == 0:
            return 0
    # Nulls in relations outside sig(q) are unconstrained.
    for fact in db.facts:
        if fact.relation not in query_relations:
            for null in fact.nulls():
                result *= len(db.domain_of(null))
    return result
