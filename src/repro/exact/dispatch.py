"""Front-door counting API: plan, then run the chosen registry method.

:func:`solve` is the one front door: ``solve(problem, db, query,
method=..., weights=..., budget=...)`` plans the instance through the
solver planner (:mod:`repro.exact.planner`) — a registry in which every
algorithm declares its problem kinds, applicability conditions, capability
flags and a cheap cost estimate — executes the chosen entry, and returns a
structured :class:`Answer` carrying the count, the explainable
:class:`Plan`, wall seconds, and the observability stats captured during
the run.  The historical per-problem functions (``count_valuations`` /
``count_completions`` / :func:`count_valuations_weighted` /
:func:`count_valuations_sweep`) are thin wrappers over :func:`solve` with
their signatures and behavior unchanged.  There is no per-method
conditional here: adding a solver is one
:func:`repro.exact.planner.register` call, and ``repro-count plan`` prints
the full decision (chosen method, rejected alternatives, reasons) for any
instance.

Method vocabulary (see the registry for the authoritative table):

=================== ======================================================
``auto``            cheapest applicable method: a polynomial Table 1
                    algorithm when one applies, else ``lineage`` on
                    (U)CQs, else ``brute``
``poly``            polynomial algorithm or :class:`NoPolynomialAlgorithm`
``single-occurrence`` Theorem 3.6 closed formula (``#Val``, weighted too)
``codd`` / ``uniform`` / ``uniform-unary``  Theorems 3.7 / 3.9 / 4.6
``lineage``         compile to CNF, exact #SAT with component caching;
                    degrades to ``brute`` on non-(U)CQs
``circuit``         the same search recorded once as a d-DNNF circuit
                    (weighted counts, marginals and exact samples become
                    linear passes); degrades to ``brute`` on non-(U)CQs
``brute``           enumerate all valuations (opt-in ``budget``)
=================== ======================================================

``budget`` bounds *enumeration* and hence only applies to ``brute``: the
lineage/circuit backends, like any exact #SAT solver, run to completion,
and their worst case (high-treewidth lineage) is time- and memory-bound by
the search rather than by a valuation count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.query import BooleanQuery
from repro.db.incomplete import IncompleteDatabase
from repro.exact import brute
from repro.exact import planner
from repro.exact.planner import NoPolynomialAlgorithm, Plan
from repro.obs import capture as _capture

__all__ = [
    "Answer",
    "NoPolynomialAlgorithm",
    "Plan",
    "count_completions",
    "count_completions_batch",
    "count_valuations",
    "count_valuations_batch",
    "count_valuations_sweep",
    "count_valuations_weighted",
    "plan_completions",
    "plan_sweep",
    "plan_valuations",
    "plan_valuations_weighted",
    "resolve_completion_method",
    "resolve_sweep_method",
    "resolve_valuation_method",
    "resolve_weighted_method",
    "select_completion_algorithm",
    "select_valuation_algorithm",
    "solve",
]


# -- the unified front door -------------------------------------------------


@dataclass(frozen=True)
class Answer:
    """One solved counting question, with how it was answered.

    ``count`` is the problem's result (an int for ``val``/``comp``, a
    number for ``val-weighted``, a marginal table for ``marginals``, a
    list of numbers for ``sweep``); ``method`` the concrete registry
    method that ran; ``plan`` the full explainable decision;
    ``seconds`` the wall time of the run; ``stats`` the observability
    digest captured while solving (``phases``/``counters``, empty when
    the obs layer is disabled).
    """

    problem: str
    count: Any
    method: str
    plan: Plan
    seconds: float
    stats: dict[str, Any] = field(default_factory=dict)


def solve(
    problem: str,
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    *,
    method: str = "auto",
    weights: Any = None,
    budget: int | None = brute.DEFAULT_BUDGET,
) -> Answer:
    """Answer one counting question: plan, run, report.

    ``problem`` is a planner problem kind (:data:`repro.exact.planner.
    PROBLEMS`): ``'val'``, ``'comp'``, ``'val-weighted'``,
    ``'marginals'`` or ``'sweep'``.  ``method`` is the problem's planner
    vocabulary (``'auto'``, ``'poly'`` where offered, or a concrete
    method name); ``weights`` is one per-null weight table for the
    weighted problems and a *sequence* of tables for ``'sweep'``;
    ``budget`` only limits ``brute``.

    Raises :class:`ValueError` for an unknown problem or method,
    :class:`NoPolynomialAlgorithm` when ``method='poly'`` hits a #P-hard
    cell — exactly the errors the per-problem wrappers have always
    raised.
    """
    built = planner.plan(problem, db, query, method)
    if built.chosen is None:
        if method == "poly":
            raise NoPolynomialAlgorithm(built.error)
        raise ValueError(built.error)
    started = time.perf_counter()
    with _capture() as captured:
        count = planner.run(
            problem, built.chosen, db, query, budget=budget, weights=weights
        )
    seconds = time.perf_counter() - started
    stats: dict[str, Any] = {}
    phases = captured.phase_totals()
    if phases:
        stats["phases"] = {
            name: round(value, 6) for name, value in sorted(phases.items())
        }
    if captured.counters:
        stats["counters"] = dict(sorted(captured.counters.items()))
    return Answer(
        problem=problem,
        count=count,
        method=built.chosen,
        plan=built,
        seconds=seconds,
        stats=stats,
    )


# -- polynomial-cell selection ---------------------------------------------


def _select_polynomial(
    problem: str, db: IncompleteDatabase, query: BooleanQuery | None
) -> str | None:
    # The planner's poly mode already is "cheapest applicable polynomial
    # method, or none"; a plan never raises, it just leaves chosen=None.
    return planner.plan(problem, db, query, "poly").chosen


def select_valuation_algorithm(
    db: IncompleteDatabase, query: BooleanQuery
) -> str | None:
    """Name of the applicable polynomial ``#Val`` algorithm, or ``None``.

    Preference order (encoded as registry cost tiers): the Theorem 3.6
    formula, then Theorem 3.7 (Codd tables), then Theorem 3.9 (uniform
    naive tables).
    """
    return _select_polynomial("val", db, query)


def select_completion_algorithm(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> str | None:
    """Name of the applicable polynomial ``#Comp`` algorithm, or ``None``."""
    return _select_polynomial("comp", db, query)


# -- plans -----------------------------------------------------------------


def plan_valuations(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> Plan:
    """The explainable ``#Val`` plan (chosen method + rejected alternatives)."""
    return planner.plan("val", db, query, method)


def plan_completions(
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    method: str = "auto",
) -> Plan:
    """The explainable ``#Comp`` plan."""
    return planner.plan("comp", db, query, method)


def plan_valuations_weighted(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> Plan:
    """The explainable weighted-``#Val`` plan."""
    return planner.plan("val-weighted", db, query, method)


def plan_sweep(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> Plan:
    """The explainable plan for a weighted-``#Val`` sweep (one instance,
    many weight tables)."""
    return planner.plan("sweep", db, query, method)


# -- resolution ------------------------------------------------------------


def resolve_valuation_method(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> str:
    """The concrete algorithm ``count_valuations`` will run.

    ``auto`` resolves to the cheapest applicable registry method
    (polynomial if one exists, else ``lineage`` on (U)CQs, else
    ``brute``); ``poly`` raises :class:`NoPolynomialAlgorithm` on hard
    cells; other names resolve to themselves (``lineage``/``circuit``
    degrade to ``brute`` on queries the compiler cannot encode).
    """
    return planner.resolve("val", db, query, method)


def resolve_completion_method(
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    method: str = "auto",
) -> str:
    """The concrete algorithm ``count_completions`` will run."""
    return planner.resolve("comp", db, query, method)


def resolve_weighted_method(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> str:
    """The concrete algorithm :func:`count_valuations_weighted` will run.

    ``auto`` prefers the Theorem 3.6 closed form (weighted counting stays
    a product of per-null sums on that cell), then the circuit backend on
    any other (U)CQ, then weighted brute enumeration.
    """
    return planner.resolve("val-weighted", db, query, method)


def resolve_sweep_method(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> str:
    """The concrete algorithm :func:`count_valuations_sweep` will run.

    Same preference order as :func:`resolve_weighted_method` — the
    closed form on the Theorem 3.6 cell (one per-null product per
    table), else the circuit backend, which compiles once and answers
    every table in one batched pass, else brute enumeration per table.
    """
    return planner.resolve("sweep", db, query, method)


# -- execution (thin wrappers over ``solve``) -------------------------------


def count_valuations(
    db: IncompleteDatabase,
    query: BooleanQuery,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
) -> int:
    """``#Val(q)(D)`` with planner-backed algorithm selection.

    ``method='poly'`` refuses to fall back to an exponential-worst-case
    algorithm (raises :class:`NoPolynomialAlgorithm` on hard cells);
    explicit method names force one algorithm.  ``budget`` only limits
    ``brute``.
    """
    return solve("val", db, query, method=method, budget=budget).count


def count_completions(
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
) -> int:
    """``#Comp(q)(D)`` (or the total number of completions for
    ``query=None``) with planner-backed algorithm selection.  ``budget``
    only limits ``brute``."""
    return solve("comp", db, query, method=method, budget=budget).count


def count_valuations_weighted(
    db: IncompleteDatabase,
    query: BooleanQuery,
    weights=None,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
):
    """Weighted ``#Val(q)(D)``: each satisfying valuation contributes its
    product of per-null value weights.

    ``weights`` maps nulls to value-weight tables (see
    :func:`repro.db.valuation.resolve_null_weights`); unlisted nulls weigh
    ``1`` per value, so ``weights=None`` degenerates to the plain count.
    Exact for int/Fraction weights.  ``budget`` only limits ``brute``.
    """
    return solve(
        "val-weighted", db, query, method=method, weights=weights,
        budget=budget,
    ).count


def count_valuations_sweep(
    db: IncompleteDatabase,
    query: BooleanQuery,
    weight_rows,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
) -> list:
    """Weighted ``#Val(q)(D)`` under each of N weight tables: one answer
    per table, in order.

    Equivalent to ``[count_valuations_weighted(db, query, row) for row
    in weight_rows]`` but planned **once**: the circuit method compiles
    the instance a single time and answers every table in one batched
    circuit pass (:meth:`~repro.compile.backend.ValuationCircuit.
    weighted_count_many`).  Exact for int/Fraction weights; ``budget``
    only limits ``brute``.
    """
    return solve(
        "sweep", db, query, method=method, weights=list(weight_rows),
        budget=budget,
    ).count


# -- batch wrappers --------------------------------------------------------


def _count_batch(
    problem: str,
    instances,
    method: str,
    budget: int | None,
    workers: int | None,
) -> list[int]:
    # Imported lazily: the engine executes jobs through this module, so a
    # top-level import would be circular.
    from repro.engine import CountJob, run_batch

    jobs = [
        CountJob(
            problem, db, query, method=method, budget=budget,
            label="batch-%d" % index,
        )
        for index, (db, query) in enumerate(instances)
    ]
    results = run_batch(jobs, workers=workers)
    for result in results:
        if not result.ok:
            raise RuntimeError(
                "batch job %s failed: %s" % (result.label, result.error)
            )
    return [result.count for result in results]  # type: ignore[misc]


def count_valuations_batch(
    instances,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
    workers: int | None = None,
) -> list[int]:
    """``#Val`` for many ``(db, query)`` pairs through the batch engine.

    Instances are deduplicated by canonical fingerprint and the unique
    cache misses fan out to a multiprocessing pool (:mod:`repro.engine`) —
    on repeated or isomorphic instances this is far cheaper than calling
    :func:`count_valuations` in a loop.  The first failing job raises.
    """
    return _count_batch("val", instances, method, budget, workers)


def count_completions_batch(
    instances,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
    workers: int | None = None,
) -> list[int]:
    """``#Comp`` for many ``(db, query_or_None)`` pairs through the engine."""
    return _count_batch("comp", instances, method, budget, workers)
