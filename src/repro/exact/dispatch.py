"""Front-door counting API: pick the right algorithm for the instance.

``count_valuations`` / ``count_completions`` inspect the query (via the
pattern detectors) and the database (Codd? uniform? unary?) and route to the
fastest *exact* algorithm available.  ``method`` forces a specific
algorithm (useful for tests and benchmarks).

Method table (``#Val``):

=================== ======================================================
``auto``            polynomial algorithm if one applies, else ``lineage``
                    for (U)CQs, else ``brute``
``poly``            polynomial algorithm or :class:`NoPolynomialAlgorithm`
``single-occurrence`` Theorem 3.6 closed formula (pattern-free sjfBCQs)
``codd``            Theorem 3.7 per-null independence (Codd tables)
``uniform``         Theorem 3.9 algorithm (uniform naive tables)
``lineage``         compile to CNF, exact #SAT with component caching
                    (:mod:`repro.compile`) — exact on *every* (U)CQ cell,
                    exponential only in the lineage's treewidth.  On a
                    non-(U)CQ (which the compiler cannot encode) the
                    method falls back cleanly to ``brute``
``circuit``         same search, recorded once as a d-DNNF circuit
                    (:class:`~repro.compile.backend.ValuationCircuit`) —
                    identical exact count, and the compiled artifact then
                    answers weighted counts, marginals and exact samples
                    in linear passes.  Pick it (or let the batch engine
                    pick it) when the instance will be asked more than
                    one question; falls back to ``brute`` on non-(U)CQs
``brute``           enumerate all valuations (opt-in ``budget``)
=================== ======================================================

Method table (``#Comp``):

=================== ======================================================
``auto``            ``uniform-unary`` if it applies, else ``lineage`` for
                    (U)CQs / no query, else ``brute``
``poly``            polynomial algorithm or :class:`NoPolynomialAlgorithm`
``uniform-unary``   Theorem 4.6 closed form (uniform, unary schema)
``lineage``         canonical-fact encoding + *projected* exact model
                    counting (:mod:`repro.compile`)
``circuit``         the projected search recorded as a d-DNNF
                    (:class:`~repro.compile.backend.CompletionCircuit`);
                    adds per-fact marginals and completion sampling on
                    top of the identical exact count
``brute``           enumerate valuations, deduplicate completions
=================== ======================================================

:func:`count_valuations_weighted` is the generalized (weighted) ``#Val``
front door: per-null value weights, closed form on the Theorem 3.6 cell,
circuit passes everywhere else a (U)CQ lineage exists, weighted brute
enumeration as the last resort.

On the #P-hard cells of Table 1 ``auto`` therefore no longer falls off an
exponential cliff at ``prod |dom(⊥)|`` ≈ 10^6: the lineage backend routinely
handles instances with 10^30+ valuations when the lineage has moderate
treewidth (see ``benchmarks/bench_lineage.py``).

Note that ``budget`` bounds *enumeration* and hence only applies to
``brute``: the lineage backend, like any exact #SAT solver, runs to
completion, and its worst case (high-treewidth lineage) is time- and
memory-bound by the search rather than by a valuation count.  For hard
work that must stay budgeted, force ``method='brute'``.
"""

from __future__ import annotations

from repro.compile.backend import (
    ValuationCircuit,
    count_completions_circuit,
    count_completions_lineage,
    count_valuations_circuit,
    count_valuations_lineage,
    lineage_supports,
)
from repro.core.query import BCQ, BooleanQuery
from repro.db.incomplete import IncompleteDatabase
from repro.exact import brute
from repro.exact import comp_uniform as _comp_uniform
from repro.exact import val_codd as _val_codd
from repro.exact import val_nonuniform as _val_nonuniform
from repro.exact import val_uniform as _val_uniform


class NoPolynomialAlgorithm(ValueError):
    """Raised by ``method='poly'`` when no tractable algorithm applies —
    i.e. the instance sits in a #P-hard cell of Table 1."""


_VAL_METHODS = (
    "auto",
    "poly",
    "brute",
    "lineage",
    "circuit",
    "single-occurrence",
    "codd",
    "uniform",
)
_COMP_METHODS = ("auto", "poly", "brute", "lineage", "circuit", "uniform-unary")
_WEIGHTED_METHODS = ("auto", "brute", "circuit", "single-occurrence")


def select_valuation_algorithm(
    db: IncompleteDatabase, query: BCQ
) -> str | None:
    """Name of the applicable polynomial #Val algorithm, or ``None``.

    Preference order: the Theorem 3.6 formula (cheapest, works whenever the
    query is fully pattern-free), then Theorem 3.7 (Codd tables), then
    Theorem 3.9 (uniform naive tables).
    """
    if not isinstance(query, BCQ):
        return None
    if not query.is_self_join_free or not query.is_variable_only:
        return None
    if _val_nonuniform.applies_to(query):
        return "single-occurrence"
    if db.is_codd and _val_codd.applies_to(query):
        return "codd"
    if db.is_uniform and _val_uniform.applies_to(query):
        return "uniform"
    return None


def resolve_valuation_method(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> str:
    """The concrete algorithm ``count_valuations`` will run.

    ``auto`` resolves to the best applicable algorithm (polynomial if one
    exists, else ``lineage`` on (U)CQs, else ``brute``); ``poly`` raises
    :class:`NoPolynomialAlgorithm` on hard cells; other names resolve to
    themselves.
    """
    if method not in _VAL_METHODS:
        raise ValueError("unknown method %r (one of %s)" % (method, _VAL_METHODS))
    if method in ("lineage", "circuit") and not lineage_supports(query):
        # The lineage compiler only encodes (U)CQs; degrade to the one
        # method that works on arbitrary Boolean queries instead of
        # failing deep inside the encoder.
        return "brute"
    if method not in ("auto", "poly"):
        return method
    selected = (
        select_valuation_algorithm(db, query)
        if isinstance(query, BCQ)
        else None
    )
    if selected is not None:
        return selected
    if method == "poly":
        raise NoPolynomialAlgorithm(
            "no polynomial-time algorithm for %r on this instance; "
            "the dichotomies place it in a #P-hard cell" % (query,)
        )
    if lineage_supports(query):
        return "lineage"
    return "brute"


def count_valuations(
    db: IncompleteDatabase,
    query: BooleanQuery,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
) -> int:
    """``#Val(q)(D)`` with automatic algorithm selection.

    ``method='poly'`` refuses to fall back to an exponential-worst-case
    algorithm (raises :class:`NoPolynomialAlgorithm` on hard cells);
    explicit method names force one algorithm.  ``budget`` only limits
    ``brute``.
    """
    resolved = resolve_valuation_method(db, query, method)
    if resolved == "brute":
        return brute.count_valuations_brute(db, query, budget=budget)
    if resolved == "lineage":
        return count_valuations_lineage(db, query)
    if resolved == "circuit":
        return count_valuations_circuit(db, query)
    if resolved == "single-occurrence":
        return _val_nonuniform.count_valuations_single_occurrence(db, query)
    if resolved == "codd":
        return _val_codd.count_valuations_codd(db, query)
    assert resolved == "uniform"
    return _val_uniform.count_valuations_uniform(db, query)


def select_completion_algorithm(
    db: IncompleteDatabase, query: BCQ | None
) -> str | None:
    """Name of the applicable polynomial #Comp algorithm, or ``None``."""
    if query is not None and not isinstance(query, BCQ):
        return None
    if query is not None and not _comp_uniform.applies_to(query):
        return None
    if not db.is_uniform:
        return None
    if any(fact.arity != 1 for fact in db.facts):
        return None
    return "uniform-unary"


def resolve_completion_method(
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    method: str = "auto",
) -> str:
    """The concrete algorithm ``count_completions`` will run."""
    if method not in _COMP_METHODS:
        raise ValueError("unknown method %r (one of %s)" % (method, _COMP_METHODS))
    if method in ("lineage", "circuit") and not lineage_supports(query):
        return "brute"
    if method not in ("auto", "poly"):
        return method
    bcq = query if isinstance(query, BCQ) or query is None else False
    selected = (
        select_completion_algorithm(db, bcq) if bcq is not False else None
    )
    if selected is not None:
        return selected
    if method == "poly":
        raise NoPolynomialAlgorithm(
            "no polynomial-time algorithm for counting completions on this "
            "instance; the dichotomies place it in a #P-hard cell"
        )
    if lineage_supports(query):
        return "lineage"
    return "brute"


def count_completions(
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
) -> int:
    """``#Comp(q)(D)`` (or the total number of completions for
    ``query=None``) with automatic algorithm selection.  ``budget`` only
    limits ``brute``."""
    resolved = resolve_completion_method(db, query, method)
    if resolved == "brute":
        return brute.count_completions_brute(db, query, budget=budget)
    if resolved == "lineage":
        return count_completions_lineage(db, query)
    if resolved == "circuit":
        return count_completions_circuit(db, query)
    assert resolved == "uniform-unary"
    return _comp_uniform.count_completions_uniform_unary(db, query)


def resolve_weighted_method(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> str:
    """The concrete algorithm :func:`count_valuations_weighted` will run.

    ``auto`` prefers the Theorem 3.6 closed form (weighted counting stays
    a product of per-null sums on that cell), then the circuit backend on
    any other (U)CQ, then weighted brute enumeration.  The polynomial
    ``codd``/``uniform`` algorithms count unweighted multiplicities and
    have no weighted analogue here, so they never apply.
    """
    if method not in _WEIGHTED_METHODS:
        raise ValueError(
            "unknown method %r (one of %s)" % (method, _WEIGHTED_METHODS)
        )
    if method == "circuit" and not lineage_supports(query):
        return "brute"
    if method != "auto":
        return method
    if isinstance(query, BCQ) and _val_nonuniform.applies_to(query):
        return "single-occurrence"
    if lineage_supports(query):
        return "circuit"
    return "brute"


def count_valuations_weighted(
    db: IncompleteDatabase,
    query: BooleanQuery,
    weights=None,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
):
    """Weighted ``#Val(q)(D)``: each satisfying valuation contributes its
    product of per-null value weights.

    ``weights`` maps nulls to value-weight tables (see
    :func:`repro.db.valuation.resolve_null_weights`); unlisted nulls weigh
    ``1`` per value, so ``weights=None`` degenerates to the plain count.
    Exact for int/Fraction weights.  ``budget`` only limits ``brute``.
    """
    resolved = resolve_weighted_method(db, query, method)
    if resolved == "brute":
        return brute.count_valuations_weighted_brute(
            db, query, weights, budget=budget
        )
    if resolved == "circuit":
        return ValuationCircuit(db, query).weighted_count(weights)
    assert resolved == "single-occurrence"
    return _val_nonuniform.count_valuations_weighted_single_occurrence(
        db, query, weights
    )


def _count_batch(
    problem: str,
    instances,
    method: str,
    budget: int | None,
    workers: int | None,
) -> list[int]:
    # Imported lazily: the engine executes jobs through this module, so a
    # top-level import would be circular.
    from repro.engine import CountJob, run_batch

    jobs = [
        CountJob(
            problem, db, query, method=method, budget=budget,
            label="batch-%d" % index,
        )
        for index, (db, query) in enumerate(instances)
    ]
    results = run_batch(jobs, workers=workers)
    for result in results:
        if not result.ok:
            raise RuntimeError(
                "batch job %s failed: %s" % (result.label, result.error)
            )
    return [result.count for result in results]  # type: ignore[misc]


def count_valuations_batch(
    instances,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
    workers: int | None = None,
) -> list[int]:
    """``#Val`` for many ``(db, query)`` pairs through the batch engine.

    Instances are deduplicated by canonical fingerprint and the unique
    cache misses fan out to a multiprocessing pool (:mod:`repro.engine`) —
    on repeated or isomorphic instances this is far cheaper than calling
    :func:`count_valuations` in a loop.  The first failing job raises.
    """
    return _count_batch("val", instances, method, budget, workers)


def count_completions_batch(
    instances,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
    workers: int | None = None,
) -> list[int]:
    """``#Comp`` for many ``(db, query_or_None)`` pairs through the engine."""
    return _count_batch("comp", instances, method, budget, workers)
