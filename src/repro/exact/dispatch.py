"""Front-door counting API: pick the right algorithm for the instance.

``count_valuations`` / ``count_completions`` inspect the query (via the
pattern detectors) and the database (Codd? uniform? unary?) and route to the
fastest *exact* algorithm the dichotomies provide, falling back to
brute-force enumeration — with an explicit opt-in budget — on the provably
hard cells.  ``method`` forces a specific algorithm (useful for tests and
benchmarks).
"""

from __future__ import annotations

from repro.core.query import BCQ, BooleanQuery
from repro.db.incomplete import IncompleteDatabase
from repro.exact import brute
from repro.exact import comp_uniform as _comp_uniform
from repro.exact import val_codd as _val_codd
from repro.exact import val_nonuniform as _val_nonuniform
from repro.exact import val_uniform as _val_uniform


class NoPolynomialAlgorithm(ValueError):
    """Raised by ``method='poly'`` when no tractable algorithm applies —
    i.e. the instance sits in a #P-hard cell of Table 1."""


_VAL_METHODS = ("auto", "poly", "brute", "single-occurrence", "codd", "uniform")
_COMP_METHODS = ("auto", "poly", "brute", "uniform-unary")


def select_valuation_algorithm(
    db: IncompleteDatabase, query: BCQ
) -> str | None:
    """Name of the applicable polynomial #Val algorithm, or ``None``.

    Preference order: the Theorem 3.6 formula (cheapest, works whenever the
    query is fully pattern-free), then Theorem 3.7 (Codd tables), then
    Theorem 3.9 (uniform naive tables).
    """
    if not isinstance(query, BCQ):
        return None
    if not query.is_self_join_free or not query.is_variable_only:
        return None
    if _val_nonuniform.applies_to(query):
        return "single-occurrence"
    if db.is_codd and _val_codd.applies_to(query):
        return "codd"
    if db.is_uniform and _val_uniform.applies_to(query):
        return "uniform"
    return None


def count_valuations(
    db: IncompleteDatabase,
    query: BooleanQuery,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
) -> int:
    """``#Val(q)(D)`` with automatic algorithm selection.

    ``method='poly'`` refuses to fall back to enumeration (raises
    :class:`NoPolynomialAlgorithm` on hard cells); explicit method names
    force one algorithm.
    """
    if method not in _VAL_METHODS:
        raise ValueError("unknown method %r (one of %s)" % (method, _VAL_METHODS))
    if method == "brute":
        return brute.count_valuations_brute(db, query, budget=budget)
    if method == "single-occurrence":
        return _val_nonuniform.count_valuations_single_occurrence(db, query)
    if method == "codd":
        return _val_codd.count_valuations_codd(db, query)
    if method == "uniform":
        return _val_uniform.count_valuations_uniform(db, query)

    selected = (
        select_valuation_algorithm(db, query)
        if isinstance(query, BCQ)
        else None
    )
    if selected == "single-occurrence":
        return _val_nonuniform.count_valuations_single_occurrence(db, query)
    if selected == "codd":
        return _val_codd.count_valuations_codd(db, query)
    if selected == "uniform":
        return _val_uniform.count_valuations_uniform(db, query)
    if method == "poly":
        raise NoPolynomialAlgorithm(
            "no polynomial-time algorithm for %r on this instance; "
            "the dichotomies place it in a #P-hard cell" % (query,)
        )
    return brute.count_valuations_brute(db, query, budget=budget)


def select_completion_algorithm(
    db: IncompleteDatabase, query: BCQ | None
) -> str | None:
    """Name of the applicable polynomial #Comp algorithm, or ``None``."""
    if query is not None and not isinstance(query, BCQ):
        return None
    if query is not None and not _comp_uniform.applies_to(query):
        return None
    if not db.is_uniform:
        return None
    if any(fact.arity != 1 for fact in db.facts):
        return None
    return "uniform-unary"


def count_completions(
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
) -> int:
    """``#Comp(q)(D)`` (or the total number of completions for
    ``query=None``) with automatic algorithm selection."""
    if method not in _COMP_METHODS:
        raise ValueError("unknown method %r (one of %s)" % (method, _COMP_METHODS))
    if method == "brute":
        return brute.count_completions_brute(db, query, budget=budget)
    if method == "uniform-unary":
        return _comp_uniform.count_completions_uniform_unary(db, query)

    bcq = query if isinstance(query, BCQ) or query is None else False
    selected = (
        select_completion_algorithm(db, bcq) if bcq is not False else None
    )
    if selected == "uniform-unary":
        return _comp_uniform.count_completions_uniform_unary(db, query)
    if method == "poly":
        raise NoPolynomialAlgorithm(
            "no polynomial-time algorithm for counting completions on this "
            "instance; the dichotomies place it in a #P-hard cell"
        )
    return brute.count_completions_brute(db, query, budget=budget)
