"""Front-door counting API: plan, then run the chosen registry method.

``count_valuations`` / ``count_completions`` /
:func:`count_valuations_weighted` resolve their ``method`` argument through
the solver planner (:mod:`repro.exact.planner`) — a registry in which every
algorithm declares its problem kinds, applicability conditions, capability
flags and a cheap cost estimate — and then execute the chosen entry.  There
is no per-method conditional here: adding a solver is one
:func:`repro.exact.planner.register` call, and ``repro-count plan`` prints
the full decision (chosen method, rejected alternatives, reasons) for any
instance.

Method vocabulary (see the registry for the authoritative table):

=================== ======================================================
``auto``            cheapest applicable method: a polynomial Table 1
                    algorithm when one applies, else ``lineage`` on
                    (U)CQs, else ``brute``
``poly``            polynomial algorithm or :class:`NoPolynomialAlgorithm`
``single-occurrence`` Theorem 3.6 closed formula (``#Val``, weighted too)
``codd`` / ``uniform`` / ``uniform-unary``  Theorems 3.7 / 3.9 / 4.6
``lineage``         compile to CNF, exact #SAT with component caching;
                    degrades to ``brute`` on non-(U)CQs
``circuit``         the same search recorded once as a d-DNNF circuit
                    (weighted counts, marginals and exact samples become
                    linear passes); degrades to ``brute`` on non-(U)CQs
``brute``           enumerate all valuations (opt-in ``budget``)
=================== ======================================================

``budget`` bounds *enumeration* and hence only applies to ``brute``: the
lineage/circuit backends, like any exact #SAT solver, run to completion,
and their worst case (high-treewidth lineage) is time- and memory-bound by
the search rather than by a valuation count.
"""

from __future__ import annotations

from repro.core.query import BooleanQuery
from repro.db.incomplete import IncompleteDatabase
from repro.exact import brute
from repro.exact import planner
from repro.exact.planner import NoPolynomialAlgorithm, Plan

__all__ = [
    "NoPolynomialAlgorithm",
    "Plan",
    "count_completions",
    "count_completions_batch",
    "count_valuations",
    "count_valuations_batch",
    "count_valuations_weighted",
    "plan_completions",
    "plan_valuations",
    "plan_valuations_weighted",
    "resolve_completion_method",
    "resolve_valuation_method",
    "resolve_weighted_method",
    "select_completion_algorithm",
    "select_valuation_algorithm",
]


# -- polynomial-cell selection ---------------------------------------------


def _select_polynomial(
    problem: str, db: IncompleteDatabase, query: BooleanQuery | None
) -> str | None:
    # The planner's poly mode already is "cheapest applicable polynomial
    # method, or none"; a plan never raises, it just leaves chosen=None.
    return planner.plan(problem, db, query, "poly").chosen


def select_valuation_algorithm(
    db: IncompleteDatabase, query: BooleanQuery
) -> str | None:
    """Name of the applicable polynomial ``#Val`` algorithm, or ``None``.

    Preference order (encoded as registry cost tiers): the Theorem 3.6
    formula, then Theorem 3.7 (Codd tables), then Theorem 3.9 (uniform
    naive tables).
    """
    return _select_polynomial("val", db, query)


def select_completion_algorithm(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> str | None:
    """Name of the applicable polynomial ``#Comp`` algorithm, or ``None``."""
    return _select_polynomial("comp", db, query)


# -- plans -----------------------------------------------------------------


def plan_valuations(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> Plan:
    """The explainable ``#Val`` plan (chosen method + rejected alternatives)."""
    return planner.plan("val", db, query, method)


def plan_completions(
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    method: str = "auto",
) -> Plan:
    """The explainable ``#Comp`` plan."""
    return planner.plan("comp", db, query, method)


def plan_valuations_weighted(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> Plan:
    """The explainable weighted-``#Val`` plan."""
    return planner.plan("val-weighted", db, query, method)


# -- resolution ------------------------------------------------------------


def resolve_valuation_method(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> str:
    """The concrete algorithm ``count_valuations`` will run.

    ``auto`` resolves to the cheapest applicable registry method
    (polynomial if one exists, else ``lineage`` on (U)CQs, else
    ``brute``); ``poly`` raises :class:`NoPolynomialAlgorithm` on hard
    cells; other names resolve to themselves (``lineage``/``circuit``
    degrade to ``brute`` on queries the compiler cannot encode).
    """
    return planner.resolve("val", db, query, method)


def resolve_completion_method(
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    method: str = "auto",
) -> str:
    """The concrete algorithm ``count_completions`` will run."""
    return planner.resolve("comp", db, query, method)


def resolve_weighted_method(
    db: IncompleteDatabase, query: BooleanQuery, method: str = "auto"
) -> str:
    """The concrete algorithm :func:`count_valuations_weighted` will run.

    ``auto`` prefers the Theorem 3.6 closed form (weighted counting stays
    a product of per-null sums on that cell), then the circuit backend on
    any other (U)CQ, then weighted brute enumeration.
    """
    return planner.resolve("val-weighted", db, query, method)


# -- execution -------------------------------------------------------------


def count_valuations(
    db: IncompleteDatabase,
    query: BooleanQuery,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
) -> int:
    """``#Val(q)(D)`` with planner-backed algorithm selection.

    ``method='poly'`` refuses to fall back to an exponential-worst-case
    algorithm (raises :class:`NoPolynomialAlgorithm` on hard cells);
    explicit method names force one algorithm.  ``budget`` only limits
    ``brute``.
    """
    resolved = resolve_valuation_method(db, query, method)
    return planner.run("val", resolved, db, query, budget=budget)


def count_completions(
    db: IncompleteDatabase,
    query: BooleanQuery | None = None,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
) -> int:
    """``#Comp(q)(D)`` (or the total number of completions for
    ``query=None``) with planner-backed algorithm selection.  ``budget``
    only limits ``brute``."""
    resolved = resolve_completion_method(db, query, method)
    return planner.run("comp", resolved, db, query, budget=budget)


def count_valuations_weighted(
    db: IncompleteDatabase,
    query: BooleanQuery,
    weights=None,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
):
    """Weighted ``#Val(q)(D)``: each satisfying valuation contributes its
    product of per-null value weights.

    ``weights`` maps nulls to value-weight tables (see
    :func:`repro.db.valuation.resolve_null_weights`); unlisted nulls weigh
    ``1`` per value, so ``weights=None`` degenerates to the plain count.
    Exact for int/Fraction weights.  ``budget`` only limits ``brute``.
    """
    resolved = resolve_weighted_method(db, query, method)
    return planner.run(
        "val-weighted", resolved, db, query, budget=budget, weights=weights
    )


# -- batch wrappers --------------------------------------------------------


def _count_batch(
    problem: str,
    instances,
    method: str,
    budget: int | None,
    workers: int | None,
) -> list[int]:
    # Imported lazily: the engine executes jobs through this module, so a
    # top-level import would be circular.
    from repro.engine import CountJob, run_batch

    jobs = [
        CountJob(
            problem, db, query, method=method, budget=budget,
            label="batch-%d" % index,
        )
        for index, (db, query) in enumerate(instances)
    ]
    results = run_batch(jobs, workers=workers)
    for result in results:
        if not result.ok:
            raise RuntimeError(
                "batch job %s failed: %s" % (result.label, result.error)
            )
    return [result.count for result in results]  # type: ignore[misc]


def count_valuations_batch(
    instances,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
    workers: int | None = None,
) -> list[int]:
    """``#Val`` for many ``(db, query)`` pairs through the batch engine.

    Instances are deduplicated by canonical fingerprint and the unique
    cache misses fan out to a multiprocessing pool (:mod:`repro.engine`) —
    on repeated or isomorphic instances this is far cheaper than calling
    :func:`count_valuations` in a loop.  The first failing job raises.
    """
    return _count_batch("val", instances, method, budget, workers)


def count_completions_batch(
    instances,
    method: str = "auto",
    budget: int | None = brute.DEFAULT_BUDGET,
    workers: int | None = None,
) -> list[int]:
    """``#Comp`` for many ``(db, query_or_None)`` pairs through the engine."""
    return _count_batch("comp", instances, method, budget, workers)
