"""The retained tuple-based model counter: the differential-testing oracle.

This is the pre-trail implementation of the exact counter, kept verbatim
as an independent slow path: residual formulas are immutable canonically
sorted clause tuples, every decision and unit propagation rebuilds the
touched clauses as fresh tuples, and component splitting re-runs
union-find over materialized clause sets at every node.  The trail-based
core in :mod:`repro.compile.sharpsat` replaced it on the hot path; this
module exists so that

* randomized suites can assert the two cores agree **bit for bit** on
  every count (full and projected), which is the strongest cheap evidence
  the in-place propagation and its undo logic are sound;
* ``ModelCounter(..., reference=True)`` / ``count_models(...,
  reference=True)`` stay available as an escape hatch while the trail
  core is young;
* the benchmark harness has an honest "before" measurement for the
  before/after ratio it tracks.

Nothing here is exported through :mod:`repro.compile`; reach it through
the ``reference=True`` flag or import it explicitly in tests.  Do not
"optimize" this module — its value is that it stays the old code.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.complexity.cnf import CNF
from repro.compile.ordering import branching_order

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compile.ddnnf_trace import TraceBuilder

#: A residual formula: clauses as a canonically sorted tuple.
Clauses = tuple[tuple[int, ...], ...]


class ReferenceModelCounter:
    """Exact (projected) model counter over a :class:`CNF`.

    ``projection`` — variables to count over; ``None`` counts full models.
    ``order`` — static branching order; defaults to the reverse min-fill
    order of the formula's primal graph.
    ``trace`` — optional :class:`TraceBuilder`; when given, :meth:`count`
    additionally records the search as a d-DNNF circuit rooted at
    :attr:`trace_root`.
    """

    def __init__(
        self,
        cnf: CNF,
        projection: Iterable[int] | None = None,
        order: Sequence[int] | None = None,
        trace: "TraceBuilder | None" = None,
    ) -> None:
        self._cnf = cnf
        self._projection: frozenset[int] | None = (
            None if projection is None else frozenset(projection)
        )
        if self._projection is not None and any(
            v < 1 or v > cnf.num_variables for v in self._projection
        ):
            raise ValueError("projection variables must be in 1..num_variables")
        self.width: int | None
        if order is None:
            order, width = branching_order(cnf)
            self.width = width
        else:
            order = list(order)
            self.width = None
        # Rank as a flat positional table: one list index per variable
        # beats a dict probe in the innermost branching loop, and the
        # table is derived once instead of once per component.
        rank = [len(order)] * (cnf.num_variables + 1)
        for position, variable in enumerate(order):
            rank[variable] = position
        self._rank = rank
        self._trace = trace
        #: Root node of the recorded circuit (set by :meth:`count` when
        #: tracing).
        self.trace_root: int | None = None
        self._cache: dict[Clauses, tuple[int, int | None]] = {}
        self._sat_cache: dict[Clauses, bool] = {}
        self.cache_hits = 0
        self.components_split = 0
        #: Branch literals tried (parity with the trail core's statistic).
        self.decisions = 0

    # -- public API --------------------------------------------------------

    def count(self) -> int:
        """The (projected) model count of the formula.

        Temporarily raises the recursion limit — the search recurses once
        per decision level, and the default limit is too tight for
        formulas with a few hundred variables.
        """
        limit = sys.getrecursionlimit()
        needed = 10 * self._cnf.num_variables + 1_000
        try:
            if needed > limit:
                sys.setrecursionlimit(needed)
            return self._count_root()
        finally:
            sys.setrecursionlimit(limit)

    def stats(self) -> dict:
        """The uniform stats vocabulary (see ``ModelCounter.stats``).

        Keys the reference algorithm does not track — propagations,
        conflicts, trail depth, preprocessing — are ``None``; the
        algorithm itself stays untouched.
        """
        return {
            "core": "reference",
            "decisions": self.decisions,
            "propagations": None,
            "conflicts": None,
            "max_trail_depth": None,
            "cache_hits": self.cache_hits,
            "cache_entries": len(self._cache),
            "sat_cache_entries": len(self._sat_cache),
            "components_split": self.components_split,
            "width": self.width,
            "preprocessing": None,
        }

    def _count_root(self) -> int:
        trace = self._trace
        clauses, assigned, conflict = _propagate(
            tuple(sorted(self._cnf.clauses)), ()
        )
        if conflict:
            if trace is not None:
                self.trace_root = trace.false
            return 0
        constrained = {abs(lit) for c in self._cnf.clauses for lit in c}
        assigned_variables = {abs(lit) for lit in assigned}
        free = (
            set(range(1, self._cnf.num_variables + 1))
            - constrained
            - assigned_variables
        )
        free |= constrained - _variables_of(clauses) - assigned_variables
        count, node = self._count(clauses)
        if trace is not None:
            assert node is not None
            self.trace_root = trace.decision(
                [(tuple(sorted(assigned, key=abs)), tuple(sorted(free)), node)]
            )
        return (1 << self._countable(free)) * count

    # -- internals ---------------------------------------------------------

    def _countable(self, variables: set[int]) -> int:
        """How many of ``variables`` contribute a free factor of two."""
        if self._projection is None:
            return len(variables)
        return len(variables & self._projection)

    def _count(self, clauses: Clauses) -> tuple[int, int | None]:
        """Count a residual formula, splitting into components first.

        Returns ``(count, circuit node)`` — the node is ``None`` unless
        the counter records a trace.
        """
        trace = self._trace
        if not clauses:
            return 1, (None if trace is None else trace.true)
        if not clauses[0]:  # canonical sort puts the empty clause first
            return 0, (None if trace is None else trace.false)
        components = _split_components(clauses)
        if len(components) > 1:
            self.components_split += 1
        result = 1
        nodes: list[int] = []
        for component in components:
            count, node = self._count_component(component)
            result *= count
            if trace is None:
                if result == 0:
                    return 0, None
            else:
                assert node is not None
                nodes.append(node)
        if trace is None:
            return result, None
        return result, trace.product(nodes)

    def _count_component(self, clauses: Clauses) -> tuple[int, int | None]:
        cached = self._cache.get(clauses)
        if cached is not None:
            self.cache_hits += 1
            return cached
        trace = self._trace
        node: int | None = None
        component_variables = _variables_of(clauses)
        variable = self._pick_variable(component_variables)
        if variable is None:
            # Projected mode, no projection variable left: the component
            # contributes one projected model iff it is satisfiable.
            satisfiable = self._satisfiable(clauses)
            result = 1 if satisfiable else 0
            if trace is not None:
                node = trace.constant(satisfiable)
        else:
            result = 0
            branches = []
            for literal in (variable, -variable):
                self.decisions += 1
                reduced, assigned, conflict = _propagate(clauses, (literal,))
                if conflict:
                    continue
                eliminated = (
                    component_variables
                    - _variables_of(reduced)
                    - {abs(lit) for lit in assigned}
                )
                count, child = self._count(reduced)
                result += (1 << self._countable(eliminated)) * count
                if trace is not None:
                    assert child is not None
                    branches.append(
                        (
                            tuple(sorted(assigned, key=abs)),
                            tuple(sorted(eliminated)),
                            child,
                        )
                    )
            if trace is not None:
                node = trace.decision(branches)
        entry = (result, node)
        self._cache[clauses] = entry
        return entry

    def _pick_variable(self, candidates: set[int]) -> int | None:
        """Earliest variable of the branching order among ``candidates``.

        In projected mode only projection variables qualify; ``None`` means
        the component has none left.
        """
        if self._projection is not None:
            candidates = candidates & self._projection
            if not candidates:
                return None
        rank = self._rank
        return min(candidates, key=lambda v: (rank[v], v))

    def _satisfiable(self, clauses: Clauses) -> bool:
        """Plain DPLL satisfiability of a residual component."""
        if not clauses:
            return True
        if not clauses[0]:
            return False
        cached = self._sat_cache.get(clauses)
        if cached is not None:
            return cached
        rank = self._rank
        variable = min(
            _variables_of(clauses), key=lambda v: (rank[v], v)
        )
        result = False
        for literal in (variable, -variable):
            reduced, _assigned, conflict = _propagate(clauses, (literal,))
            if conflict:
                continue
            if all(
                self._satisfiable(component)
                for component in _split_components(reduced)
            ):
                result = True
                break
        self._sat_cache[clauses] = result
        return result


# -- clause-set primitives --------------------------------------------------


def _variables_of(clauses: Iterable[tuple[int, ...]]) -> set[int]:
    return {abs(literal) for clause in clauses for literal in clause}


def _propagate(
    clauses: Clauses, decisions: tuple[int, ...]
) -> tuple[Clauses, tuple[int, ...], bool]:
    """Assign ``decisions`` and run unit propagation to fixpoint.

    Returns ``(reduced clauses, all literals assigned, conflict)``.
    Satisfied clauses are dropped and false literals removed; the reduced
    set never contains a unit clause and is canonically sorted.

    Clauses are indexed by variable once per call, so each propagated
    literal touches only the clauses that actually contain its variable,
    and untouched clause tuples are carried over by reference instead of
    being rebuilt on every branch.
    """
    pending = list(decisions)
    if not pending and not any(len(clause) == 1 for clause in clauses):
        return clauses, (), False

    occurs: dict[int, list[tuple[int, ...]]] = {}
    for clause in clauses:
        if len(clause) == 1 and clause[0] not in pending:
            pending.append(clause[0])
        for literal in clause:
            occurs.setdefault(abs(literal), []).append(clause)

    assignment: set[int] = set()
    # Original clause -> its current reduced form (None = satisfied).
    # Untouched clauses have no entry and keep their original tuple.
    live: dict[tuple[int, ...], tuple[int, ...] | None] = {}
    cursor = 0
    while cursor < len(pending):
        literal = pending[cursor]
        cursor += 1
        if literal in assignment:
            continue
        if -literal in assignment:
            return (), tuple(assignment), True
        assignment.add(literal)
        for clause in occurs.get(abs(literal), ()):
            current = live.get(clause, clause)
            if current is None:
                continue
            if literal in current:
                live[clause] = None
                continue
            if -literal not in current:
                continue
            filtered = tuple(x for x in current if x != -literal)
            if not filtered:
                return (), tuple(assignment), True
            live[clause] = filtered
            if len(filtered) == 1:
                pending.append(filtered[0])
    if not live:
        return clauses, tuple(assignment), False
    reduced = sorted(
        current
        for current in (live.get(clause, clause) for clause in clauses)
        if current is not None
    )
    return tuple(reduced), tuple(assignment), False


def _split_components(clauses: Clauses) -> list[Clauses]:
    """Partition clauses into variable-connected components (union-find).

    Each component is again a canonically sorted clause tuple, directly
    usable as a cache key.
    """
    if len(clauses) <= 1:
        return [clauses] if clauses else []
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for index, clause in enumerate(clauses):
        key = -(index + 1)  # clause nodes get negative keys
        parent[key] = key
        for literal in clause:
            variable = abs(literal)
            if variable not in parent:
                parent[variable] = variable
            root_a, root_b = find(key), find(variable)
            if root_a != root_b:
                parent[root_a] = root_b

    groups: dict[int, list[tuple[int, ...]]] = {}
    for index, clause in enumerate(clauses):
        groups.setdefault(find(-(index + 1)), []).append(clause)
    if len(groups) == 1:
        return [clauses]
    # The input is sorted, so per-group append order stays sorted.
    return [tuple(group) for group in groups.values()]
