"""Rooted tree decompositions from greedy elimination orderings.

A greedy elimination of the primal graph already *is* a tree decomposition
in disguise: when vertex ``v`` is eliminated, ``{v} ∪ N_alive(v)`` — the
bag the greedy loop in :mod:`repro.compile.ordering` computes and (since
the dpdb refactor) returns — is a valid bag, and connecting each bag to
the bag of the *first-eliminated* vertex among ``N_alive(v)`` yields a
tree (a forest, one tree per connected component) whose width is the
elimination width.  This module materializes that structure:

* ``parent[i]`` / ``children[i]`` — the rooted forest over elimination
  positions; position ``i`` eliminates ``order[i]``, and parents always
  come *later* in the order, so ascending position is a leaves-first
  topological schedule (the DP needs no recursion);
* every clause is attached to the bag of its first-eliminated variable,
  which provably contains all of the clause's variables (a clause is a
  clique of the primal graph);
* each node's **separator** (``bag minus the eliminated vertex``) is the
  interface its DP message crosses — it is always a subset of the parent
  bag, which is what makes the join/project/sum recurrence of
  :mod:`repro.compile.dpdb` well-defined.

In nice-decomposition vocabulary each node *forgets* its eliminated
vertex (the projection step), *introduces* the bag variables no child
separator covers, and *joins* when it has two or more children;
:meth:`Decomposition.node_kinds` reports the census and
:meth:`Decomposition.stats` the headline numbers the obs layer records.

``projection`` support: eliminating every auxiliary (non-projected)
variable *before* any projected one (the ``delay`` knob of the greedy
loop) splits the forest into a pure-auxiliary zone below a pure-projected
zone, which is exactly the shape the projected DP needs — see
:mod:`repro.compile.dpdb` for why an existence-clamp at the zone boundary
then computes the projected count.  The constrained order can have a
larger width than the free one; that honest, larger number is what the
planner's probe quotes for projected (``#Comp``) instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.complexity.cnf import CNF
from repro.compile.ordering import primal_masks, refined_elimination_masks
from repro.obs import span as _span


@dataclass
class Decomposition:
    """A rooted tree decomposition over elimination positions.

    ``order[i]`` is the variable eliminated at position ``i``; ``bags[i]``
    its bag as a bitset (bit ``v`` set for variable ``v``); ``parent[i]``
    a later position or ``-1`` for roots (one root per connected
    component of the primal graph).  ``node_clauses[i]`` holds the input
    clauses whose variables all live in ``bags[i]`` and are checked there.
    """

    num_variables: int
    order: list[int]
    bags: list[int]
    parent: list[int]
    children: list[list[int]]
    roots: list[int]
    width: int
    node_clauses: list[list[tuple[int, ...]]]
    #: Variables in no clause at all; they never enter a bag and
    #: contribute a free factor at the very end of the DP.
    free_variables: tuple[int, ...] = ()
    #: Bitset of projected variables when built for a projected count.
    projection_mask: int = 0
    _kinds: dict[str, int] = field(default_factory=dict, repr=False)

    def __len__(self) -> int:
        return len(self.order)

    @property
    def max_bag(self) -> int:
        return max((bag.bit_count() for bag in self.bags), default=0)

    def separator(self, node: int) -> int:
        """The bag minus the eliminated vertex: the parent-facing interface."""
        return self.bags[node] & ~(1 << self.order[node])

    def node_kinds(self) -> dict[str, int]:
        """Census of the join/introduce/forget structure.

        Every node forgets its eliminated vertex; beyond that it is a
        ``leaf`` (no children), a ``join`` (two or more children), or an
        ``introduce`` node (exactly one child, and the bag strictly
        extends the child's separator); a single-child node whose bag
        equals the child separator is a pure ``forget`` step.
        """
        if self._kinds:
            return dict(self._kinds)
        kinds = {"leaf": 0, "join": 0, "introduce": 0, "forget": 0}
        for node in range(len(self.order)):
            kids = self.children[node]
            if not kids:
                kinds["leaf"] += 1
            elif len(kids) >= 2:
                kinds["join"] += 1
            else:
                covered = self.separator(kids[0])
                if self.bags[node] & ~covered:
                    kinds["introduce"] += 1
                else:
                    kinds["forget"] += 1
        self._kinds.update(kinds)
        return kinds

    def stats(self) -> dict[str, int]:
        """The headline numbers the obs spans record."""
        kinds = self.node_kinds()
        return {
            "nodes": len(self.order),
            "width": self.width,
            "max_bag": self.max_bag,
            "roots": len(self.roots),
            "clauses": sum(len(cs) for cs in self.node_clauses),
            "free_variables": len(self.free_variables),
            **{"%s_nodes" % kind: count for kind, count in kinds.items()},
        }


def decompose(
    cnf: CNF,
    projection: Iterable[int] | None = None,
    use_min_fill: bool | None = None,
) -> Decomposition:
    """Build a rooted tree decomposition of ``cnf``'s primal graph.

    With ``projection``, the elimination is constrained to take every
    non-projected variable first (see the module docstring); the reported
    width is the width of that constrained decomposition.  The primal
    masks come from the per-CNF cache, so a planner probe that already
    ran on this formula costs the decomposer nothing.
    """
    masks = primal_masks(cnf)
    projection_mask = 0
    if projection is not None:
        for variable in projection:
            projection_mask |= 1 << variable
    with _span(
        "dpdb.decompose",
        variables=cnf.num_variables,
        clauses=len(cnf),
        projected=projection_mask.bit_count(),
    ):
        order, width, bags = _eliminate(
            masks, projection_mask, use_min_fill=use_min_fill
        )
        return _assemble(cnf, masks, order, width, bags, projection_mask)


def decompose_from_elimination(
    cnf: CNF,
    order: list[int],
    width: int,
    bags: list[int],
    projection_mask: int = 0,
) -> Decomposition:
    """Assemble a :class:`Decomposition` from a precomputed elimination.

    The dpdb runner feeds the (memoized) planner probe's order straight
    in here, so probing and solving share one greedy elimination.
    """
    with _span(
        "dpdb.decompose",
        variables=cnf.num_variables,
        clauses=len(cnf),
        projected=projection_mask.bit_count(),
        reused_probe=True,
    ):
        return _assemble(
            cnf, primal_masks(cnf), order, width, bags, projection_mask
        )


def _eliminate(
    masks: Mapping[int, int],
    projection_mask: int,
    use_min_fill: bool | None = None,
) -> tuple[list[int], int, list[int]]:
    """The constrained two-phase elimination a decomposition is built on."""
    delay = 0
    if projection_mask:
        occurring = 0
        for vertex in masks:
            occurring |= 1 << vertex
        delay = projection_mask & occurring
    if use_min_fill is None:
        return refined_elimination_masks(masks, delay=delay)
    from repro.compile.ordering import elimination_bags_masks

    return elimination_bags_masks(masks, use_min_fill=use_min_fill, delay=delay)


def _assemble(
    cnf: CNF,
    masks: Mapping[int, int],
    order: list[int],
    width: int,
    bags: list[int],
    projection_mask: int,
) -> Decomposition:
    position = {variable: index for index, variable in enumerate(order)}

    parent = [-1] * len(order)
    children: list[list[int]] = [[] for _ in order]
    roots: list[int] = []
    for index, variable in enumerate(order):
        separator = bags[index] & ~(1 << variable)
        if separator:
            # The first-eliminated separator vertex hosts the parent bag;
            # the separator is a clique there, so containment holds.
            up = min(position[v] for v in _bits(separator))
            parent[index] = up
            children[up].append(index)
        else:
            roots.append(index)

    node_clauses: list[list[tuple[int, ...]]] = [[] for _ in order]
    for clause in cnf.clauses:
        if not clause:
            # The empty clause has no home bag; the DP layer checks for
            # it up front and short-circuits to zero.
            continue
        home = min(position[abs(literal)] for literal in clause)
        node_clauses[home].append(clause)

    free = tuple(
        variable
        for variable in range(1, cnf.num_variables + 1)
        if variable not in masks
    )
    return Decomposition(
        num_variables=cnf.num_variables,
        order=order,
        bags=bags,
        parent=parent,
        children=children,
        roots=roots,
        width=width,
        node_clauses=node_clauses,
        free_variables=free,
        projection_mask=projection_mask,
    )


def _bits(mask: int) -> Iterable[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


__all__ = ["Decomposition", "decompose", "decompose_from_elimination"]
