"""Indicator variables tying CNF models to valuations and completions.

Two families of Boolean variables bridge the database world and the
formula world:

* **choice variables** ``x[⊥, c]`` — "valuation maps null ``⊥`` to
  constant ``c``".  Under the exactly-one constraints emitted per null,
  models of the domain block are in bijection with valuations of ``D``.
* **fact variables** ``y[g]`` — "ground fact ``g`` belongs to the
  completion".  Together with the image-definition clauses of the
  completion encoding, assignments to the fact variables that extend to
  models are exactly the completions ``ν(D)``, one per distinct image —
  the *canonical-fact* view of a completion as the set of facts it
  contains, which quotients away the many-to-one valuation→completion
  collapse (Example 2.2).
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.complexity.cnf import CNF
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term


class ChoiceVariables:
    """The ``(null, value) -> variable`` map with exactly-one semantics.

    Construction allocates one variable per pair and appends the
    exactly-one block for every null to ``cnf``, so any model of ``cnf``
    restricted to these variables decodes to a unique valuation.
    """

    def __init__(self, cnf: CNF, db: IncompleteDatabase) -> None:
        self._var: dict[tuple[Null, Term], int] = {}
        self._nulls = db.nulls
        for null in self._nulls:
            block = []
            for value in sorted(db.domain_of(null), key=repr):
                variable = cnf.new_variable()
                self._var[(null, value)] = variable
                block.append(variable)
            cnf.add_exactly_one(block)

    def var(self, null: Null, value: Term) -> int:
        """The variable asserting ``ν(null) = value``."""
        return self._var[(null, value)]

    def variables(self) -> list[int]:
        return sorted(self._var.values())

    def items(self) -> list[tuple[tuple[Null, Term], int]]:
        """All ``((null, value), variable)`` pairs, in variable order."""
        return sorted(self._var.items(), key=lambda pair: pair[1])

    def decode(self, model: set[int]) -> dict[Null, Term]:
        """Valuation encoded by a model (a set of true variable indices)."""
        valuation: dict[Null, Term] = {}
        for (null, value), variable in self._var.items():
            if variable in model:
                valuation[null] = value
        return valuation

    def __len__(self) -> int:
        return len(self._var)


def instantiations(
    fact: Fact, db: IncompleteDatabase
) -> Iterator[tuple[Fact, frozenset[tuple[Null, Term]]]]:
    """All ground instantiations of one naive-table fact.

    Yields ``(ground fact, conditions)`` where ``conditions`` is the set of
    ``(null, value)`` choices producing it; a ground fact yields itself
    with no conditions.  A repeated null within the fact is substituted
    consistently, so the conditions are always a partial valuation.
    """
    nulls = sorted(fact.nulls())
    if not nulls:
        yield fact, frozenset()
        return
    domains = [sorted(db.domain_of(null), key=repr) for null in nulls]
    for values in product(*domains):
        valuation = dict(zip(nulls, values))
        yield fact.substitute(valuation), frozenset(valuation.items())


class FactVariables:
    """The ``ground fact -> variable`` map over all potential facts of ``D``.

    The *potential facts* are the ground facts some completion can contain:
    the union of all instantiations of the naive table's facts.  Also
    records, per potential fact, its list of producers ``(template,
    conditions)`` — the input facts and null choices that realize it.
    """

    def __init__(self, cnf: CNF, db: IncompleteDatabase) -> None:
        self._var: dict[Fact, int] = {}
        self.producers: dict[Fact, list[frozenset[tuple[Null, Term]]]] = {}
        for template in sorted(db.facts):
            for ground, conditions in instantiations(template, db):
                if ground not in self._var:
                    self._var[ground] = cnf.new_variable()
                    self.producers[ground] = []
                known = self.producers[ground]
                if conditions not in known:
                    known.append(conditions)

    def var(self, fact: Fact) -> int:
        """The variable asserting ``fact ∈ ν(D)``."""
        return self._var[fact]

    def facts(self) -> list[Fact]:
        return sorted(self._var)

    def variables(self) -> list[int]:
        return sorted(self._var.values())

    def decode(self, model: set[int]) -> frozenset[Fact]:
        """Completion encoded by a model (a set of true variable indices)."""
        return frozenset(
            fact for fact, variable in self._var.items() if variable in model
        )

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._var

    def __len__(self) -> int:
        return len(self._var)
