"""d-DNNF arithmetic circuits: compile once, count forever.

A :class:`DDNNF` is the trace of one exact model-counting search
(:mod:`repro.compile.sharpsat`), recorded as a rooted DAG in
**deterministic, decomposable negation normal form**:

* **decision nodes** are deterministic disjunctions: each branch fixes a
  set of literals (the decision plus everything unit propagation forced),
  lists the variables the branch *freed* (eliminated without assigning —
  both values extend), and points at a sub-circuit.  Branches of one node
  assign the decision variable opposite values, so no assignment is
  counted twice;
* **product nodes** are decomposable conjunctions: the children are the
  variable-disjoint components the residual formula split into;
* **cache hits** of the search become shared sub-circuits — the circuit
  is a DAG whose size is the number of *distinct* components explored,
  not the size of the search tree.

Recording free variables on branches keeps the circuit *smooth* along
every path (each variable in a node's scope is decided, propagated, or
freed exactly once before the leaves), which is what makes the linear
passes below correct:

====================== ==================================================
:meth:`DDNNF.count`     exact model count — reproduces the search's
                        arithmetic operation for operation, so it equals
                        :class:`~repro.compile.sharpsat.ModelCounter`
                        bit for bit (projected counting included)
:meth:`~DDNNF.evaluate` weighted model count for arbitrary per-literal
                        weights (ints, :class:`~fractions.Fraction`,
                        floats) — one upward pass
:meth:`~DDNNF.literal_counts` the (weighted) count of models containing
                        each literal, for *all* literals at once — one
                        upward plus one downward pass, replacing the
                        condition-and-recount loop
:meth:`~DDNNF.sampler`  exact model sampling by top-down descent —
                        each sample costs one root-to-leaves walk, no
                        rejection
====================== ==================================================

Every pass is iterative over the node array (children precede parents by
construction), so huge circuits never hit the recursion limit, and all
arithmetic is exact for int/Fraction weights.
"""

from __future__ import annotations

import random
from fractions import Fraction
from math import gcd
from typing import Iterable, Mapping, Sequence

#: One decision branch: (forced literals, freed variables, child node id).
Branch = tuple[tuple[int, ...], tuple[int, ...], int]

#: Node kinds (first element of each node tuple).
FALSE, TRUE, DECISION, PRODUCT = "F", "T", "D", "P"

#: ``variable -> (weight of v true, weight of v false)``.
WeightMap = Mapping[int, tuple]


class DDNNF:
    """A smooth deterministic d-DNNF circuit over CNF variables.

    ``nodes`` is the node array in topological order (children before
    parents); ``root`` the root node id; ``countable`` the variables the
    counting passes see (the projection set, or all variables).  Built by
    :class:`repro.compile.ddnnf_trace.TraceBuilder` — not by hand.
    """

    __slots__ = (
        "_nodes", "_root", "_num_variables", "_countable",
        "_count", "_memory",
    )

    def __init__(
        self,
        nodes: Sequence[tuple],
        root: int,
        num_variables: int,
        countable: Iterable[int],
    ) -> None:
        self._nodes = tuple(nodes)
        if not 0 <= root < len(self._nodes):
            raise ValueError("root %d outside the node array" % root)
        self._root = root
        self._num_variables = num_variables
        self._countable = frozenset(countable)
        self._count: int | None = None
        self._memory: int | None = None

    # -- inspection --------------------------------------------------------

    @property
    def root(self) -> int:
        return self._root

    @property
    def num_variables(self) -> int:
        return self._num_variables

    @property
    def countable(self) -> frozenset[int]:
        """Variables the counting passes range over (projection or all)."""
        return self._countable

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        edges = 0
        for node in self._nodes:
            if node[0] == PRODUCT:
                edges += len(node[1])
            elif node[0] == DECISION:
                edges += len(node[1])
        return edges

    def memory_bytes(self) -> int:
        """Deterministic estimate of the circuit's resident size.

        Used by the engine cache for its memory bound; counts the node
        array, branch records and literal/free slots at CPython tuple
        rates rather than chasing ``sys.getsizeof`` through the DAG.
        """
        if self._memory is None:
            total = 64 * len(self._nodes)
            for node in self._nodes:
                if node[0] == PRODUCT:
                    total += 8 * len(node[1])
                elif node[0] == DECISION:
                    for literals, free, _child in node[1]:
                        total += 64 + 8 * (len(literals) + len(free))
            self._memory = total
        return self._memory

    def __repr__(self) -> str:
        return "DDNNF(%d nodes, %d edges, %d countable vars)" % (
            self.num_nodes, self.num_edges, len(self._countable),
        )

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """The circuit as a compact, versioned, checksummed binary payload.

        The node table is written in its native topological order, so
        ``from_bytes`` rehydrates an identical circuit in any process —
        see :mod:`repro.compile.serialize` for the format.
        """
        from repro.compile.serialize import dumps_circuit

        return dumps_circuit(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DDNNF":
        """Rehydrate a circuit serialized by :meth:`to_bytes`.

        Raises :class:`~repro.compile.serialize.CircuitFormatError` on a
        version mismatch, checksum failure, or malformed node table.
        """
        from repro.compile.serialize import loads_circuit

        return loads_circuit(data)

    # -- weights -----------------------------------------------------------

    def _resolve_weights(self, weights: WeightMap | None) -> dict[int, tuple]:
        """Full countable-variable weight table (missing entries = (1, 1)).

        Variables outside the countable set must not carry weights — in a
        projected circuit they are collapsed and cannot be weighted.
        """
        table = {variable: _ONE_ONE for variable in self._countable}
        if weights:
            for variable, pair in weights.items():
                if variable not in self._countable:
                    raise ValueError(
                        "variable %r is not countable in this circuit"
                        % (variable,)
                    )
                table[variable] = (pair[0], pair[1])
        return table

    # -- upward pass -------------------------------------------------------

    def _values(self, table: Mapping[int, tuple]) -> list:
        """Weighted value of every node, children-first (one linear pass)."""
        values: list = [0] * len(self._nodes)
        for index, node in enumerate(self._nodes):
            kind = node[0]
            if kind == TRUE:
                values[index] = 1
            elif kind == FALSE:
                values[index] = 0
            elif kind == PRODUCT:
                value = 1
                for child in node[1]:
                    value *= values[child]
                    if not value:
                        break
                values[index] = value
            else:  # DECISION
                total = 0
                for literals, free, child in node[1]:
                    term = values[child]
                    if not term:
                        continue
                    for literal in literals:
                        pair = table.get(abs(literal))
                        if pair is not None:
                            term = term * (pair[0] if literal > 0 else pair[1])
                    for variable in free:
                        pair = table.get(variable)
                        if pair is not None:
                            term = term * (pair[0] + pair[1])
                    total += term
                values[index] = total
        return values

    def evaluate(self, weights: WeightMap | None = None):
        """The (weighted) model count of the circuit.

        With ``weights=None`` every countable variable weighs ``(1, 1)``
        and the result is the exact model count; otherwise it is
        ``sum over models of prod over countable v of w(v, model(v))``,
        exact whenever the weights are ints or Fractions.
        """
        return self._values(self._resolve_weights(weights))[self._root]

    def count(self) -> int:
        """Exact (projected) model count — cached after the first pass."""
        if self._count is None:
            self._count = self.evaluate(None)
        return self._count

    # -- downward pass: all-literals marginal counts -----------------------

    def literal_counts(self, weights: WeightMap | None = None) -> dict:
        """``literal -> (weighted) count of models containing it``.

        Both polarities of every countable variable are reported, all in
        one upward plus one downward pass — this is the derivative trick
        of arithmetic-circuit inference, and what replaces the per-value
        condition-and-recount loop: ``counts[v] + counts[-v]`` equals the
        total count for every countable variable (smoothness).
        """
        table = self._resolve_weights(weights)
        values = self._values(table)
        derivative: list = [0] * len(self._nodes)
        derivative[self._root] = 1
        counts: dict = {}
        for variable in self._countable:
            counts[variable] = 0
            counts[-variable] = 0

        for index in range(len(self._nodes) - 1, -1, -1):
            outer = derivative[index]
            if not outer:
                continue
            node = self._nodes[index]
            kind = node[0]
            if kind == PRODUCT:
                children = node[1]
                # prefix/suffix products avoid division (children may be 0)
                prefix = 1
                suffixes = [1] * (len(children) + 1)
                for position in range(len(children) - 1, -1, -1):
                    suffixes[position] = (
                        suffixes[position + 1] * values[children[position]]
                    )
                for position, child in enumerate(children):
                    derivative[child] += outer * prefix * suffixes[position + 1]
                    prefix *= values[child]
            elif kind == DECISION:
                for literals, free, child in node[1]:
                    literal_weight = 1
                    for literal in literals:
                        pair = table.get(abs(literal))
                        if pair is not None:
                            literal_weight *= (
                                pair[0] if literal > 0 else pair[1]
                            )
                    if not literal_weight:
                        continue
                    pairs = [table.get(variable) for variable in free]
                    free_factor = 1
                    for pair in pairs:
                        if pair is not None:
                            free_factor *= pair[0] + pair[1]
                    branch_value = literal_weight * free_factor * values[child]
                    derivative[child] += outer * literal_weight * free_factor
                    if not branch_value:
                        continue
                    contribution = outer * branch_value
                    for literal in literals:
                        if abs(literal) in counts:
                            counts[literal] += contribution
                    if any(pair is not None for pair in pairs):
                        base = outer * literal_weight * values[child]
                        prefix = 1
                        suffixes = [1] * (len(pairs) + 1)
                        for position in range(len(pairs) - 1, -1, -1):
                            pair = pairs[position]
                            factor = 1 if pair is None else pair[0] + pair[1]
                            suffixes[position] = (
                                suffixes[position + 1] * factor
                            )
                        for position, variable in enumerate(free):
                            pair = pairs[position]
                            if pair is not None:
                                others = (
                                    base * prefix * suffixes[position + 1]
                                )
                                counts[variable] += others * pair[0]
                                counts[-variable] += others * pair[1]
                                prefix *= pair[0] + pair[1]
        return counts

    # -- exact sampling ----------------------------------------------------

    def sampler(self, weights: WeightMap | None = None) -> "CircuitSampler":
        """A reusable exact sampler over the circuit's (weighted) models."""
        return CircuitSampler(self, weights)


_ONE_ONE = (1, 1)


class CircuitSampler:
    """Draws countable-variable assignments with probability proportional
    to their weight, by one top-down descent per sample.

    Node values under the sampling weights are computed once at
    construction; each :meth:`sample` is then linear in the depth of the
    visited sub-DAG.  Draws are exact (integer arithmetic) for int and
    Fraction weights.
    """

    def __init__(self, circuit: DDNNF, weights: WeightMap | None = None) -> None:
        self._circuit = circuit
        self._table = circuit._resolve_weights(weights)
        self._values = circuit._values(self._table)
        if not self._values[circuit.root]:
            raise ValueError(
                "circuit has no (weighted) models; nothing to sample"
            )

    @property
    def total(self):
        """The (weighted) model count the draws are normalized by."""
        return self._values[self._circuit.root]

    def sample(self, rng: random.Random) -> dict[int, bool]:
        """One assignment of every countable variable, drawn exactly."""
        nodes = self._circuit._nodes
        values = self._values
        table = self._table
        assignment: dict[int, bool] = {}
        stack = [self._circuit.root]
        while stack:
            node = nodes[stack.pop()]
            kind = node[0]
            if kind == PRODUCT:
                stack.extend(node[1])
            elif kind == DECISION:
                branches = node[1]
                if len(branches) == 1:
                    chosen = branches[0]
                else:
                    weights_seq = []
                    for literals, free, child in branches:
                        term = values[child]
                        if term:
                            for literal in literals:
                                pair = table.get(abs(literal))
                                if pair is not None:
                                    term = term * (
                                        pair[0] if literal > 0 else pair[1]
                                    )
                            for variable in free:
                                pair = table.get(variable)
                                if pair is not None:
                                    term = term * (pair[0] + pair[1])
                        weights_seq.append(term)
                    chosen = branches[draw_index(rng, weights_seq)]
                literals, free, child = chosen
                for literal in literals:
                    if abs(literal) in table:
                        assignment[abs(literal)] = literal > 0
                for variable in free:
                    pair = table.get(variable)
                    if pair is not None:
                        assignment[variable] = draw_index(rng, pair) == 0
                stack.append(child)
            # TRUE leaves contribute nothing; FALSE is unreachable (value 0)
        return assignment


def draw_index(rng: random.Random, weights_seq: Sequence) -> int:
    """Index drawn with probability ``weights_seq[i] / sum``, exactly.

    Integer weights use ``randrange`` directly; Fractions (and floats,
    through their exact Fraction form) are scaled to a common denominator
    first, so the draw stays a single exact ``randrange``.
    """
    if not all(isinstance(weight, int) for weight in weights_seq):
        fractions = [Fraction(weight) for weight in weights_seq]
        common = 1
        for fraction in fractions:
            common = common * fraction.denominator // gcd(
                common, fraction.denominator
            )
        weights_seq = [
            int(fraction * common) for fraction in fractions
        ]
    total = sum(weights_seq)
    if total <= 0:
        raise ValueError("cannot draw from nonpositive total weight")
    target = rng.randrange(total)
    accumulated = 0
    for index, weight in enumerate(weights_seq):
        accumulated += weight
        if target < accumulated:
            return index
    raise AssertionError("unreachable: cumulative walk exhausted")
