"""d-DNNF arithmetic circuits: compile once, count forever.

A :class:`DDNNF` is the trace of one exact model-counting search
(:mod:`repro.compile.sharpsat`), recorded as a rooted DAG in
**deterministic, decomposable negation normal form**:

* **decision nodes** are deterministic disjunctions: each branch fixes a
  set of literals (the decision plus everything unit propagation forced),
  lists the variables the branch *freed* (eliminated without assigning —
  both values extend), and points at a sub-circuit.  Branches of one node
  assign the decision variable opposite values, so no assignment is
  counted twice;
* **product nodes** are decomposable conjunctions: the children are the
  variable-disjoint components the residual formula split into;
* **cache hits** of the search become shared sub-circuits — the circuit
  is a DAG whose size is the number of *distinct* components explored,
  not the size of the search tree.

Recording free variables on branches keeps the circuit *smooth* along
every path (each variable in a node's scope is decided, propagated, or
freed exactly once before the leaves), which is what makes the linear
passes below correct:

====================== ==================================================
:meth:`DDNNF.count`     exact model count — reproduces the search's
                        arithmetic operation for operation, so it equals
                        :class:`~repro.compile.sharpsat.ModelCounter`
                        bit for bit (projected counting included)
:meth:`~DDNNF.evaluate` weighted model count for arbitrary per-literal
                        weights (ints, :class:`~fractions.Fraction`,
                        floats) — one upward pass
:meth:`~DDNNF.literal_counts` the (weighted) count of models containing
                        each literal, for *all* literals at once — one
                        upward plus one downward pass, replacing the
                        condition-and-recount loop
:meth:`~DDNNF.sampler`  exact model sampling by top-down descent —
                        each sample costs one root-to-leaves walk, no
                        rejection
====================== ==================================================

**Representation.**  The circuit is stored as one flat, topologically
ordered **array of ints** (:attr:`DDNNF._code`) plus a per-node offset
table: each node is ``[kind, …]`` with kind codes ``0``/``1`` for the
false/true constants, ``2`` for decisions (branch count, then per branch
``nlits, lits…, nfree, freed…, child``) and ``3`` for products
(child count, children…).  Children precede parents by construction, so
every pass is a single non-recursive sweep over the array with direct
list indexing — no per-node tuples to unpack, no dict probes for weights
(weights resolve to flat per-variable arrays first), and no recursion
limit to hit.  :class:`~repro.compile.ddnnf_trace.TraceBuilder` emits
this layout directly while the search runs, and the binary codec
(:mod:`repro.compile.serialize`) parses straight into it, so rehydrated
artifacts never materialize an intermediate node-tuple forest.

All arithmetic is exact for int/Fraction weights.
"""

from __future__ import annotations

import random
from fractions import Fraction
from math import gcd
from typing import Iterable, Iterator, Mapping, Sequence

from repro.obs import span as _span

try:  # numpy accelerates the batched passes; everything works without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar fallback
    _np = None  # type: ignore[assignment]

#: Largest clamped-magnitude bound for which int64 columns cannot overflow.
_INT64_SAFE = 1 << 62

#: One decision branch: (forced literals, freed variables, child node id).
Branch = tuple[tuple[int, ...], tuple[int, ...], int]

#: Symbolic node kinds (first element of a node *tuple* view).
FALSE, TRUE, DECISION, PRODUCT = "F", "T", "D", "P"

#: Flat-array kind codes (first int of a node's code segment).
KIND_FALSE, KIND_TRUE, KIND_DECISION, KIND_PRODUCT = 0, 1, 2, 3

_KIND_NAMES = {
    KIND_FALSE: FALSE,
    KIND_TRUE: TRUE,
    KIND_DECISION: DECISION,
    KIND_PRODUCT: PRODUCT,
}

#: ``variable -> (weight of v true, weight of v false)``.
WeightMap = Mapping[int, tuple]


class DDNNF:
    """A smooth deterministic d-DNNF circuit over CNF variables.

    ``nodes`` is a node-tuple array in topological order (children before
    parents) — it is compiled into the flat int program on construction;
    :meth:`from_program` builds a circuit from an already-flat program
    (the trace builder and the binary codec both do).  ``root`` is the
    root node id; ``countable`` the variables the counting passes see
    (the projection set, or all variables).
    """

    __slots__ = (
        "_code", "_offsets", "_root", "_num_variables",
        "_countable", "_is_countable", "_count", "_memory",
    )

    def __init__(
        self,
        nodes: Sequence[tuple],
        root: int,
        num_variables: int,
        countable: Iterable[int],
    ) -> None:
        code: list[int] = []
        offsets: list[int] = []
        for node in nodes:
            offsets.append(len(code))
            kind = node[0]
            if kind == FALSE:
                code.append(KIND_FALSE)
            elif kind == TRUE:
                code.append(KIND_TRUE)
            elif kind == PRODUCT:
                children = node[1]
                code.append(KIND_PRODUCT)
                code.append(len(children))
                code.extend(children)
            elif kind == DECISION:
                branches = node[1]
                code.append(KIND_DECISION)
                code.append(len(branches))
                for literals, free, child in branches:
                    code.append(len(literals))
                    code.extend(literals)
                    code.append(len(free))
                    code.extend(free)
                    code.append(child)
            else:
                raise ValueError("unknown node kind %r" % (kind,))
        self._init_program(code, offsets, root, num_variables, countable)

    @classmethod
    def from_program(
        cls,
        code: Sequence[int],
        offsets: Sequence[int],
        root: int,
        num_variables: int,
        countable: Iterable[int],
    ) -> "DDNNF":
        """Wrap an already-flat node program (no per-node tuples built)."""
        circuit = cls.__new__(cls)
        circuit._init_program(
            list(code), list(offsets), root, num_variables, countable
        )
        return circuit

    def _init_program(
        self,
        code: list[int],
        offsets: list[int],
        root: int,
        num_variables: int,
        countable: Iterable[int],
    ) -> None:
        self._code = code
        self._offsets = offsets
        if not 0 <= root < len(offsets):
            raise ValueError("root %d outside the node array" % root)
        self._root = root
        self._num_variables = num_variables
        self._countable = frozenset(countable)
        flags = bytearray(num_variables + 1)
        for variable in self._countable:
            flags[variable] = 1
        self._is_countable = flags
        self._count: int | None = None
        self._memory: int | None = None

    # -- inspection --------------------------------------------------------

    @property
    def root(self) -> int:
        return self._root

    @property
    def num_variables(self) -> int:
        return self._num_variables

    @property
    def countable(self) -> frozenset[int]:
        """Variables the counting passes range over (projection or all)."""
        return self._countable

    @property
    def num_nodes(self) -> int:
        return len(self._offsets)

    @property
    def num_edges(self) -> int:
        code = self._code
        edges = 0
        for offset in self._offsets:
            kind = code[offset]
            if kind >= KIND_DECISION:  # decision or product
                edges += code[offset + 1]
        return edges

    def nodes(self) -> Iterator[tuple]:
        """The node array as the classic tuple view, children-first.

        Materialized on demand (tests, debugging); the passes never use
        it — they walk the flat program directly.
        """
        code = self._code
        for offset in self._offsets:
            kind = code[offset]
            if kind == KIND_FALSE or kind == KIND_TRUE:
                yield (_KIND_NAMES[kind],)
            elif kind == KIND_PRODUCT:
                length = code[offset + 1]
                yield (
                    PRODUCT,
                    tuple(code[offset + 2:offset + 2 + length]),
                )
            else:
                branches = []
                cursor = offset + 2
                for _ in range(code[offset + 1]):
                    nlits = code[cursor]
                    cursor += 1
                    literals = tuple(code[cursor:cursor + nlits])
                    cursor += nlits
                    nfree = code[cursor]
                    cursor += 1
                    free = tuple(code[cursor:cursor + nfree])
                    cursor += nfree
                    branches.append((literals, free, code[cursor]))
                    cursor += 1
                yield (DECISION, tuple(branches))

    def memory_bytes(self) -> int:
        """Deterministic estimate of the circuit's resident size.

        Used by the engine cache for its memory bound; counts nodes,
        branch records and literal/free slots at CPython container rates
        rather than chasing ``sys.getsizeof`` through the DAG.  (The
        figures intentionally match the historical tuple representation,
        so cache bounds calibrated against it keep their meaning.)
        """
        if self._memory is None:
            code = self._code
            total = 64 * len(self._offsets)
            for offset in self._offsets:
                kind = code[offset]
                if kind == KIND_PRODUCT:
                    total += 8 * code[offset + 1]
                elif kind == KIND_DECISION:
                    cursor = offset + 2
                    for _ in range(code[offset + 1]):
                        nlits = code[cursor]
                        cursor += 1 + nlits
                        nfree = code[cursor]
                        cursor += 1 + nfree + 1
                        total += 64 + 8 * (nlits + nfree)
            self._memory = total
        return self._memory

    def __repr__(self) -> str:
        return "DDNNF(%d nodes, %d edges, %d countable vars)" % (
            self.num_nodes, self.num_edges, len(self._countable),
        )

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """The circuit as a compact, versioned, checksummed binary payload.

        The node table is written in its native topological order, so
        ``from_bytes`` rehydrates an identical circuit in any process —
        see :mod:`repro.compile.serialize` for the format.
        """
        from repro.compile.serialize import dumps_circuit

        return dumps_circuit(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DDNNF":
        """Rehydrate a circuit serialized by :meth:`to_bytes`.

        Raises :class:`~repro.compile.serialize.CircuitFormatError` on a
        version mismatch, checksum failure, or malformed node table.
        """
        from repro.compile.serialize import loads_circuit

        return loads_circuit(data)

    # -- conditioning ------------------------------------------------------

    def condition(self, assignments: Mapping[int, bool]) -> "DDNNF":
        """Pin variables to fixed values: one linear rewrite, no research.

        ``assignments`` maps variables to polarities.  The result is a
        smooth d-DNNF over the *same* variable universe whose models are
        exactly this circuit's models consistent with the pins, with each
        pinned variable appearing as a forced literal on every surviving
        path — so every downstream pass (count, weighted evaluate,
        literal counts, sampling) stays a plain linear sweep and agrees
        bit for bit with recompiling the restricted formula.

        Per decision branch: a kept literal contradicting a pin drops the
        branch; a pinned variable listed as *freed* moves into the branch
        literals with the pinned polarity (preserving smoothness).  A
        decision node losing every branch becomes the false constant.
        Product nodes and node ids are untouched, so shared sub-DAGs stay
        shared.

        Only countable variables may be pinned: non-countable (projected
        or auxiliary) variables are summed out by the compiler and may no
        longer appear explicitly on every path, so pinning them here
        would silently under-restrict.  ``ValueError`` otherwise.
        """
        if not assignments:
            return self
        polarity = bytearray(self._num_variables + 1)  # 0 / +1 / 2 (= -1)
        for variable, value in assignments.items():
            if not 1 <= variable <= self._num_variables:
                raise ValueError(
                    "cannot condition on unknown variable %d" % variable
                )
            if not self._is_countable[variable]:
                raise ValueError(
                    "cannot condition on non-countable variable %d "
                    "(projected/auxiliary variables are summed out)"
                    % variable
                )
            polarity[variable] = 1 if value else 2
        code = self._code
        new_code: list[int] = []
        new_offsets: list[int] = []
        with _span("circuit.condition", pinned=len(assignments),
                   nodes=self.num_nodes):
            for offset in self._offsets:
                new_offsets.append(len(new_code))
                kind = code[offset]
                if kind == KIND_FALSE or kind == KIND_TRUE:
                    new_code.append(kind)
                    continue
                if kind == KIND_PRODUCT:
                    length = 2 + code[offset + 1]
                    new_code.extend(code[offset:offset + length])
                    continue
                branches: list[tuple[list[int], list[int], int]] = []
                cursor = offset + 2
                for _ in range(code[offset + 1]):
                    nlits = code[cursor]
                    cursor += 1
                    literals_end = cursor + nlits
                    literals = code[cursor:literals_end]
                    nfree = code[literals_end]
                    free_end = literals_end + 1 + nfree
                    freed = code[literals_end + 1:free_end]
                    child = code[free_end]
                    cursor = free_end + 1
                    alive = True
                    for literal in literals:
                        pin = polarity[abs(literal)]
                        if pin and (pin == 1) != (literal > 0):
                            alive = False
                            break
                    if not alive:
                        continue
                    kept_free: list[int] = []
                    forced = list(literals)
                    for variable in freed:
                        pin = polarity[variable]
                        if pin:
                            forced.append(
                                variable if pin == 1 else -variable
                            )
                        else:
                            kept_free.append(variable)
                    branches.append((forced, kept_free, child))
                if not branches:
                    new_code.append(KIND_FALSE)
                    continue
                new_code.append(KIND_DECISION)
                new_code.append(len(branches))
                for forced, kept_free, child in branches:
                    new_code.append(len(forced))
                    new_code.extend(forced)
                    new_code.append(len(kept_free))
                    new_code.extend(kept_free)
                    new_code.append(child)
        return DDNNF.from_program(
            new_code, new_offsets, self._root,
            self._num_variables, self._countable,
        )

    # -- weights -----------------------------------------------------------

    def _weight_arrays(
        self, weights: WeightMap | None
    ) -> tuple[list, list, list]:
        """Flat per-variable weight tables ``(positive, negative, free)``.

        ``positive[v]``/``negative[v]`` weigh the two literal polarities
        (``1`` for unweighted and non-countable variables alike — a
        non-countable literal must act as a unit factor).  ``free[v]`` is
        the both-values-extend factor of a freed variable: ``w⁺ + w⁻``
        for countable variables (``2`` unweighted) and ``1`` for
        non-countable ones, which in a projected circuit are collapsed
        and must not contribute.  Variables outside the countable set
        must not carry weights.
        """
        size = self._num_variables + 1
        positive: list = [1] * size
        negative: list = [1] * size
        free_sum: list = [2 if self._is_countable[v] else 1 for v in range(size)]
        if weights:
            for variable, pair in weights.items():
                if variable not in self._countable:
                    raise ValueError(
                        "variable %r is not countable in this circuit"
                        % (variable,)
                    )
                positive[variable] = pair[0]
                negative[variable] = pair[1]
                free_sum[variable] = pair[0] + pair[1]
        return positive, negative, free_sum

    # -- upward pass -------------------------------------------------------

    def _values(self, positive: list, negative: list, free_sum: list) -> list:
        """Weighted value of every node, children-first (one linear sweep
        over the flat program)."""
        with _span("circuit.upward", nodes=len(self._offsets)):
            return self._values_pass(positive, negative, free_sum)

    def _values_pass(
        self, positive: list, negative: list, free_sum: list
    ) -> list:
        code = self._code
        values: list = [0] * len(self._offsets)
        for index, offset in enumerate(self._offsets):
            kind = code[offset]
            if kind == KIND_PRODUCT:
                value = 1
                for cursor in range(offset + 2, offset + 2 + code[offset + 1]):
                    value *= values[code[cursor]]
                    if not value:
                        break
                values[index] = value
            elif kind == KIND_DECISION:
                total = 0
                cursor = offset + 2
                for _ in range(code[offset + 1]):
                    nlits = code[cursor]
                    cursor += 1
                    literals_end = cursor + nlits
                    nfree = code[literals_end]
                    free_end = literals_end + 1 + nfree
                    child = code[free_end]
                    term = values[child]
                    if term:
                        for position in range(cursor, literals_end):
                            literal = code[position]
                            term *= (
                                positive[literal]
                                if literal > 0
                                else negative[-literal]
                            )
                        for position in range(literals_end + 1, free_end):
                            term *= free_sum[code[position]]
                        total += term
                    cursor = free_end + 1
                values[index] = total
            else:
                values[index] = kind  # the kind codes 0/1 are the values
        return values

    def evaluate(self, weights: WeightMap | None = None):
        """The (weighted) model count of the circuit.

        With ``weights=None`` every countable variable weighs ``(1, 1)``
        and the result is the exact model count; otherwise it is
        ``sum over models of prod over countable v of w(v, model(v))``,
        exact whenever the weights are ints or Fractions.
        """
        return self._values(*self._weight_arrays(weights))[self._root]

    def count(self) -> int:
        """Exact (projected) model count — cached after the first pass."""
        if self._count is None:
            self._count = self.evaluate(None)
        return self._count

    # -- batched passes: one interpreter sweep, N weight rows --------------

    def _weight_columns(
        self, weight_rows: Sequence[WeightMap | None]
    ) -> tuple[list, list, list, bool]:
        """Per-variable weight *columns* across N rows, plus an int flag.

        The batched analogue of :meth:`_weight_arrays`: ``positive[v]``
        is the length-N list of w⁺ for variable ``v``, one entry per
        row (defaults as in the scalar tables).  ``all_int`` is True
        when every explicit weight is a machine int, which is what
        gates the int64 fast path.
        """
        size = self._num_variables + 1
        n = len(weight_rows)
        positive: list = [[1] * n for _ in range(size)]
        negative: list = [[1] * n for _ in range(size)]
        free_sum: list = [
            [2 if self._is_countable[v] else 1] * n for v in range(size)
        ]
        all_int = True
        for column, row in enumerate(weight_rows):
            if not row:
                continue
            for variable, pair in row.items():
                if variable not in self._countable:
                    raise ValueError(
                        "variable %r is not countable in this circuit"
                        % (variable,)
                    )
                w_pos, w_neg = pair[0], pair[1]
                positive[variable][column] = w_pos
                negative[variable][column] = w_neg
                free_sum[variable][column] = w_pos + w_neg
                if all_int and not (
                    isinstance(w_pos, int) and isinstance(w_neg, int)
                ):
                    all_int = False
        return positive, negative, free_sum, all_int

    def _magnitude_bound(self, positive: list, negative: list) -> int:
        """Upper bound on |any intermediate| of the batched int passes.

        One scalar sweep with every weight replaced by its clamped
        per-variable magnitude ``max(max_rows |w|, 1)`` (free factors by
        the *sum* of the two polarity bounds) and every node value
        clamped to ``>= 1``.  Clamping makes products monotone in the
        number of factors, so every partial product/sum of the upward
        pass is bounded by the maximum node value; determinism bounds
        each downward-pass derivative and count contribution by the
        root's value.  If the returned bound fits int64, so does every
        number the batched passes touch.
        """

        def clamped(column: list) -> int:
            bound = 1
            for weight in column:
                magnitude = weight if weight >= 0 else -weight
                if magnitude > bound:
                    bound = magnitude
            return bound

        bound_pos = [clamped(column) for column in positive]
        bound_neg = [clamped(column) for column in negative]
        bound_free = [p + q for p, q in zip(bound_pos, bound_neg)]
        maximum = max(max(bound_pos), max(bound_neg), max(bound_free))
        code = self._code
        values = [1] * len(self._offsets)
        for index, offset in enumerate(self._offsets):
            kind = code[offset]
            if kind == KIND_PRODUCT:
                value = 1
                for cursor in range(offset + 2, offset + 2 + code[offset + 1]):
                    value *= values[code[cursor]]
            elif kind == KIND_DECISION:
                value = 0
                cursor = offset + 2
                for _ in range(code[offset + 1]):
                    nlits = code[cursor]
                    cursor += 1
                    literals_end = cursor + nlits
                    nfree = code[literals_end]
                    free_end = literals_end + 1 + nfree
                    term = values[code[free_end]]
                    for position in range(cursor, literals_end):
                        literal = code[position]
                        term *= (
                            bound_pos[literal]
                            if literal > 0
                            else bound_neg[-literal]
                        )
                    for position in range(literals_end + 1, free_end):
                        term *= bound_free[code[position]]
                    value += term
                    cursor = free_end + 1
                if value < 1:
                    value = 1
            else:
                value = 1
            values[index] = value
            if value > maximum:
                maximum = value
        return maximum

    def _column_arrays(
        self, positive: list, negative: list, free_sum: list, all_int: bool
    ) -> tuple:
        """The weight columns as numpy arrays of the exactness-safe dtype:
        int64 when every weight is a machine int and the magnitude bound
        proves no intermediate can overflow, else exact object columns."""
        dtype: object = object
        if all_int and self._magnitude_bound(positive, negative) < _INT64_SAFE:
            dtype = _np.int64
        return (
            _np.array(positive, dtype=dtype),
            _np.array(negative, dtype=dtype),
            _np.array(free_sum, dtype=dtype),
        )

    def _values_many(self, pos, neg, free) -> list:
        """Length-N value column of every node, children-first: the
        upward pass with each scalar replaced by a numpy column."""
        np = _np
        n = pos.shape[1]
        code = self._code
        zeros = np.zeros(n, dtype=pos.dtype)
        ones = zeros + 1
        values: list = [None] * len(self._offsets)
        for index, offset in enumerate(self._offsets):
            kind = code[offset]
            if kind == KIND_PRODUCT:
                length = code[offset + 1]
                if length:
                    value = values[code[offset + 2]]
                    for cursor in range(offset + 3, offset + 2 + length):
                        value = value * values[code[cursor]]
                else:
                    value = ones
                values[index] = value
            elif kind == KIND_DECISION:
                total = zeros
                cursor = offset + 2
                for _ in range(code[offset + 1]):
                    nlits = code[cursor]
                    cursor += 1
                    literals_end = cursor + nlits
                    nfree = code[literals_end]
                    free_end = literals_end + 1 + nfree
                    term = values[code[free_end]]
                    for position in range(cursor, literals_end):
                        literal = code[position]
                        term = term * (
                            pos[literal] if literal > 0 else neg[-literal]
                        )
                    for position in range(literals_end + 1, free_end):
                        term = term * free[code[position]]
                    total = total + term
                    cursor = free_end + 1
                values[index] = total
            else:
                values[index] = ones if kind else zeros
        return values

    def evaluate_many(self, weight_rows: Sequence[WeightMap | None]) -> list:
        """The weighted model count under each of N weight rows at once.

        Exactly ``[self.evaluate(row) for row in weight_rows]`` — bit
        identical for int weights, exactly rational for Fractions — but
        the circuit program is interpreted once, each node holding a
        length-N column instead of a scalar.  Machine-int rows whose
        intermediates provably fit in int64 run on the numpy fast path;
        everything else uses exact object columns; without numpy the
        scalar pass is looped per row.
        """
        rows = list(weight_rows)
        if not rows:
            return []
        with _span(
            "circuit.evaluate_many",
            nodes=len(self._offsets),
            rows=len(rows),
        ):
            if _np is None:
                return [self.evaluate(row) for row in rows]
            columns = self._weight_columns(rows)
            values = self._values_many(*self._column_arrays(*columns))
            return values[self._root].tolist()

    def literal_counts_many(
        self, weight_rows: Sequence[WeightMap | None]
    ) -> list[dict]:
        """:meth:`literal_counts` for N weight rows in one batched pass.

        Returns one ``literal -> weighted count`` dict per row, exactly
        equal to the looped scalar results; the upward and downward
        sweeps each run once over the program with length-N columns.
        """
        rows = list(weight_rows)
        if not rows:
            return []
        with _span(
            "circuit.literal_counts_many",
            nodes=len(self._offsets),
            rows=len(rows),
        ):
            if _np is None:
                return [self.literal_counts(row) for row in rows]
            return self._literal_counts_many_pass(rows)

    def _literal_counts_many_pass(self, rows: list) -> list[dict]:
        pos, neg, free = self._column_arrays(*self._weight_columns(rows))
        values = self._values_many(pos, neg, free)
        n = len(rows)
        code = self._code
        offsets = self._offsets
        is_countable = self._is_countable
        ones = _np.zeros(n, dtype=pos.dtype) + 1
        # None marks an all-zero column nobody has touched yet: untouched
        # nodes are skipped exactly like the scalar pass's zero check.
        derivative: list = [None] * len(offsets)
        derivative[self._root] = ones
        size = self._num_variables + 1
        count_positive: list = [None] * size
        count_negative: list = [None] * size

        for index in range(len(offsets) - 1, -1, -1):
            outer = derivative[index]
            if outer is None:
                continue
            offset = offsets[index]
            kind = code[offset]
            if kind == KIND_PRODUCT:
                length = code[offset + 1]
                start = offset + 2
                suffixes: list = [1] * (length + 1)
                for position in range(length - 1, -1, -1):
                    suffixes[position] = (
                        suffixes[position + 1] * values[code[start + position]]
                    )
                prefix = 1
                for position in range(length):
                    child = code[start + position]
                    _column_add(
                        derivative, child,
                        outer * prefix * suffixes[position + 1],
                    )
                    prefix = prefix * values[child]
            elif kind == KIND_DECISION:
                cursor = offset + 2
                for _ in range(code[offset + 1]):
                    nlits = code[cursor]
                    cursor += 1
                    literals_end = cursor + nlits
                    nfree = code[literals_end]
                    free_start = literals_end + 1
                    free_end = free_start + nfree
                    child = code[free_end]
                    literal_weight = 1
                    for position in range(cursor, literals_end):
                        literal = code[position]
                        literal_weight = literal_weight * (
                            pos[literal] if literal > 0 else neg[-literal]
                        )
                    literals_start = cursor
                    cursor = free_end + 1
                    free_factor = 1
                    any_countable_free = False
                    for position in range(free_start, free_end):
                        variable = code[position]
                        free_factor = free_factor * free[variable]
                        if is_countable[variable]:
                            any_countable_free = True
                    down = outer * literal_weight * free_factor
                    _column_add(derivative, child, down)
                    contribution = down * values[child]
                    for position in range(literals_start, literals_end):
                        literal = code[position]
                        if literal > 0:
                            if is_countable[literal]:
                                _column_add(
                                    count_positive, literal, contribution
                                )
                        elif is_countable[-literal]:
                            _column_add(
                                count_negative, -literal, contribution
                            )
                    if any_countable_free:
                        base = outer * literal_weight * values[child]
                        suffixes = [1] * (nfree + 1)
                        for position in range(nfree - 1, -1, -1):
                            suffixes[position] = (
                                suffixes[position + 1]
                                * free[code[free_start + position]]
                            )
                        prefix = 1
                        for position in range(nfree):
                            variable = code[free_start + position]
                            if is_countable[variable]:
                                others = base * prefix * suffixes[position + 1]
                                _column_add(
                                    count_positive, variable,
                                    others * pos[variable],
                                )
                                _column_add(
                                    count_negative, variable,
                                    others * neg[variable],
                                )
                            prefix = prefix * free[variable]

        zero_row = [0] * n
        counts_rows: list[dict] = [{} for _ in range(n)]
        for variable in self._countable:
            column = count_positive[variable]
            positives = zero_row if column is None else column.tolist()
            column = count_negative[variable]
            negatives = zero_row if column is None else column.tolist()
            for row_index in range(n):
                row = counts_rows[row_index]
                row[variable] = positives[row_index]
                row[-variable] = negatives[row_index]
        return counts_rows

    # -- downward pass: all-literals marginal counts -----------------------

    def literal_counts(self, weights: WeightMap | None = None) -> dict:
        """``literal -> (weighted) count of models containing it``.

        Both polarities of every countable variable are reported, all in
        one upward plus one downward pass — this is the derivative trick
        of arithmetic-circuit inference, and what replaces the per-value
        condition-and-recount loop: ``counts[v] + counts[-v]`` equals the
        total count for every countable variable (smoothness).
        """
        with _span("circuit.literal_counts", nodes=len(self._offsets)):
            return self._literal_counts_pass(weights)

    def _literal_counts_pass(self, weights: WeightMap | None) -> dict:
        positive, negative, free_sum = self._weight_arrays(weights)
        values = self._values(positive, negative, free_sum)
        code = self._code
        offsets = self._offsets
        is_countable = self._is_countable
        derivative: list = [0] * len(offsets)
        derivative[self._root] = 1
        size = self._num_variables + 1
        count_positive: list = [0] * size
        count_negative: list = [0] * size

        for index in range(len(offsets) - 1, -1, -1):
            outer = derivative[index]
            if not outer:
                continue
            offset = offsets[index]
            kind = code[offset]
            if kind == KIND_PRODUCT:
                length = code[offset + 1]
                start = offset + 2
                # prefix/suffix products avoid division (children may be 0)
                suffixes = [1] * (length + 1)
                for position in range(length - 1, -1, -1):
                    suffixes[position] = (
                        suffixes[position + 1] * values[code[start + position]]
                    )
                prefix = 1
                for position in range(length):
                    child = code[start + position]
                    derivative[child] += outer * prefix * suffixes[position + 1]
                    prefix *= values[child]
            elif kind == KIND_DECISION:
                cursor = offset + 2
                for _ in range(code[offset + 1]):
                    nlits = code[cursor]
                    cursor += 1
                    literals_end = cursor + nlits
                    nfree = code[literals_end]
                    free_start = literals_end + 1
                    free_end = free_start + nfree
                    child = code[free_end]
                    literal_weight = 1
                    for position in range(cursor, literals_end):
                        literal = code[position]
                        literal_weight *= (
                            positive[literal]
                            if literal > 0
                            else negative[-literal]
                        )
                    literals_start = cursor
                    cursor = free_end + 1
                    if not literal_weight:
                        continue
                    free_factor = 1
                    any_countable_free = False
                    for position in range(free_start, free_end):
                        variable = code[position]
                        free_factor *= free_sum[variable]
                        if is_countable[variable]:
                            any_countable_free = True
                    branch_value = literal_weight * free_factor * values[child]
                    derivative[child] += outer * literal_weight * free_factor
                    if not branch_value:
                        continue
                    contribution = outer * branch_value
                    for position in range(literals_start, literals_end):
                        literal = code[position]
                        if literal > 0:
                            if is_countable[literal]:
                                count_positive[literal] += contribution
                        elif is_countable[-literal]:
                            count_negative[-literal] += contribution
                    if any_countable_free:
                        base = outer * literal_weight * values[child]
                        suffixes = [1] * (nfree + 1)
                        for position in range(nfree - 1, -1, -1):
                            suffixes[position] = (
                                suffixes[position + 1]
                                * free_sum[code[free_start + position]]
                            )
                        prefix = 1
                        for position in range(nfree):
                            variable = code[free_start + position]
                            if is_countable[variable]:
                                others = base * prefix * suffixes[position + 1]
                                count_positive[variable] += (
                                    others * positive[variable]
                                )
                                count_negative[variable] += (
                                    others * negative[variable]
                                )
                            prefix *= free_sum[variable]

        counts: dict = {}
        for variable in self._countable:
            counts[variable] = count_positive[variable]
            counts[-variable] = count_negative[variable]
        return counts

    # -- exact sampling ----------------------------------------------------

    def sampler(self, weights: WeightMap | None = None) -> "CircuitSampler":
        """A reusable exact sampler over the circuit's (weighted) models."""
        return CircuitSampler(self, weights)


class CircuitSampler:
    """Draws countable-variable assignments with probability proportional
    to their weight, by one top-down descent per sample.

    Node values under the sampling weights are computed once at
    construction; each :meth:`sample` is then linear in the depth of the
    visited sub-DAG.  Draws are exact (integer arithmetic) for int and
    Fraction weights.
    """

    def __init__(self, circuit: DDNNF, weights: WeightMap | None = None) -> None:
        self._circuit = circuit
        self._weights = circuit._weight_arrays(weights)
        self._values = circuit._values(*self._weights)
        if not self._values[circuit.root]:
            raise ValueError(
                "circuit has no (weighted) models; nothing to sample"
            )

    @property
    def total(self):
        """The (weighted) model count the draws are normalized by."""
        return self._values[self._circuit.root]

    def sample(self, rng: random.Random) -> dict[int, bool]:
        """One assignment of every countable variable, drawn exactly."""
        circuit = self._circuit
        code = circuit._code
        offsets = circuit._offsets
        is_countable = circuit._is_countable
        positive, negative, free_sum = self._weights
        values = self._values
        assignment: dict[int, bool] = {}
        stack = [circuit.root]
        while stack:
            offset = offsets[stack.pop()]
            kind = code[offset]
            if kind == KIND_PRODUCT:
                stack.extend(
                    code[offset + 2:offset + 2 + code[offset + 1]]
                )
            elif kind == KIND_DECISION:
                nbranches = code[offset + 1]
                spans = []  # (literals start/end, free start/end, child)
                branch_weights = []
                cursor = offset + 2
                for _ in range(nbranches):
                    nlits = code[cursor]
                    cursor += 1
                    literals_end = cursor + nlits
                    nfree = code[literals_end]
                    free_start = literals_end + 1
                    free_end = free_start + nfree
                    child = code[free_end]
                    spans.append(
                        (cursor, literals_end, free_start, free_end, child)
                    )
                    if nbranches > 1:
                        term = values[child]
                        if term:
                            for position in range(cursor, literals_end):
                                literal = code[position]
                                term *= (
                                    positive[literal]
                                    if literal > 0
                                    else negative[-literal]
                                )
                            for position in range(free_start, free_end):
                                term *= free_sum[code[position]]
                        branch_weights.append(term)
                    cursor = free_end + 1
                chosen = (
                    spans[0]
                    if nbranches == 1
                    else spans[draw_index(rng, branch_weights)]
                )
                literals_start, literals_end, free_start, free_end, child = chosen
                for position in range(literals_start, literals_end):
                    literal = code[position]
                    variable = literal if literal > 0 else -literal
                    if is_countable[variable]:
                        assignment[variable] = literal > 0
                for position in range(free_start, free_end):
                    variable = code[position]
                    if is_countable[variable]:
                        pair = (positive[variable], negative[variable])
                        assignment[variable] = draw_index(rng, pair) == 0
                stack.append(child)
            # TRUE leaves contribute nothing; FALSE is unreachable (value 0)
        return assignment


def _column_add(columns: list, index: int, contribution) -> None:
    """Accumulate a column into a lazily-allocated column table (``None``
    entries stand for all-zero columns that were never touched)."""
    previous = columns[index]
    columns[index] = (
        contribution if previous is None else previous + contribution
    )


def draw_index(rng: random.Random, weights_seq: Sequence) -> int:
    """Index drawn with probability ``weights_seq[i] / sum``, exactly.

    Integer weights use ``randrange`` directly; Fractions (and floats,
    through their exact Fraction form) are scaled to a common denominator
    first, so the draw stays a single exact ``randrange``.
    """
    if not all(isinstance(weight, int) for weight in weights_seq):
        fractions = [Fraction(weight) for weight in weights_seq]
        common = 1
        for fraction in fractions:
            common = common * fraction.denominator // gcd(
                common, fraction.denominator
            )
        weights_seq = [
            int(fraction * common) for fraction in fractions
        ]
    total = sum(weights_seq)
    if total <= 0:
        raise ValueError("cannot draw from nonpositive total weight")
    target = rng.randrange(total)
    accumulated = 0
    for index, weight in enumerate(weights_seq):
        accumulated += weight
        if target < accumulated:
            return index
    raise AssertionError("unreachable: cumulative walk exhausted")
