"""Count-preserving formula preprocessing for the exact counter.

One pass, run once before the search on the root :class:`ClauseStore`
(:mod:`repro.compile.trail`), with three classic simplifications — each
applied only where it provably preserves the (projected) model count:

* **pure-literal elimination** — *projected mode only, non-projection
  variables only.*  Fixing a pure literal is the textbook SAT rule but is
  **unsound for model counting** (it discards the models on the other
  polarity), so the full-count path never uses it.  In projected mode a
  non-projection variable only matters through extendability, and flipping
  a pure variable to its pure polarity can only keep clauses satisfied —
  every projected assignment stays extendable, so the projected count is
  unchanged.
* **failed-literal / backbone probing** — both polarities of each
  candidate variable are propagated on the trail and undone.  A polarity
  that conflicts makes its negation a backbone literal (true in every
  model): it is asserted permanently.  A literal forced by *both* probes
  is likewise a backbone (every model sets the probe variable one way or
  the other).  Sound for full and projected counting alike; when the
  search records a d-DNNF trace the forced literals surface in the root
  decision node exactly like root unit propagations always did.
* **equivalent-literal substitution** — a probe pair forcing ``w`` under
  ``v`` and ``-w`` under ``-v`` proves ``w ≡ v`` in every model.
  Substituting ``w`` away is a bijection on models, so it preserves the
  full count, and determines ``w`` pointwise, so it preserves projected
  counts of non-projection variables.  It is **disabled** for variables a
  recorded circuit must mention (the countable set): a substituted
  variable would vanish from the trace and break weighted evaluation,
  marginals and smoothness.  Equivalence classes are canonicalized
  through a sign-tracking union-find; substituted variables are reported
  as *determined* so the counter excludes them from free-variable factors.

The module mutates the store's root trail (permanent assignments) and, if
substitutions fired, returns a rewritten clause list for the counter to
rebuild its store from.  :data:`PROBE_VARIABLE_LIMIT` bounds the probing
pass — each probe costs two propagations, which is only worth paying on
formulas small enough for the search to dominate anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compile.trail import ClauseStore

#: Probing runs only when at most this many constrained variables remain
#: unassigned after unit propagation (2 propagations per probe).
PROBE_VARIABLE_LIMIT = 400


@dataclass
class PreprocessResult:
    """What one preprocessing pass did to the formula."""

    conflict: bool = False
    #: Literals preprocessing asserted permanently (beyond the input's own
    #: unit clauses): backbones from failed probes and common-forced pairs.
    forced: tuple[int, ...] = ()
    #: Pure literals fixed (projected mode, non-projection variables).
    pure_fixed: tuple[int, ...] = ()
    #: Variables substituted away (``var -> defining literal``).
    substitutions: dict[int, int] = field(default_factory=dict)
    #: Rewritten clause list after substitution; ``None`` = store is live.
    rewritten: list[tuple[int, ...]] | None = None
    probes: int = 0
    failed_literals: int = 0
    equivalences: int = 0

    @property
    def determined_mask(self) -> int:
        """Bitset of substituted variables (excluded from free factors)."""
        mask = 0
        for variable in self.substitutions:
            mask |= 1 << variable
        return mask


class _SignedUnionFind:
    """Union-find with edge signs: tracks ``u ≡ sign · root``."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._sign: dict[int, int] = {}

    def find(self, variable: int) -> tuple[int, int]:
        parent = self._parent
        sign = self._sign
        if variable not in parent:
            parent[variable] = variable
            sign[variable] = 1
            return variable, 1
        path = []
        node = variable
        while parent[node] != node:
            path.append(node)
            node = parent[node]
        root = node
        # Compress root-ward: each hop's stored sign is relative to its old
        # parent, so the cumulative product walking in from the root is the
        # node's sign relative to the root.
        cumulative = 1
        for node in reversed(path):
            cumulative = sign[node] * cumulative
            parent[node] = root
            sign[node] = cumulative
        return root, cumulative if path else 1

    def union(self, u: int, v: int, sign: int) -> bool:
        """Record ``u ≡ sign · v``; False if it contradicts known state."""
        root_u, sign_u = self.find(u)
        root_v, sign_v = self.find(v)
        if root_u == root_v:
            return sign_u == sign * sign_v
        self._parent[root_u] = root_v
        self._sign[root_u] = sign_u * sign * sign_v
        return True

    def classes(self) -> dict[int, list[tuple[int, int]]]:
        """``root -> [(member, sign of member relative to root)]``."""
        grouped: dict[int, list[tuple[int, int]]] = {}
        for variable in list(self._parent):
            root, sign = self.find(variable)
            grouped.setdefault(root, []).append((variable, sign))
        return grouped


def preprocess_store(
    store: ClauseStore,
    projection: frozenset[int] | None = None,
    traced: bool = False,
    probe: "bool | str" = "auto",
    probe_limit: int = PROBE_VARIABLE_LIMIT,
) -> PreprocessResult:
    """Run the full preprocessing pass on ``store`` (mutating its trail).

    The caller is expected to have already propagated the input's unit
    clauses; this function tolerates either way (propagation is
    idempotent).  On ``conflict=True`` the formula has no models and the
    store's state is meaningless to the search.

    ``probe='auto'`` probes in projected mode only.  Projected encodings
    (the completion side) define auxiliary variables in terms of others,
    which is exactly the structure probing monetizes — equivalences to
    substitute, pure definitions to fix.  The full-count complement
    encoding mentions choice variables only, its probes provably derive
    nothing permanent (every consequence is a pairwise at-most-one), and
    with substitution also gated off the pass would be pure overhead.
    Pass ``probe=True``/``False`` to override either way.
    """
    result = PreprocessResult()
    if store.has_empty:
        result.conflict = True
        return result
    if not store.propagate(store.units):
        result.conflict = True
        return result

    if projection is not None:
        if not _fix_pure_literals(store, projection, result):
            result.conflict = True
            return result

    if probe == "auto":
        probe = projection is not None
    if probe and _probe_candidates(store) <= probe_limit:
        equivalences = _SignedUnionFind()
        if not _probe(store, result, equivalences):
            result.conflict = True
            return result
        if not _derive_substitutions(
            store, projection, traced, equivalences, result
        ):
            result.conflict = True
            return result
        if result.substitutions:
            result.rewritten = _rewrite(store, result.substitutions)
    return result


def _probe_candidates(store: ClauseStore) -> int:
    """Unassigned variables with at least one occurrence (probe targets)."""
    value = store.value
    occ_pos, occ_neg = store.occ_pos, store.occ_neg
    return sum(
        1
        for v in range(1, store.num_variables + 1)
        if not value[v] and (occ_pos[v] or occ_neg[v])
    )


def _fix_pure_literals(
    store: ClauseStore, projection: frozenset[int], result: PreprocessResult
) -> bool:
    """Fix pure non-projection literals to fixpoint.  False on conflict."""
    value = store.value
    sat = store.sat
    fixed: list[int] = list(result.pure_fixed)
    changed = True
    while changed:
        changed = False
        for variable in range(1, store.num_variables + 1):
            if value[variable] or variable in projection:
                continue
            positive = any(not sat[ci] for ci in store.occ_pos[variable])
            negative = any(not sat[ci] for ci in store.occ_neg[variable])
            if positive == negative:  # both polarities live, or neither
                continue
            literal = variable if positive else -variable
            if not store.propagate((literal,)):
                return False
            fixed.append(literal)
            changed = True
    result.pure_fixed = tuple(fixed)
    return True


def _probe(
    store: ClauseStore,
    result: PreprocessResult,
    equivalences: _SignedUnionFind,
) -> bool:
    """Failed-literal probing over every live variable.  False = conflict."""
    value = store.value
    sat = store.sat
    forced: list[int] = []
    for variable in range(1, store.num_variables + 1):
        if value[variable]:
            continue
        if not any(
            not sat[ci] for ci in store.occ_pos[variable]
        ) and not any(not sat[ci] for ci in store.occ_neg[variable]):
            continue
        mark = store.mark()
        ok_true = store.propagate((variable,))
        forced_true = (
            frozenset(store.trail[mark + 1:]) if ok_true else None
        )
        store.backtrack(mark)
        ok_false = store.propagate((-variable,))
        forced_false = (
            frozenset(store.trail[mark + 1:]) if ok_false else None
        )
        store.backtrack(mark)
        result.probes += 1
        if not ok_true and not ok_false:
            return False
        if not ok_true or not ok_false:
            backbone = -variable if not ok_true else variable
            if not store.propagate((backbone,)):
                return False
            forced.append(backbone)
            result.failed_literals += 1
            continue
        assert forced_true is not None and forced_false is not None
        for literal in sorted(forced_true & forced_false, key=abs):
            if not value[abs(literal)]:
                if not store.propagate((literal,)):
                    return False
                forced.append(literal)
        for literal in sorted(forced_true, key=abs):
            if -literal in forced_false:
                # literal ⟺ variable:  var(literal) ≡ ±variable
                equivalences.union(
                    abs(literal), variable, 1 if literal > 0 else -1
                )
                result.equivalences += 1
    result.forced = tuple(forced)
    return True


def _derive_substitutions(
    store: ClauseStore,
    projection: frozenset[int] | None,
    traced: bool,
    equivalences: _SignedUnionFind,
    result: PreprocessResult,
) -> bool:
    """Turn equivalence classes into a substitution map, where allowed.

    A variable may be substituted away only when no downstream consumer
    needs it by name: in full-count mode that means no trace is being
    recorded (the circuit must mention every countable variable); in
    projected mode, that the variable is outside the projection.
    Returns ``False`` when asserting a forced equivalent hits a conflict
    (only possible on an unsatisfiable formula).
    """
    if projection is None:
        if traced:
            return True

        def allowed(variable: int) -> bool:
            return True
    else:

        def allowed(variable: int) -> bool:
            return variable not in projection

    value = store.value
    substitutions: dict[int, int] = {}
    for _root, members in sorted(equivalences.classes().items()):
        if len(members) < 2:
            continue
        members.sort()
        # The representative must survive: prefer a member substitution
        # may not touch, else the smallest variable of the class.
        keep = [m for m in members if not allowed(m[0]) or value[m[0]]]
        representative, rep_sign = keep[0] if keep else members[0]
        for variable, sign in members:
            if variable == representative:
                continue
            relative = sign * rep_sign  # variable ≡ relative · representative
            if value[variable] or value[representative]:
                # One side got forced after the equivalence was found:
                # propagate the other side instead of substituting.
                if value[representative]:
                    literal = relative * value[representative] * variable
                else:
                    literal = relative * value[variable] * representative
                if not value[abs(literal)] and not store.propagate((literal,)):
                    return False
                continue
            if not allowed(variable):
                continue
            substitutions[variable] = relative * representative
    result.substitutions = substitutions
    return True


def _rewrite(
    store: ClauseStore, substitutions: dict[int, int]
) -> list[tuple[int, ...]]:
    """The live residual clauses with ``substitutions`` applied.

    Satisfied clauses are dropped, false literals removed, substituted
    literals renamed; duplicate literals collapse and tautologies vanish.
    The result is what the counter rebuilds its store from.
    """
    value = store.value
    rewritten: list[tuple[int, ...]] = []
    for index, clause in enumerate(store.clauses):
        if store.sat[index]:
            continue
        literals: list[int] = []
        tautology = False
        for literal in clause:
            variable = literal if literal > 0 else -literal
            if value[variable]:
                continue  # a false literal (true would satisfy the clause)
            definition = substitutions.get(variable)
            renamed = (
                literal
                if definition is None
                else (definition if literal > 0 else -definition)
            )
            if -renamed in literals:
                tautology = True
                break
            if renamed not in literals:
                literals.append(renamed)
        if tautology:
            continue
        literals.sort(key=abs)
        rewritten.append(tuple(literals))
    return rewritten
