"""The ``lineage`` counting backend: compile, then count models exactly.

This is the front door :mod:`repro.exact.dispatch` routes to on hard
dichotomy cells (``method='lineage'``): instead of enumerating all
``prod |dom(⊥)|`` valuations like brute force, it compiles the instance to
CNF (:mod:`repro.compile.encode`) and runs the decomposition-based exact
counter (:mod:`repro.compile.sharpsat`).  The cost is exponential only in
the (heuristic) treewidth of the lineage, not in the number of nulls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compile.encode import compile_completion_cnf, compile_valuation_cnf
from repro.compile.lineage import lineage_supports
from repro.compile.sharpsat import ModelCounter, count_models
from repro.core.query import BooleanQuery
from repro.db.incomplete import IncompleteDatabase


def count_valuations_lineage(
    db: IncompleteDatabase, query: BooleanQuery
) -> int:
    """``#Val(q)(D)`` via lineage compilation and exact model counting."""
    encoding = compile_valuation_cnf(db, query)
    if encoding.total_valuations == 0:
        return 0
    return encoding.count_from_models(count_models(encoding.cnf))


def count_completions_lineage(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> int:
    """``#Comp(q)(D)`` via the canonical-fact encoding and projected
    exact model counting (``query=None`` counts all completions)."""
    encoding = compile_completion_cnf(db, query)
    return count_models(encoding.cnf, projection=encoding.projection)


@dataclass
class LineageReport:
    """Size and difficulty statistics of one lineage compilation."""

    mode: str
    count: int
    num_variables: int
    num_clauses: int
    heuristic_width: int | None
    cache_entries: int
    components_split: int


def explain_valuations(
    db: IncompleteDatabase, query: BooleanQuery
) -> LineageReport:
    """Run the ``#Val`` backend and report what the counter saw."""
    encoding = compile_valuation_cnf(db, query)
    counter = ModelCounter(encoding.cnf)
    count = encoding.count_from_models(counter.count())
    return _report("val", count, encoding.cnf, counter)


def explain_completions(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> LineageReport:
    """Run the ``#Comp`` backend and report what the counter saw."""
    encoding = compile_completion_cnf(db, query)
    counter = ModelCounter(encoding.cnf, projection=encoding.projection)
    return _report("comp", counter.count(), encoding.cnf, counter)


def _report(mode, count, cnf, counter) -> LineageReport:
    return LineageReport(
        mode=mode,
        count=count,
        num_variables=cnf.num_variables,
        num_clauses=len(cnf),
        heuristic_width=counter.width,
        cache_entries=len(counter._cache),
        components_split=counter.components_split,
    )


__all__ = [
    "count_valuations_lineage",
    "count_completions_lineage",
    "explain_valuations",
    "explain_completions",
    "LineageReport",
    "lineage_supports",
]
