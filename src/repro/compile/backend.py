"""Counting backends over the lineage pipeline: search once or compile once.

Two families of entry points live here:

* the **lineage** backend (``method='lineage'`` in
  :mod:`repro.exact.dispatch`): compile the instance to CNF
  (:mod:`repro.compile.encode`) and run the decomposition-based exact
  counter (:mod:`repro.compile.sharpsat`) — one search per question;
* the **circuit** backend (``method='circuit'``): run the same search
  *once* with trace recording, keep the resulting d-DNNF circuit
  (:mod:`repro.compile.circuit`), and answer every further question about
  the same ``(D, q)`` — uniform counts, weighted counts for non-uniform
  null distributions, per-null marginals, exact valuation samples — by
  linear passes over the circuit.  :class:`ValuationCircuit` and
  :class:`CompletionCircuit` are the compiled artifacts the batch engine
  caches by instance fingerprint.

Either way the cost of the hard part is exponential only in the
(heuristic) treewidth of the lineage, not in the number of nulls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.complexity.cnf import CNF
from repro.compile.circuit import CircuitSampler, DDNNF, draw_index
from repro.compile.ddnnf_trace import TraceBuilder
from repro.compile.encode import (
    compile_completion_cnf,
    compile_valuation_cnf,
)
from repro.compile.lineage import lineage_supports
from repro.compile.serialize import (
    CircuitFormatError,
    Reader,
    Writer,
    dumps_circuit,
    frame,
    loads_circuit,
    unframe,
)
from repro.compile.sharpsat import ModelCounter, count_models
from repro.compile.variables import ChoiceVariables, FactVariables
from repro.core.query import BooleanQuery
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term
from repro.db.valuation import (
    NullWeights,
    count_total_valuations,
    resolve_null_weights,
)
from repro.obs import span as _span

#: Frame magics of the two wrapper artifacts (see ``to_bytes``).
VALUATION_MAGIC = b"RVAL"
COMPLETION_MAGIC = b"RCMP"


def _write_optional_uint(writer: Writer, value: int | None) -> None:
    writer.uint(0 if value is None else value + 1)


def _read_optional_uint(reader: Reader) -> int | None:
    encoded = reader.uint()
    return None if encoded == 0 else encoded - 1


def count_valuations_lineage(
    db: IncompleteDatabase, query: BooleanQuery
) -> int:
    """``#Val(q)(D)`` via lineage compilation and exact model counting."""
    encoding = compile_valuation_cnf(db, query)
    if encoding.total_valuations == 0:
        return 0
    return encoding.count_from_models(count_models(encoding.cnf))


def count_completions_lineage(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> int:
    """``#Comp(q)(D)`` via the canonical-fact encoding and projected
    exact model counting (``query=None`` counts all completions)."""
    encoding = compile_completion_cnf(db, query)
    return count_models(encoding.cnf, projection=encoding.projection)


# ---------------------------------------------------------------------------
# compiled circuits: one search, many questions
# ---------------------------------------------------------------------------


class ValuationCircuit:
    """A compiled ``(D, q)``: every ``#Val``-flavored question in circuit passes.

    Construction runs the *complement* encoding
    (:func:`~repro.compile.encode.compile_valuation_cnf`) through the
    trace-recording model counter once.  The recorded d-DNNF's models are
    the valuations **falsifying** the query — the encoding with the
    lineage's own treewidth, which is what keeps compilation tractable
    (the positive witness encoding couples everything through one global
    disjunction and defeats component decomposition).  Every question is
    then answered against the complement, exactly:

    * :meth:`count` — ``total - circuit.count()``, bit for bit what
      ``method='lineage'`` computes (same counter, same CNF);
    * :meth:`weighted_count` — the weighted total factorizes as
      ``prod_⊥ sum_c w(⊥, c)``, the falsifying mass is one weighted
      upward pass;
    * :meth:`marginals` — pinned totals factorize the same way, and one
      downward pass yields the falsifying mass of *every* ``(⊥, c)``
      pair at once;
    * :meth:`sample_valuation` — exact samples by iterated conditioning
      (chain rule): pin one null per marginal pass, ``k`` linear passes
      per sample, no rejection and no re-search.  (Top-down *descent*
      would sample the circuit's own models — the falsifying
      valuations — which is the wrong side of the complement.)
    """

    def __init__(
        self,
        db: IncompleteDatabase,
        query: BooleanQuery,
        reference: bool = False,
    ) -> None:
        with _span("compile.encode", mode="val"):
            encoding = compile_valuation_cnf(db, query)
        trace = TraceBuilder()
        counter = ModelCounter(encoding.cnf, trace=trace, reference=reference)
        self._falsifying = counter.count()
        assert counter.trace_root is not None
        with _span("compile.trace_build"):
            self.circuit = trace.build(
                counter.trace_root, encoding.cnf.num_variables
            )
        self._db = db
        self._choices = encoding.choices
        self.total_valuations = encoding.total_valuations
        self._count = encoding.count_from_models(self._falsifying)
        self.num_matches = encoding.num_matches
        self.num_clauses = len(encoding.cnf)
        stats = counter.stats()
        self.heuristic_width = stats["width"]
        self.cache_entries = stats["cache_entries"]
        self.components_split = stats["components_split"]
        self._wire_bytes: int | None = None

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """The artifact as a versioned binary payload.

        Only process-independent state travels: the d-DNNF node table and
        the scalar compile statistics.  The choice-variable map is *not*
        serialized — :meth:`from_bytes` rebuilds it deterministically from
        the instance, which keeps the format free of pickled objects.
        """
        writer = Writer()
        writer.uint(self._count)
        writer.uint(self.total_valuations)
        writer.uint(self.num_matches)
        writer.uint(self.num_clauses)
        _write_optional_uint(writer, self.heuristic_width)
        writer.uint(self.cache_entries)
        writer.uint(self.components_split)
        with _span("compile.serialize", nodes=self.circuit.num_nodes):
            writer.blob(dumps_circuit(self.circuit))
        return frame(VALUATION_MAGIC, writer.getvalue())

    @classmethod
    def from_bytes(
        cls, data: bytes, db: IncompleteDatabase
    ) -> "ValuationCircuit":
        """Rehydrate an artifact compiled (possibly elsewhere) for ``db``.

        The choice-variable map is reconstructed from ``db`` — variable
        allocation is deterministic (nulls in database order, domain
        values sorted), so the rebuilt map names exactly the variables the
        serialized circuit was compiled over; the variable-count check
        below rejects an artifact paired with the wrong database.  Raises
        :class:`~repro.compile.serialize.CircuitFormatError` on version
        mismatch, corruption, or an instance mismatch.
        """
        reader = Reader(unframe(data, VALUATION_MAGIC))
        count = reader.uint()
        total_valuations = reader.uint()
        num_matches = reader.uint()
        num_clauses = reader.uint()
        heuristic_width = _read_optional_uint(reader)
        cache_entries = reader.uint()
        components_split = reader.uint()
        circuit = loads_circuit(reader.blob())
        reader.expect_end()

        cnf = CNF()
        choices = ChoiceVariables(cnf, db)
        # The complement encoding allocates choice variables only, so the
        # circuit's variable universe must be exactly the rebuilt map's.
        if circuit.num_variables != cnf.num_variables:
            raise CircuitFormatError(
                "artifact has %d variables but the database allocates %d "
                "choice variables — wrong instance for this payload"
                % (circuit.num_variables, cnf.num_variables)
            )
        if total_valuations != count_total_valuations(db):
            raise CircuitFormatError(
                "artifact total valuation count does not match the database"
            )
        compiled = cls.__new__(cls)
        compiled._falsifying = total_valuations - count
        compiled.circuit = circuit
        compiled._db = db
        compiled._choices = choices
        compiled.total_valuations = total_valuations
        compiled._count = count
        compiled.num_matches = num_matches
        compiled.num_clauses = num_clauses
        compiled.heuristic_width = heuristic_width
        compiled.cache_entries = cache_entries
        compiled.components_split = components_split
        compiled._wire_bytes = len(data)
        return compiled

    # -- questions ---------------------------------------------------------

    def count(self) -> int:
        """``#Val(q)(D)`` — exact, big-int."""
        return self._count

    def weighted_count(self, weights: NullWeights | None = None):
        """Weighted ``#Val``: each satisfying valuation counts its product
        of per-null value weights (see
        :func:`repro.db.valuation.resolve_null_weights` for the weight
        table conventions).  Exact for int/Fraction weights; equals
        :meth:`count` under ``weights=None``."""
        resolved = resolve_null_weights(self._db, weights)
        if self.total_valuations == 0:
            return 0
        return self._weighted_satisfying(resolved)

    def marginals(
        self, weights: NullWeights | None = None
    ) -> dict[Null, dict[Term, Fraction]]:
        """``P[ν(⊥) = c | ν(D) |= q]`` for every null ``⊥`` and value ``c``.

        One upward and one downward circuit pass produce all pairs at
        once — this replaces conditioning the counter on ``⊥ = c`` and
        re-running the search per value.  Probabilities are exact
        :class:`~fractions.Fraction` values under the (possibly weighted)
        valuation distribution; raises :class:`ValueError` when no
        valuation satisfies the query.
        """
        resolved = resolve_null_weights(self._db, weights)
        return self._marginal_table(*self._satisfying_pair_masses(resolved))

    def _marginal_table(
        self, satisfying, pair_counts
    ) -> dict[Null, dict[Term, Fraction]]:
        if not satisfying:
            raise ValueError(
                "no satisfying valuation has nonzero weight; "
                "marginals are undefined"
            )
        table: dict[Null, dict[Term, Fraction]] = {}
        for (null, value), _variable in self._choices.items():
            table.setdefault(null, {})[value] = Fraction(
                pair_counts[(null, value)]
            ) / Fraction(satisfying)
        return table

    def weighted_count_many(
        self, weight_rows: Sequence[NullWeights | None]
    ) -> list:
        """:meth:`weighted_count` for N weight tables in one batched pass.

        Exactly ``[self.weighted_count(row) for row in weight_rows]`` —
        the circuit's upward pass runs once with length-N columns
        (:meth:`~repro.compile.circuit.DDNNF.evaluate_many`) instead of
        once per table.
        """
        resolved_rows = [
            resolve_null_weights(self._db, row) for row in weight_rows
        ]
        if not resolved_rows:
            return []
        if self.total_valuations == 0:
            return [0] * len(resolved_rows)
        falsifying = self.circuit.evaluate_many(
            [self._variable_weights(resolved) for resolved in resolved_rows]
        )
        return [
            self._weighted_total(resolved) - mass
            for resolved, mass in zip(resolved_rows, falsifying)
        ]

    def marginals_many(
        self, weight_rows: Sequence[NullWeights | None]
    ) -> list[dict[Null, dict[Term, Fraction]]]:
        """:meth:`marginals` for N weight tables in one batched pass.

        One batched upward+downward sweep
        (:meth:`~repro.compile.circuit.DDNNF.literal_counts_many`)
        replaces the per-table pass loop; each returned table equals the
        scalar result exactly.
        """
        resolved_rows = [
            resolve_null_weights(self._db, row) for row in weight_rows
        ]
        if not resolved_rows:
            return []
        counts_rows = self.circuit.literal_counts_many(
            [self._variable_weights(resolved) for resolved in resolved_rows]
        )
        return [
            self._marginal_table(
                *self._pair_masses_from_counts(resolved, counts)
            )
            for resolved, counts in zip(resolved_rows, counts_rows)
        ]

    def sample_valuation(
        self,
        rng: random.Random | None = None,
        seed: int | None = None,
        weights: NullWeights | None = None,
    ) -> dict[Null, Term]:
        """One satisfying valuation, drawn exactly (uniform by default,
        or proportional to its weight product) by iterated conditioning:
        each null is pinned from its conditional marginal given the pins
        so far — ``k`` linear passes, never a rejection.  Raises
        :class:`ValueError` when the query is unsatisfiable."""
        if rng is None:
            rng = random.Random(seed)
        resolved = resolve_null_weights(self._db, weights)
        if not self._db.nulls:
            if self._count == 0:
                raise ValueError(
                    "no satisfying valuation has nonzero weight; "
                    "nothing to sample"
                )
            return {}
        pinned: dict[Null, Term] = {}
        live = {null: dict(table) for null, table in resolved.items()}
        for null in self._db.nulls:
            _satisfying, pair_counts = self._satisfying_pair_masses(live)
            values = sorted(live[null], key=repr)
            masses = [pair_counts[(null, value)] for value in values]
            if not sum(masses):
                # Only possible at the first null (conditioning preserves
                # positive mass), i.e. the whole satisfying set has zero
                # weight — the check rides the pass that was needed
                # anyway instead of costing a pass of its own.
                raise ValueError(
                    "no satisfying valuation has nonzero weight; "
                    "nothing to sample"
                )
            choice = values[draw_index(rng, masses)]
            pinned[null] = choice
            live[null] = {choice: resolved[null][choice]}
        return pinned

    # -- complement arithmetic ---------------------------------------------

    def _variable_weights(self, resolved: dict) -> dict:
        """Per-variable ``(true, false)`` weights from per-null tables.

        A model sets exactly one choice variable per null (values a table
        omits are conditioned away with weight 0), so giving the *true*
        polarity the null-value weight and every *false* polarity weight 1
        makes the model's weight the valuation's product.
        """
        table = {}
        for (null, value), variable in self._choices.items():
            table[variable] = (resolved[null].get(value, 0), 1)
        return table

    def _weighted_total(self, resolved: dict):
        total: object = 1
        for null in self._db.nulls:
            total = total * sum(resolved[null].values())  # type: ignore[operator]
        return total

    def _weighted_satisfying(self, resolved: dict):
        """Weighted mass of the satisfying valuations: total - falsifying."""
        falsifying = self.circuit.evaluate(self._variable_weights(resolved))
        return self._weighted_total(resolved) - falsifying

    def _satisfying_pair_masses(self, resolved: dict) -> tuple:
        """``(satisfying total, (null, value) -> weighted mass of
        satisfying valuations with ν(null) = value)``, in two passes.

        The pinned total factorizes (``w(⊥, c) · prod_others sum``); the
        falsifying share of the pin is the literal count of the pair's
        choice variable in the complement circuit.  The satisfying total
        rides the same pass: smoothness gives the falsifying total as
        ``counts[v] + counts[-v]`` of any choice variable, so no separate
        upward evaluation is needed.
        """
        counts = self.circuit.literal_counts(self._variable_weights(resolved))
        return self._pair_masses_from_counts(resolved, counts)

    def _pair_masses_from_counts(self, resolved: dict, counts: dict) -> tuple:
        """The pair-mass arithmetic of :meth:`_satisfying_pair_masses`
        applied to an already-computed literal-count table (which is how
        the batched pass shares one sweep across N weight rows)."""
        totals = {
            null: sum(resolved[null].values()) for null in self._db.nulls
        }
        grand = self._weighted_total(resolved)
        pairs = self._choices.items()
        if pairs:
            _pair, any_variable = pairs[0]
            falsifying = counts[any_variable] + counts[-any_variable]
        else:  # ground database: the circuit is a constant
            falsifying = self.circuit.evaluate(None)
        masses = {}
        for (null, value), variable in pairs:
            weight = resolved[null].get(value, 0)
            if not weight:
                masses[(null, value)] = 0
                continue
            if isinstance(grand, int) and isinstance(totals[null], int):
                # grand is the product of the totals, so this is exact.
                pinned_total = grand // totals[null] * weight
            else:
                pinned_total = grand * weight / totals[null]
            masses[(null, value)] = pinned_total - counts[variable]
        return grand - falsifying, masses

    @property
    def wire_bytes(self) -> int | None:
        """Exact serialized size when the artifact crossed the wire."""
        return self._wire_bytes

    def memory_bytes(self) -> int:
        """Resident size for cache accounting (circuit dominates).

        The structural estimate is used for every circuit — a rehydrated
        artifact occupies the same Python object graph as a local compile,
        so accounting stays symmetric; the (smaller) wire size only ever
        raises the figure, never lowers it.
        """
        estimate = self.circuit.memory_bytes() + 512
        if self._wire_bytes is not None and self._wire_bytes > estimate:
            return self._wire_bytes
        return estimate

    def __repr__(self) -> str:
        return "ValuationCircuit(count=%d, %r)" % (self._count, self.circuit)


class CompletionCircuit:
    """A compiled ``#Comp`` instance: the canonical-fact encoding's trace.

    The projected models of the recorded circuit are the completions of
    ``D`` (satisfying ``q`` when one was given), so beyond the exact
    :meth:`count` the circuit also answers per-fact membership marginals
    and samples completions uniformly — the completion-side analogues of
    the :class:`ValuationCircuit` passes.
    """

    def __init__(
        self,
        db: IncompleteDatabase,
        query: BooleanQuery | None = None,
        reference: bool = False,
    ) -> None:
        with _span("compile.encode", mode="comp"):
            encoding = compile_completion_cnf(db, query)
        trace = TraceBuilder()
        counter = ModelCounter(
            encoding.cnf,
            projection=encoding.projection,
            trace=trace,
            reference=reference,
        )
        self._count = counter.count()
        assert counter.trace_root is not None
        with _span("compile.trace_build"):
            self.circuit = trace.build(
                counter.trace_root,
                encoding.cnf.num_variables,
                countable=encoding.projection,
            )
        self._facts = encoding.facts
        self.num_clauses = len(encoding.cnf)
        stats = counter.stats()
        self.heuristic_width = stats["width"]
        self.cache_entries = stats["cache_entries"]
        self.components_split = stats["components_split"]
        self._sampler_cache: CircuitSampler | None = None
        self._wire_bytes: int | None = None

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """The artifact as a versioned binary payload (see
        :meth:`ValuationCircuit.to_bytes` for the design)."""
        writer = Writer()
        writer.uint(self._count)
        writer.uint(self.num_clauses)
        _write_optional_uint(writer, self.heuristic_width)
        writer.uint(self.cache_entries)
        writer.uint(self.components_split)
        with _span("compile.serialize", nodes=self.circuit.num_nodes):
            writer.blob(dumps_circuit(self.circuit))
        return frame(COMPLETION_MAGIC, writer.getvalue())

    @classmethod
    def from_bytes(
        cls, data: bytes, db: IncompleteDatabase
    ) -> "CompletionCircuit":
        """Rehydrate an artifact compiled (possibly elsewhere) for ``db``.

        The fact-variable map is rebuilt deterministically (choice
        variables first, then one variable per sorted potential fact,
        exactly as the encoder allocates them); the projection check
        rejects an artifact paired with the wrong database.
        """
        reader = Reader(unframe(data, COMPLETION_MAGIC))
        count = reader.uint()
        num_clauses = reader.uint()
        heuristic_width = _read_optional_uint(reader)
        cache_entries = reader.uint()
        components_split = reader.uint()
        circuit = loads_circuit(reader.blob())
        reader.expect_end()

        cnf = CNF()
        ChoiceVariables(cnf, db)  # allocates the choice block first
        facts = FactVariables(cnf, db)
        if circuit.countable != frozenset(facts.variables()):
            raise CircuitFormatError(
                "artifact projection does not match the database's "
                "potential facts — wrong instance for this payload"
            )
        compiled = cls.__new__(cls)
        compiled._count = count
        compiled.circuit = circuit
        compiled._facts = facts
        compiled.num_clauses = num_clauses
        compiled.heuristic_width = heuristic_width
        compiled.cache_entries = cache_entries
        compiled.components_split = components_split
        compiled._sampler_cache = None
        compiled._wire_bytes = len(data)
        return compiled

    def count(self) -> int:
        """``#Comp(q)(D)`` — exact, big-int."""
        return self._count

    def fact_marginals(self) -> dict[Fact, Fraction]:
        """``P[g ∈ C]`` for every potential fact ``g``, ``C`` uniform over
        the counted completions.  Raises :class:`ValueError` on a count of
        zero."""
        if not self._count:
            raise ValueError(
                "no completion satisfies the query; marginals are undefined"
            )
        counts = self.circuit.literal_counts()
        return {
            fact: Fraction(counts[self._facts.var(fact)], self._count)
            for fact in self._facts.facts()
        }

    def _fact_variable_weights(
        self, fact_weights: "Mapping[Fact, object] | None"
    ) -> dict:
        """Per-variable ``(present, absent)`` weights from a per-fact
        table: a listed fact weighs ``w`` when the completion contains it
        and ``1`` when it does not (unlisted facts always weigh 1)."""
        table = {}
        for fact, weight in (fact_weights or {}).items():
            table[self._facts.var(fact)] = (weight, 1)
        return table

    def weighted_count(
        self, fact_weights: "Mapping[Fact, object] | None" = None
    ):
        """Weighted ``#Comp``: each counted completion weighs the product
        of ``fact_weights[g]`` over the potential facts ``g`` it contains.
        Exact for int/Fraction weights; equals :meth:`count` when no
        weights are given."""
        return self.circuit.evaluate(self._fact_variable_weights(fact_weights))

    def weighted_count_many(
        self, fact_weight_rows: "Sequence[Mapping[Fact, object] | None]"
    ) -> list:
        """:meth:`weighted_count` for N per-fact tables in one batched
        upward pass over the projected circuit."""
        return self.circuit.evaluate_many(
            [self._fact_variable_weights(row) for row in fact_weight_rows]
        )

    def fact_marginals_many(
        self, fact_weight_rows: "Sequence[Mapping[Fact, object] | None]"
    ) -> list[dict[Fact, Fraction]]:
        """:meth:`fact_marginals` under each of N completion weightings at
        once (one batched upward+downward pass); each table is exact.
        Raises :class:`ValueError` for a row whose weighted total is 0."""
        counts_rows = self.circuit.literal_counts_many(
            [self._fact_variable_weights(row) for row in fact_weight_rows]
        )
        facts = self._facts.facts()
        tables: list[dict[Fact, Fraction]] = []
        for counts in counts_rows:
            if facts:
                anchor = self._facts.var(facts[0])
                # Smoothness: both polarities of any projected variable
                # sum to the row's weighted completion total.
                total = counts[anchor] + counts[-anchor]
            else:
                total = self._count
            if not total:
                raise ValueError(
                    "no completion has nonzero weight; "
                    "marginals are undefined"
                )
            tables.append({
                fact: Fraction(counts[self._facts.var(fact)])
                / Fraction(total)
                for fact in facts
            })
        return tables

    def sample_completion(
        self, rng: random.Random | None = None, seed: int | None = None
    ) -> frozenset[Fact]:
        """One completion, uniform over the counted completions."""
        if rng is None:
            rng = random.Random(seed)
        if self._sampler_cache is None:
            self._sampler_cache = self.circuit.sampler()
        assignment = self._sampler_cache.sample(rng)
        return frozenset(
            fact
            for fact in self._facts.facts()
            if assignment.get(self._facts.var(fact))
        )

    @property
    def wire_bytes(self) -> int | None:
        """Exact serialized size when the artifact crossed the wire."""
        return self._wire_bytes

    def memory_bytes(self) -> int:
        """Resident size for cache accounting (circuit dominates); see
        :meth:`ValuationCircuit.memory_bytes` for the symmetry rationale."""
        estimate = self.circuit.memory_bytes() + 512
        if self._wire_bytes is not None and self._wire_bytes > estimate:
            return self._wire_bytes
        return estimate

    def __repr__(self) -> str:
        return "CompletionCircuit(count=%d, %r)" % (self._count, self.circuit)


def artifact_from_bytes(
    data: bytes, db: IncompleteDatabase
) -> "ValuationCircuit | CompletionCircuit":
    """Rehydrate a wrapper artifact of either kind, dispatched on magic.

    The engine uses this to install worker-compiled circuits without
    caring which problem family produced them.  Raises
    :class:`~repro.compile.serialize.CircuitFormatError` on anything that
    is not a trustworthy wrapper payload for ``db``.
    """
    if data[:4] == VALUATION_MAGIC:
        return ValuationCircuit.from_bytes(data, db)
    if data[:4] == COMPLETION_MAGIC:
        return CompletionCircuit.from_bytes(data, db)
    raise CircuitFormatError(
        "bad magic %r: not a circuit artifact" % (bytes(data[:4]),)
    )


def count_valuations_circuit(
    db: IncompleteDatabase, query: BooleanQuery
) -> int:
    """``#Val(q)(D)`` through the circuit pipeline (compile + one count)."""
    return ValuationCircuit(db, query).count()


def count_completions_circuit(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> int:
    """``#Comp(q)(D)`` through the circuit pipeline (compile + one count)."""
    return CompletionCircuit(db, query).count()


def valuation_marginals(
    db: IncompleteDatabase,
    query: BooleanQuery,
    weights: NullWeights | None = None,
) -> dict[Null, dict[Term, Fraction]]:
    """Per-null marginals of one instance (compiles a throwaway circuit).

    For repeated questions about the same instance build a
    :class:`ValuationCircuit` once instead.
    """
    return ValuationCircuit(db, query).marginals(weights)


def valuation_marginals_recount(
    db: IncompleteDatabase, query: BooleanQuery
) -> dict[Null, dict[Term, Fraction]]:
    """Reference marginals by conditioning and re-counting, per value.

    One full model-counting search per ``(null, value)`` pair — the loop
    the circuit passes replace.  Kept as the cross-validation oracle and
    the honest baseline for the amortization benchmark.
    """
    encoding = compile_valuation_cnf(db, query)
    total = encoding.total_valuations
    satisfying = total - count_models(encoding.cnf)
    if not satisfying:
        raise ValueError(
            "no valuation satisfies the query; marginals are undefined"
        )
    result: dict[Null, dict[Term, Fraction]] = {}
    for null in db.nulls:
        domain = sorted(db.domain_of(null), key=repr)
        pinned_total = total // len(domain)
        for value in domain:
            variable = encoding.choices.var(null, value)
            pinned = CNF(
                encoding.cnf.num_variables,
                list(encoding.cnf.clauses) + [(variable,)],
            )
            satisfying_pinned = pinned_total - count_models(pinned)
            result.setdefault(null, {})[value] = Fraction(
                satisfying_pinned, satisfying
            )
    return result


# ---------------------------------------------------------------------------
# explain reports
# ---------------------------------------------------------------------------


@dataclass
class LineageReport:
    """Size and difficulty statistics of one lineage compilation."""

    mode: str
    count: int
    num_variables: int
    num_clauses: int
    heuristic_width: int | None
    cache_entries: int
    components_split: int
    circuit_nodes: int | None = None
    circuit_edges: int | None = None


def explain_valuations(
    db: IncompleteDatabase, query: BooleanQuery
) -> LineageReport:
    """Run the ``#Val`` backend and report what the counter saw."""
    encoding = compile_valuation_cnf(db, query)
    counter = ModelCounter(encoding.cnf)
    count = encoding.count_from_models(counter.count())
    return _report("val", count, encoding.cnf, counter)


def explain_completions(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> LineageReport:
    """Run the ``#Comp`` backend and report what the counter saw."""
    encoding = compile_completion_cnf(db, query)
    counter = ModelCounter(encoding.cnf, projection=encoding.projection)
    return _report("comp", counter.count(), encoding.cnf, counter)


def explain_valuations_circuit(
    db: IncompleteDatabase, query: BooleanQuery
) -> tuple[LineageReport, ValuationCircuit]:
    """Compile the circuit pipeline and report both search and circuit."""
    compiled = ValuationCircuit(db, query)
    report = LineageReport(
        mode="val",
        count=compiled.count(),
        num_variables=compiled.circuit.num_variables,
        num_clauses=compiled.num_clauses,
        heuristic_width=compiled.heuristic_width,
        cache_entries=compiled.cache_entries,
        components_split=compiled.components_split,
        circuit_nodes=compiled.circuit.num_nodes,
        circuit_edges=compiled.circuit.num_edges,
    )
    return report, compiled


def _report(mode, count, cnf, counter) -> LineageReport:
    stats = counter.stats()
    return LineageReport(
        mode=mode,
        count=count,
        num_variables=cnf.num_variables,
        num_clauses=len(cnf),
        heuristic_width=stats["width"],
        cache_entries=stats["cache_entries"],
        components_split=stats["components_split"],
    )


__all__ = [
    "artifact_from_bytes",
    "count_valuations_lineage",
    "count_completions_lineage",
    "count_valuations_circuit",
    "count_completions_circuit",
    "ValuationCircuit",
    "CompletionCircuit",
    "valuation_marginals",
    "valuation_marginals_recount",
    "explain_valuations",
    "explain_completions",
    "explain_valuations_circuit",
    "LineageReport",
    "lineage_supports",
]
