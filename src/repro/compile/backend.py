"""Counting backends over the lineage pipeline: search once or compile once.

Two families of entry points live here:

* the **lineage** backend (``method='lineage'`` in
  :mod:`repro.exact.dispatch`): compile the instance to CNF
  (:mod:`repro.compile.encode`) and run the decomposition-based exact
  counter (:mod:`repro.compile.sharpsat`) — one search per question;
* the **circuit** backend (``method='circuit'``): run the same search
  *once* with trace recording, keep the resulting d-DNNF circuit
  (:mod:`repro.compile.circuit`), and answer every further question about
  the same ``(D, q)`` — uniform counts, weighted counts for non-uniform
  null distributions, per-null marginals, exact valuation samples — by
  linear passes over the circuit.  :class:`ValuationCircuit` and
  :class:`CompletionCircuit` are the compiled artifacts the batch engine
  caches by instance fingerprint.

Either way the cost of the hard part is exponential only in the
(heuristic) treewidth of the lineage, not in the number of nulls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.complexity.cnf import CNF
from repro.compile.circuit import (
    KIND_DECISION,
    KIND_FALSE,
    KIND_PRODUCT,
    KIND_TRUE,
    CircuitSampler,
    DDNNF,
    draw_index,
)
from repro.compile.ddnnf_trace import TraceBuilder
from repro.compile.encode import (
    compile_completion_cnf,
    compile_valuation_cnf,
)
from repro.compile.lineage import (
    clause_components,
    component_key,
    lineage_supports,
)
from repro.compile.serialize import (
    CircuitFormatError,
    Reader,
    Writer,
    dumps_circuit,
    frame,
    loads_circuit,
    unframe,
)
from repro.compile.sharpsat import ModelCounter, count_models
from repro.compile.variables import ChoiceVariables, FactVariables
from repro.core.query import BooleanQuery
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term
from repro.db.valuation import (
    NullWeights,
    count_total_valuations,
    resolve_null_weights,
)
from repro.obs import incr as _incr, span as _span

#: Frame magics of the two wrapper artifacts (see ``to_bytes``).
VALUATION_MAGIC = b"RVAL"
COMPLETION_MAGIC = b"RCMP"


def _write_optional_uint(writer: Writer, value: int | None) -> None:
    writer.uint(0 if value is None else value + 1)


def _read_optional_uint(reader: Reader) -> int | None:
    encoded = reader.uint()
    return None if encoded == 0 else encoded - 1


def count_valuations_lineage(
    db: IncompleteDatabase, query: BooleanQuery
) -> int:
    """``#Val(q)(D)`` via lineage compilation and exact model counting."""
    encoding = compile_valuation_cnf(db, query)
    if encoding.total_valuations == 0:
        return 0
    return encoding.count_from_models(count_models(encoding.cnf))


def count_completions_lineage(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> int:
    """``#Comp(q)(D)`` via the canonical-fact encoding and projected
    exact model counting (``query=None`` counts all completions)."""
    encoding = compile_completion_cnf(db, query)
    return count_models(encoding.cnf, projection=encoding.projection)


# ---------------------------------------------------------------------------
# compiled circuits: one search, many questions
# ---------------------------------------------------------------------------


class _ChoiceView:
    """Choice map of a delta-derived instance.

    A conditioned circuit keeps the *parent's* variable universe, so the
    child's surviving ``(null, value)`` pairs must keep the parent's
    variable ids.  This view exposes exactly the
    :class:`~repro.compile.variables.ChoiceVariables` surface the circuit
    passes use (``items`` / ``var`` / ``variables`` / ``decode``) over
    that restricted pair set.
    """

    __slots__ = ("_vars", "_pairs")

    def __init__(self, pairs: Mapping[tuple[Null, Term], int]) -> None:
        self._vars = dict(pairs)
        self._pairs = sorted(self._vars.items(), key=lambda item: item[1])

    @classmethod
    def from_parent(
        cls, parent_choices, child_db: IncompleteDatabase
    ) -> "_ChoiceView":
        pairs = {}
        for null in child_db.nulls:
            for value in child_db.domain_of(null):
                pairs[(null, value)] = parent_choices.var(null, value)
        return cls(pairs)

    def var(self, null: Null, value: Term) -> int:
        return self._vars[(null, value)]

    def items(self) -> list[tuple[tuple[Null, Term], int]]:
        return list(self._pairs)

    def variables(self) -> list[int]:
        return [variable for _pair, variable in self._pairs]

    def decode(self, variable: int) -> tuple[Null, Term]:
        for pair, known in self._pairs:
            if known == variable:
                return pair
        raise KeyError("variable %d is not a choice variable" % variable)

    def __len__(self) -> int:
        return len(self._vars)


class ValuationCircuit:
    """A compiled ``(D, q)``: every ``#Val``-flavored question in circuit passes.

    Construction runs the *complement* encoding
    (:func:`~repro.compile.encode.compile_valuation_cnf`) through the
    trace-recording model counter once.  The recorded d-DNNF's models are
    the valuations **falsifying** the query — the encoding with the
    lineage's own treewidth, which is what keeps compilation tractable
    (the positive witness encoding couples everything through one global
    disjunction and defeats component decomposition).  Every question is
    then answered against the complement, exactly:

    * :meth:`count` — ``total - circuit.count()``, bit for bit what
      ``method='lineage'`` computes (same counter, same CNF);
    * :meth:`weighted_count` — the weighted total factorizes as
      ``prod_⊥ sum_c w(⊥, c)``, the falsifying mass is one weighted
      upward pass;
    * :meth:`marginals` — pinned totals factorize the same way, and one
      downward pass yields the falsifying mass of *every* ``(⊥, c)``
      pair at once;
    * :meth:`sample_valuation` — exact samples by iterated conditioning
      (chain rule): pin one null per marginal pass, ``k`` linear passes
      per sample, no rejection and no re-search.  (Top-down *descent*
      would sample the circuit's own models — the falsifying
      valuations — which is the wrong side of the complement.)
    """

    def __init__(
        self,
        db: IncompleteDatabase,
        query: BooleanQuery,
        reference: bool = False,
    ) -> None:
        with _span("compile.encode", mode="val"):
            encoding = compile_valuation_cnf(db, query)
        trace = TraceBuilder()
        counter = ModelCounter(encoding.cnf, trace=trace, reference=reference)
        self._falsifying = counter.count()
        assert counter.trace_root is not None
        with _span("compile.trace_build"):
            self.circuit = trace.build(
                counter.trace_root, encoding.cnf.num_variables
            )
        self._db = db
        self._choices = encoding.choices
        self.total_valuations = encoding.total_valuations
        self._count = encoding.count_from_models(self._falsifying)
        self.num_matches = encoding.num_matches
        self.num_clauses = len(encoding.cnf)
        stats = counter.stats()
        self.heuristic_width = stats["width"]
        self.cache_entries = stats["cache_entries"]
        self.components_split = stats["components_split"]
        self._wire_bytes: int | None = None

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """The artifact as a versioned binary payload.

        Only process-independent state travels: the d-DNNF node table and
        the scalar compile statistics.  The choice-variable map is *not*
        serialized — :meth:`from_bytes` rebuilds it deterministically from
        the instance, which keeps the format free of pickled objects.
        """
        writer = Writer()
        writer.uint(self._count)
        writer.uint(self.total_valuations)
        writer.uint(self.num_matches)
        writer.uint(self.num_clauses)
        _write_optional_uint(writer, self.heuristic_width)
        writer.uint(self.cache_entries)
        writer.uint(self.components_split)
        with _span("compile.serialize", nodes=self.circuit.num_nodes):
            writer.blob(dumps_circuit(self.circuit))
        return frame(VALUATION_MAGIC, writer.getvalue())

    @classmethod
    def from_bytes(
        cls, data: bytes, db: IncompleteDatabase
    ) -> "ValuationCircuit":
        """Rehydrate an artifact compiled (possibly elsewhere) for ``db``.

        The choice-variable map is reconstructed from ``db`` — variable
        allocation is deterministic (nulls in database order, domain
        values sorted), so the rebuilt map names exactly the variables the
        serialized circuit was compiled over; the variable-count check
        below rejects an artifact paired with the wrong database.  Raises
        :class:`~repro.compile.serialize.CircuitFormatError` on version
        mismatch, corruption, or an instance mismatch.
        """
        reader = Reader(unframe(data, VALUATION_MAGIC))
        count = reader.uint()
        total_valuations = reader.uint()
        num_matches = reader.uint()
        num_clauses = reader.uint()
        heuristic_width = _read_optional_uint(reader)
        cache_entries = reader.uint()
        components_split = reader.uint()
        circuit = loads_circuit(reader.blob())
        reader.expect_end()

        cnf = CNF()
        choices = ChoiceVariables(cnf, db)
        # The complement encoding allocates choice variables only, so the
        # circuit's variable universe must be exactly the rebuilt map's.
        if circuit.num_variables != cnf.num_variables:
            raise CircuitFormatError(
                "artifact has %d variables but the database allocates %d "
                "choice variables — wrong instance for this payload"
                % (circuit.num_variables, cnf.num_variables)
            )
        if total_valuations != count_total_valuations(db):
            raise CircuitFormatError(
                "artifact total valuation count does not match the database"
            )
        compiled = cls.__new__(cls)
        compiled._falsifying = total_valuations - count
        compiled.circuit = circuit
        compiled._db = db
        compiled._choices = choices
        compiled.total_valuations = total_valuations
        compiled._count = count
        compiled.num_matches = num_matches
        compiled.num_clauses = num_clauses
        compiled.heuristic_width = heuristic_width
        compiled.cache_entries = cache_entries
        compiled.components_split = components_split
        compiled._wire_bytes = len(data)
        return compiled

    # -- deltas ------------------------------------------------------------

    def condition(self, delta) -> "ValuationCircuit":
        """The circuit of ``db.apply(delta)`` for a resolution-only delta.

        Resolving a null pins its choice-variable block (the chosen
        value's variable true, its siblings false); restricting a domain
        pins the removed values' variables false.  Either way the child
        circuit is one linear rewrite of the parent program
        (:meth:`DDNNF.condition <repro.compile.circuit.DDNNF.condition>`)
        — no lineage enumeration, no CNF, no search — and every answer
        (count, weighted counts, marginals, samples) is bit-identical to
        compiling the updated instance from scratch.

        Insert/delete deltas change the clause set itself; use
        :meth:`compile_componentwise` for those.  Raises
        :class:`ValueError` on a non-resolution delta or an invalid one
        (unknown null, value outside the domain).
        """
        from repro.db.deltas import ResolveNull, RestrictDomain

        child = self._db.apply(delta)  # validates the delta
        assignments: dict[int, bool] = {}
        if isinstance(delta, ResolveNull):
            for (null, value), variable in self._choices.items():
                if null == delta.null:
                    assignments[variable] = value == delta.value
        elif isinstance(delta, RestrictDomain):
            for (null, value), variable in self._choices.items():
                if null == delta.null and value not in delta.values:
                    assignments[variable] = False
        else:
            raise ValueError(
                "condition() handles resolution-only deltas; %s changes "
                "the clause set — recompile via compile_componentwise()"
                % type(delta).__name__
            )
        with _span(
            "delta.condition",
            kind=type(delta).__name__,
            pinned=len(assignments),
        ):
            conditioned = self.circuit.condition(assignments)
            derived = ValuationCircuit.__new__(ValuationCircuit)
            derived._falsifying = conditioned.count()
        _incr("delta.conditioning_passes")
        derived.circuit = conditioned
        derived._db = child
        derived._choices = _ChoiceView.from_parent(self._choices, child)
        derived.total_valuations = count_total_valuations(child)
        derived._count = derived.total_valuations - derived._falsifying
        derived.num_matches = self.num_matches
        derived.num_clauses = self.num_clauses
        derived.heuristic_width = self.heuristic_width
        derived.cache_entries = self.cache_entries
        derived.components_split = self.components_split
        derived._wire_bytes = None
        return derived

    @classmethod
    def compile_componentwise(
        cls,
        db: IncompleteDatabase,
        query: BooleanQuery,
        components=None,
    ) -> "ValuationCircuit":
        """Compile by independent lineage components, reusing cached ones.

        Model counts multiply across variable-disjoint CNF components, so
        each component compiles on its own and the sub-circuits splice
        under one product root — same answers as the monolithic
        constructor, bit for bit.  ``components`` is an optional
        component store (``get_component`` / ``put_component``; the
        engine passes its :class:`~repro.engine.cache.CountCache`): an
        insert/delete delta invalidates only the components whose
        clauses changed, every other sub-DAG is a cache hit.
        """
        with _span("compile.encode", mode="val"):
            encoding = compile_valuation_cnf(db, query)
        circuit, falsifying, stats = _compile_cnf_components(
            encoding.cnf, None, "val", components
        )
        compiled = cls.__new__(cls)
        compiled._falsifying = falsifying
        compiled.circuit = circuit
        compiled._db = db
        compiled._choices = encoding.choices
        compiled.total_valuations = encoding.total_valuations
        compiled._count = encoding.count_from_models(falsifying)
        compiled.num_matches = encoding.num_matches
        compiled.num_clauses = len(encoding.cnf)
        compiled.heuristic_width = stats["width"]
        compiled.cache_entries = stats["cache_entries"]
        compiled.components_split = stats["components_split"]
        compiled._wire_bytes = None
        return compiled

    # -- questions ---------------------------------------------------------

    def count(self) -> int:
        """``#Val(q)(D)`` — exact, big-int."""
        return self._count

    def weighted_count(self, weights: NullWeights | None = None):
        """Weighted ``#Val``: each satisfying valuation counts its product
        of per-null value weights (see
        :func:`repro.db.valuation.resolve_null_weights` for the weight
        table conventions).  Exact for int/Fraction weights; equals
        :meth:`count` under ``weights=None``."""
        resolved = resolve_null_weights(self._db, weights)
        if self.total_valuations == 0:
            return 0
        return self._weighted_satisfying(resolved)

    def marginals(
        self, weights: NullWeights | None = None
    ) -> dict[Null, dict[Term, Fraction]]:
        """``P[ν(⊥) = c | ν(D) |= q]`` for every null ``⊥`` and value ``c``.

        One upward and one downward circuit pass produce all pairs at
        once — this replaces conditioning the counter on ``⊥ = c`` and
        re-running the search per value.  Probabilities are exact
        :class:`~fractions.Fraction` values under the (possibly weighted)
        valuation distribution; raises :class:`ValueError` when no
        valuation satisfies the query.
        """
        resolved = resolve_null_weights(self._db, weights)
        return self._marginal_table(*self._satisfying_pair_masses(resolved))

    def _marginal_table(
        self, satisfying, pair_counts
    ) -> dict[Null, dict[Term, Fraction]]:
        if not satisfying:
            raise ValueError(
                "no satisfying valuation has nonzero weight; "
                "marginals are undefined"
            )
        table: dict[Null, dict[Term, Fraction]] = {}
        for (null, value), _variable in self._choices.items():
            table.setdefault(null, {})[value] = Fraction(
                pair_counts[(null, value)]
            ) / Fraction(satisfying)
        return table

    def weighted_count_many(
        self, weight_rows: Sequence[NullWeights | None]
    ) -> list:
        """:meth:`weighted_count` for N weight tables in one batched pass.

        Exactly ``[self.weighted_count(row) for row in weight_rows]`` —
        the circuit's upward pass runs once with length-N columns
        (:meth:`~repro.compile.circuit.DDNNF.evaluate_many`) instead of
        once per table.
        """
        resolved_rows = [
            resolve_null_weights(self._db, row) for row in weight_rows
        ]
        if not resolved_rows:
            return []
        if self.total_valuations == 0:
            return [0] * len(resolved_rows)
        falsifying = self.circuit.evaluate_many(
            [self._variable_weights(resolved) for resolved in resolved_rows]
        )
        return [
            self._weighted_total(resolved) - mass
            for resolved, mass in zip(resolved_rows, falsifying)
        ]

    def marginals_many(
        self, weight_rows: Sequence[NullWeights | None]
    ) -> list[dict[Null, dict[Term, Fraction]]]:
        """:meth:`marginals` for N weight tables in one batched pass.

        One batched upward+downward sweep
        (:meth:`~repro.compile.circuit.DDNNF.literal_counts_many`)
        replaces the per-table pass loop; each returned table equals the
        scalar result exactly.
        """
        resolved_rows = [
            resolve_null_weights(self._db, row) for row in weight_rows
        ]
        if not resolved_rows:
            return []
        counts_rows = self.circuit.literal_counts_many(
            [self._variable_weights(resolved) for resolved in resolved_rows]
        )
        return [
            self._marginal_table(
                *self._pair_masses_from_counts(resolved, counts)
            )
            for resolved, counts in zip(resolved_rows, counts_rows)
        ]

    def sample_valuation(
        self,
        rng: random.Random | None = None,
        seed: int | None = None,
        weights: NullWeights | None = None,
    ) -> dict[Null, Term]:
        """One satisfying valuation, drawn exactly (uniform by default,
        or proportional to its weight product) by iterated conditioning:
        each null is pinned from its conditional marginal given the pins
        so far — ``k`` linear passes, never a rejection.  Raises
        :class:`ValueError` when the query is unsatisfiable."""
        if rng is None:
            rng = random.Random(seed)
        resolved = resolve_null_weights(self._db, weights)
        if not self._db.nulls:
            if self._count == 0:
                raise ValueError(
                    "no satisfying valuation has nonzero weight; "
                    "nothing to sample"
                )
            return {}
        pinned: dict[Null, Term] = {}
        live = {null: dict(table) for null, table in resolved.items()}
        for null in self._db.nulls:
            _satisfying, pair_counts = self._satisfying_pair_masses(live)
            values = sorted(live[null], key=repr)
            masses = [pair_counts[(null, value)] for value in values]
            if not sum(masses):
                # Only possible at the first null (conditioning preserves
                # positive mass), i.e. the whole satisfying set has zero
                # weight — the check rides the pass that was needed
                # anyway instead of costing a pass of its own.
                raise ValueError(
                    "no satisfying valuation has nonzero weight; "
                    "nothing to sample"
                )
            choice = values[draw_index(rng, masses)]
            pinned[null] = choice
            live[null] = {choice: resolved[null][choice]}
        return pinned

    # -- complement arithmetic ---------------------------------------------

    def _variable_weights(self, resolved: dict) -> dict:
        """Per-variable ``(true, false)`` weights from per-null tables.

        A model sets exactly one choice variable per null (values a table
        omits are conditioned away with weight 0), so giving the *true*
        polarity the null-value weight and every *false* polarity weight 1
        makes the model's weight the valuation's product.
        """
        table = {}
        for (null, value), variable in self._choices.items():
            table[variable] = (resolved[null].get(value, 0), 1)
        return table

    def _weighted_total(self, resolved: dict):
        total: object = 1
        for null in self._db.nulls:
            total = total * sum(resolved[null].values())  # type: ignore[operator]
        return total

    def _weighted_satisfying(self, resolved: dict):
        """Weighted mass of the satisfying valuations: total - falsifying."""
        falsifying = self.circuit.evaluate(self._variable_weights(resolved))
        return self._weighted_total(resolved) - falsifying

    def _satisfying_pair_masses(self, resolved: dict) -> tuple:
        """``(satisfying total, (null, value) -> weighted mass of
        satisfying valuations with ν(null) = value)``, in two passes.

        The pinned total factorizes (``w(⊥, c) · prod_others sum``); the
        falsifying share of the pin is the literal count of the pair's
        choice variable in the complement circuit.  The satisfying total
        rides the same pass: smoothness gives the falsifying total as
        ``counts[v] + counts[-v]`` of any choice variable, so no separate
        upward evaluation is needed.
        """
        counts = self.circuit.literal_counts(self._variable_weights(resolved))
        return self._pair_masses_from_counts(resolved, counts)

    def _pair_masses_from_counts(self, resolved: dict, counts: dict) -> tuple:
        """The pair-mass arithmetic of :meth:`_satisfying_pair_masses`
        applied to an already-computed literal-count table (which is how
        the batched pass shares one sweep across N weight rows)."""
        totals = {
            null: sum(resolved[null].values()) for null in self._db.nulls
        }
        grand = self._weighted_total(resolved)
        pairs = self._choices.items()
        if pairs:
            _pair, any_variable = pairs[0]
            falsifying = counts[any_variable] + counts[-any_variable]
        else:  # ground database: the circuit is a constant
            falsifying = self.circuit.evaluate(None)
        masses = {}
        for (null, value), variable in pairs:
            weight = resolved[null].get(value, 0)
            if not weight:
                masses[(null, value)] = 0
                continue
            if isinstance(grand, int) and isinstance(totals[null], int):
                # grand is the product of the totals, so this is exact.
                pinned_total = grand // totals[null] * weight
            else:
                pinned_total = grand * weight / totals[null]
            masses[(null, value)] = pinned_total - counts[variable]
        return grand - falsifying, masses

    @property
    def wire_bytes(self) -> int | None:
        """Exact serialized size when the artifact crossed the wire."""
        return self._wire_bytes

    def memory_bytes(self) -> int:
        """Resident size for cache accounting (circuit dominates).

        The structural estimate is used for every circuit — a rehydrated
        artifact occupies the same Python object graph as a local compile,
        so accounting stays symmetric; the (smaller) wire size only ever
        raises the figure, never lowers it.
        """
        estimate = self.circuit.memory_bytes() + 512
        if self._wire_bytes is not None and self._wire_bytes > estimate:
            return self._wire_bytes
        return estimate

    def __repr__(self) -> str:
        return "ValuationCircuit(count=%d, %r)" % (self._count, self.circuit)


class CompletionCircuit:
    """A compiled ``#Comp`` instance: the canonical-fact encoding's trace.

    The projected models of the recorded circuit are the completions of
    ``D`` (satisfying ``q`` when one was given), so beyond the exact
    :meth:`count` the circuit also answers per-fact membership marginals
    and samples completions uniformly — the completion-side analogues of
    the :class:`ValuationCircuit` passes.
    """

    def __init__(
        self,
        db: IncompleteDatabase,
        query: BooleanQuery | None = None,
        reference: bool = False,
    ) -> None:
        with _span("compile.encode", mode="comp"):
            encoding = compile_completion_cnf(db, query)
        trace = TraceBuilder()
        counter = ModelCounter(
            encoding.cnf,
            projection=encoding.projection,
            trace=trace,
            reference=reference,
        )
        self._count = counter.count()
        assert counter.trace_root is not None
        with _span("compile.trace_build"):
            self.circuit = trace.build(
                counter.trace_root,
                encoding.cnf.num_variables,
                countable=encoding.projection,
            )
        self._facts = encoding.facts
        self.num_clauses = len(encoding.cnf)
        stats = counter.stats()
        self.heuristic_width = stats["width"]
        self.cache_entries = stats["cache_entries"]
        self.components_split = stats["components_split"]
        self._sampler_cache: CircuitSampler | None = None
        self._wire_bytes: int | None = None

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """The artifact as a versioned binary payload (see
        :meth:`ValuationCircuit.to_bytes` for the design)."""
        writer = Writer()
        writer.uint(self._count)
        writer.uint(self.num_clauses)
        _write_optional_uint(writer, self.heuristic_width)
        writer.uint(self.cache_entries)
        writer.uint(self.components_split)
        with _span("compile.serialize", nodes=self.circuit.num_nodes):
            writer.blob(dumps_circuit(self.circuit))
        return frame(COMPLETION_MAGIC, writer.getvalue())

    @classmethod
    def from_bytes(
        cls, data: bytes, db: IncompleteDatabase
    ) -> "CompletionCircuit":
        """Rehydrate an artifact compiled (possibly elsewhere) for ``db``.

        The fact-variable map is rebuilt deterministically (choice
        variables first, then one variable per sorted potential fact,
        exactly as the encoder allocates them); the projection check
        rejects an artifact paired with the wrong database.
        """
        reader = Reader(unframe(data, COMPLETION_MAGIC))
        count = reader.uint()
        num_clauses = reader.uint()
        heuristic_width = _read_optional_uint(reader)
        cache_entries = reader.uint()
        components_split = reader.uint()
        circuit = loads_circuit(reader.blob())
        reader.expect_end()

        cnf = CNF()
        ChoiceVariables(cnf, db)  # allocates the choice block first
        facts = FactVariables(cnf, db)
        if circuit.countable != frozenset(facts.variables()):
            raise CircuitFormatError(
                "artifact projection does not match the database's "
                "potential facts — wrong instance for this payload"
            )
        compiled = cls.__new__(cls)
        compiled._count = count
        compiled.circuit = circuit
        compiled._facts = facts
        compiled.num_clauses = num_clauses
        compiled.heuristic_width = heuristic_width
        compiled.cache_entries = cache_entries
        compiled.components_split = components_split
        compiled._sampler_cache = None
        compiled._wire_bytes = len(data)
        return compiled

    # -- deltas ------------------------------------------------------------

    def condition_facts(
        self, assignments: "Mapping[Fact, bool]"
    ) -> "CompletionCircuit":
        """Pin potential facts in or out of the counted completions.

        A ``True`` fact is forced into every completion, a ``False`` one
        excluded — one linear conditioning rewrite over the projected
        circuit, answers identical to re-encoding with the pins as unit
        clauses.  (Database *deltas* for ``#Comp`` change the potential
        facts themselves and therefore recompile componentwise; this is
        the pure conditioning move that stays within one instance.)
        """
        pinned = {
            self._facts.var(fact): bool(value)
            for fact, value in assignments.items()
        }
        with _span("delta.condition", kind="facts", pinned=len(pinned)):
            conditioned = self.circuit.condition(pinned)
            derived = CompletionCircuit.__new__(CompletionCircuit)
            derived._count = conditioned.count()
        _incr("delta.conditioning_passes")
        derived.circuit = conditioned
        derived._facts = self._facts
        derived.num_clauses = self.num_clauses
        derived.heuristic_width = self.heuristic_width
        derived.cache_entries = self.cache_entries
        derived.components_split = self.components_split
        derived._sampler_cache = None
        derived._wire_bytes = None
        return derived

    @classmethod
    def compile_componentwise(
        cls,
        db: IncompleteDatabase,
        query: BooleanQuery | None = None,
        components=None,
    ) -> "CompletionCircuit":
        """Componentwise ``#Comp`` compile with component reuse (the
        insert/delete delta path); see
        :meth:`ValuationCircuit.compile_componentwise`.  Projected counts
        multiply across variable-disjoint components just like full
        counts, so the spliced circuit's answers match the monolithic
        compile exactly."""
        with _span("compile.encode", mode="comp"):
            encoding = compile_completion_cnf(db, query)
        circuit, count, stats = _compile_cnf_components(
            encoding.cnf, encoding.projection, "comp", components
        )
        compiled = cls.__new__(cls)
        compiled._count = count
        compiled.circuit = circuit
        compiled._facts = encoding.facts
        compiled.num_clauses = len(encoding.cnf)
        compiled.heuristic_width = stats["width"]
        compiled.cache_entries = stats["cache_entries"]
        compiled.components_split = stats["components_split"]
        compiled._sampler_cache = None
        compiled._wire_bytes = None
        return compiled

    def count(self) -> int:
        """``#Comp(q)(D)`` — exact, big-int."""
        return self._count

    def fact_marginals(self) -> dict[Fact, Fraction]:
        """``P[g ∈ C]`` for every potential fact ``g``, ``C`` uniform over
        the counted completions.  Raises :class:`ValueError` on a count of
        zero."""
        if not self._count:
            raise ValueError(
                "no completion satisfies the query; marginals are undefined"
            )
        counts = self.circuit.literal_counts()
        return {
            fact: Fraction(counts[self._facts.var(fact)], self._count)
            for fact in self._facts.facts()
        }

    def _fact_variable_weights(
        self, fact_weights: "Mapping[Fact, object] | None"
    ) -> dict:
        """Per-variable ``(present, absent)`` weights from a per-fact
        table: a listed fact weighs ``w`` when the completion contains it
        and ``1`` when it does not (unlisted facts always weigh 1)."""
        table = {}
        for fact, weight in (fact_weights or {}).items():
            table[self._facts.var(fact)] = (weight, 1)
        return table

    def weighted_count(
        self, fact_weights: "Mapping[Fact, object] | None" = None
    ):
        """Weighted ``#Comp``: each counted completion weighs the product
        of ``fact_weights[g]`` over the potential facts ``g`` it contains.
        Exact for int/Fraction weights; equals :meth:`count` when no
        weights are given."""
        return self.circuit.evaluate(self._fact_variable_weights(fact_weights))

    def weighted_count_many(
        self, fact_weight_rows: "Sequence[Mapping[Fact, object] | None]"
    ) -> list:
        """:meth:`weighted_count` for N per-fact tables in one batched
        upward pass over the projected circuit."""
        return self.circuit.evaluate_many(
            [self._fact_variable_weights(row) for row in fact_weight_rows]
        )

    def fact_marginals_many(
        self, fact_weight_rows: "Sequence[Mapping[Fact, object] | None]"
    ) -> list[dict[Fact, Fraction]]:
        """:meth:`fact_marginals` under each of N completion weightings at
        once (one batched upward+downward pass); each table is exact.
        Raises :class:`ValueError` for a row whose weighted total is 0."""
        counts_rows = self.circuit.literal_counts_many(
            [self._fact_variable_weights(row) for row in fact_weight_rows]
        )
        facts = self._facts.facts()
        tables: list[dict[Fact, Fraction]] = []
        for counts in counts_rows:
            if facts:
                anchor = self._facts.var(facts[0])
                # Smoothness: both polarities of any projected variable
                # sum to the row's weighted completion total.
                total = counts[anchor] + counts[-anchor]
            else:
                total = self._count
            if not total:
                raise ValueError(
                    "no completion has nonzero weight; "
                    "marginals are undefined"
                )
            tables.append({
                fact: Fraction(counts[self._facts.var(fact)])
                / Fraction(total)
                for fact in facts
            })
        return tables

    def sample_completion(
        self, rng: random.Random | None = None, seed: int | None = None
    ) -> frozenset[Fact]:
        """One completion, uniform over the counted completions."""
        if rng is None:
            rng = random.Random(seed)
        if self._sampler_cache is None:
            self._sampler_cache = self.circuit.sampler()
        assignment = self._sampler_cache.sample(rng)
        return frozenset(
            fact
            for fact in self._facts.facts()
            if assignment.get(self._facts.var(fact))
        )

    @property
    def wire_bytes(self) -> int | None:
        """Exact serialized size when the artifact crossed the wire."""
        return self._wire_bytes

    def memory_bytes(self) -> int:
        """Resident size for cache accounting (circuit dominates); see
        :meth:`ValuationCircuit.memory_bytes` for the symmetry rationale."""
        estimate = self.circuit.memory_bytes() + 512
        if self._wire_bytes is not None and self._wire_bytes > estimate:
            return self._wire_bytes
        return estimate

    def __repr__(self) -> str:
        return "CompletionCircuit(count=%d, %r)" % (self._count, self.circuit)


# ---------------------------------------------------------------------------
# componentwise compilation (the insert/delete delta path)
# ---------------------------------------------------------------------------


def _remap_component_program(
    code: Sequence[int],
    offsets: Sequence[int],
    variables: Sequence[int],
    node_base: int,
    out_code: list[int],
    out_offsets: list[int],
) -> None:
    """Append a component-local program to the global one.

    Local variable ``i + 1`` becomes ``variables[i]``; node ids shift by
    ``node_base``.  Children stay before parents, so the spliced program
    remains a valid topological flat circuit.
    """
    for offset in offsets:
        out_offsets.append(len(out_code))
        kind = code[offset]
        if kind == KIND_FALSE or kind == KIND_TRUE:
            out_code.append(kind)
        elif kind == KIND_PRODUCT:
            length = code[offset + 1]
            out_code.append(KIND_PRODUCT)
            out_code.append(length)
            out_code.extend(
                node_base + child
                for child in code[offset + 2:offset + 2 + length]
            )
        else:
            nbranches = code[offset + 1]
            out_code.append(KIND_DECISION)
            out_code.append(nbranches)
            cursor = offset + 2
            for _ in range(nbranches):
                nlits = code[cursor]
                cursor += 1
                out_code.append(nlits)
                for literal in code[cursor:cursor + nlits]:
                    variable = variables[abs(literal) - 1]
                    out_code.append(variable if literal > 0 else -variable)
                cursor += nlits
                nfree = code[cursor]
                cursor += 1
                out_code.append(nfree)
                for freed in code[cursor:cursor + nfree]:
                    out_code.append(variables[freed - 1])
                cursor += nfree
                out_code.append(node_base + code[cursor])
                cursor += 1


def _compile_cnf_components(
    cnf: CNF,
    projection,
    kind: str,
    components,
) -> tuple[DDNNF, int, dict]:
    """Compile a CNF one clause-component at a time and splice the parts.

    Returns ``(circuit, model_count, stats)``; the count is the (projected
    when ``projection`` is given) model count of the whole CNF, exact.
    ``components`` is an optional store with ``get_component`` /
    ``put_component`` keyed by :func:`~repro.compile.lineage.component_key`
    — components unchanged across database versions are reused without
    recompilation (counted on ``delta.components.reused``).
    """
    projection_set = None if projection is None else frozenset(projection)
    all_clauses = list(cnf.clauses)
    num_variables = cnf.num_variables
    if any(not clause for clause in all_clauses):
        # An empty clause makes the CNF unsatisfiable outright (the
        # trivially-true valuation encoding emits one); no component
        # structure survives it.
        circuit = DDNNF.from_program(
            [KIND_FALSE], [0], 0, num_variables,
            range(1, num_variables + 1)
            if projection_set is None else projection_set,
        )
        return circuit, 0, {
            "width": None, "cache_entries": 0, "components_split": 0,
        }
    with _span("delta.splice", mode=kind, clauses=len(all_clauses)):
        parts = clause_components(num_variables, all_clauses)
        code: list[int] = []
        offsets: list[int] = []
        roots: list[int] = []
        covered: set[int] = set()
        total = 1
        width: int | None = None
        cache_entries = 0
        reused = recompiled = 0
        get_component = getattr(components, "get_component", None)
        put_component = getattr(components, "put_component", None)
        for variables, clause_indices in parts:
            covered.update(variables)
            clauses = [all_clauses[index] for index in clause_indices]
            countable_globals = (
                () if projection_set is None
                else [v for v in variables if v in projection_set]
            )
            key = component_key(kind, variables, clauses, countable_globals)
            entry = get_component(key) if get_component is not None else None
            if entry is None:
                recompiled += 1
                local = {
                    variable: i + 1 for i, variable in enumerate(variables)
                }
                local_clauses = [
                    tuple(
                        (1 if literal > 0 else -1) * local[abs(literal)]
                        for literal in clause
                    )
                    for clause in clauses
                ]
                local_cnf = CNF(len(variables), local_clauses)
                local_projection = (
                    None if projection_set is None
                    else frozenset(local[v] for v in countable_globals)
                )
                trace = TraceBuilder()
                counter = ModelCounter(
                    local_cnf, projection=local_projection, trace=trace
                )
                local_count = counter.count()
                assert counter.trace_root is not None
                if local_projection is None:
                    local_circuit = trace.build(
                        counter.trace_root, local_cnf.num_variables
                    )
                else:
                    local_circuit = trace.build(
                        counter.trace_root,
                        local_cnf.num_variables,
                        countable=local_projection,
                    )
                stats = counter.stats()
                entry = {
                    "code": local_circuit._code,
                    "offsets": local_circuit._offsets,
                    "root": local_circuit.root,
                    "count": local_count,
                    "width": stats["width"],
                    "cache_entries": stats["cache_entries"],
                }
                if put_component is not None:
                    put_component(key, entry)
            else:
                reused += 1
            node_base = len(offsets)
            _remap_component_program(
                entry["code"], entry["offsets"], variables,
                node_base, code, offsets,
            )
            roots.append(node_base + entry["root"])
            total *= entry["count"]
            if entry["width"] is not None:
                width = (
                    entry["width"] if width is None
                    else max(width, entry["width"])
                )
            cache_entries += entry["cache_entries"]
        # Countable variables in no clause at all are unconstrained: each
        # doubles the count.  (Neither encoding produces them — choice
        # variables sit in exactly-one blocks, fact variables in image
        # clauses — but the splice stays correct if one ever appears.)
        uncovered = [
            variable
            for variable in range(1, num_variables + 1)
            if variable not in covered
            and (projection_set is None or variable in projection_set)
        ]
        if uncovered:
            offsets.append(len(code))
            code.append(KIND_TRUE)
            true_node = len(offsets) - 1
            offsets.append(len(code))
            code.extend(
                [KIND_DECISION, 1, 0, len(uncovered)]
                + uncovered + [true_node]
            )
            roots.append(len(offsets) - 1)
            total <<= len(uncovered)
        if not roots:
            offsets.append(len(code))
            code.append(KIND_TRUE)
            root = len(offsets) - 1
        elif len(roots) == 1:
            root = roots[0]
        else:
            offsets.append(len(code))
            code.append(KIND_PRODUCT)
            code.append(len(roots))
            code.extend(roots)
            root = len(offsets) - 1
        circuit = DDNNF.from_program(
            code, offsets, root, num_variables,
            range(1, num_variables + 1)
            if projection_set is None else projection_set,
        )
        circuit._count = total
    _incr("delta.components.reused", reused)
    _incr("delta.components.recompiled", recompiled)
    return circuit, total, {
        "width": width,
        "cache_entries": cache_entries,
        "components_split": len(parts),
    }


def count_valuations_delta(db: IncompleteDatabase, query: BooleanQuery) -> int:
    """``#Val(q)(D)`` for a delta-derived instance, from its parent.

    Resolution-only deltas compile the parent circuit and condition it;
    fact deltas recompile componentwise (where a component store — the
    engine cache — turns unchanged components into reuse).  Answers are
    bit-identical to a from-scratch count; raises :class:`ValueError`
    when ``db`` has no recorded provenance.
    """
    from repro.db.deltas import resolution_only

    parent = db.parent
    delta = db.delta
    if parent is None or delta is None:
        raise ValueError(
            "database has no delta provenance; build it via db.apply(delta)"
        )
    if resolution_only(delta):
        return ValuationCircuit(parent, query).condition(delta).count()
    return ValuationCircuit.compile_componentwise(db, query).count()


def count_completions_delta(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> int:
    """``#Comp(q)(D)`` for a delta-derived instance (componentwise
    recompile — completions range over *potential facts*, which every
    delta kind can change, so the circuit is respliced rather than
    conditioned).  Raises :class:`ValueError` without provenance."""
    if db.parent is None or db.delta is None:
        raise ValueError(
            "database has no delta provenance; build it via db.apply(delta)"
        )
    return CompletionCircuit.compile_componentwise(db, query).count()


def artifact_from_bytes(
    data: bytes, db: IncompleteDatabase
) -> "ValuationCircuit | CompletionCircuit":
    """Rehydrate a wrapper artifact of either kind, dispatched on magic.

    The engine uses this to install worker-compiled circuits without
    caring which problem family produced them.  Raises
    :class:`~repro.compile.serialize.CircuitFormatError` on anything that
    is not a trustworthy wrapper payload for ``db``.
    """
    if data[:4] == VALUATION_MAGIC:
        return ValuationCircuit.from_bytes(data, db)
    if data[:4] == COMPLETION_MAGIC:
        return CompletionCircuit.from_bytes(data, db)
    raise CircuitFormatError(
        "bad magic %r: not a circuit artifact" % (bytes(data[:4]),)
    )


def count_valuations_circuit(
    db: IncompleteDatabase, query: BooleanQuery
) -> int:
    """``#Val(q)(D)`` through the circuit pipeline (compile + one count)."""
    return ValuationCircuit(db, query).count()


def count_completions_circuit(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> int:
    """``#Comp(q)(D)`` through the circuit pipeline (compile + one count)."""
    return CompletionCircuit(db, query).count()


def valuation_marginals(
    db: IncompleteDatabase,
    query: BooleanQuery,
    weights: NullWeights | None = None,
) -> dict[Null, dict[Term, Fraction]]:
    """Per-null marginals of one instance (compiles a throwaway circuit).

    For repeated questions about the same instance build a
    :class:`ValuationCircuit` once instead.
    """
    return ValuationCircuit(db, query).marginals(weights)


def valuation_marginals_recount(
    db: IncompleteDatabase, query: BooleanQuery
) -> dict[Null, dict[Term, Fraction]]:
    """Reference marginals by conditioning and re-counting, per value.

    One full model-counting search per ``(null, value)`` pair — the loop
    the circuit passes replace.  Kept as the cross-validation oracle and
    the honest baseline for the amortization benchmark.
    """
    encoding = compile_valuation_cnf(db, query)
    total = encoding.total_valuations
    satisfying = total - count_models(encoding.cnf)
    if not satisfying:
        raise ValueError(
            "no valuation satisfies the query; marginals are undefined"
        )
    result: dict[Null, dict[Term, Fraction]] = {}
    for null in db.nulls:
        domain = sorted(db.domain_of(null), key=repr)
        pinned_total = total // len(domain)
        for value in domain:
            variable = encoding.choices.var(null, value)
            pinned = CNF(
                encoding.cnf.num_variables,
                list(encoding.cnf.clauses) + [(variable,)],
            )
            satisfying_pinned = pinned_total - count_models(pinned)
            result.setdefault(null, {})[value] = Fraction(
                satisfying_pinned, satisfying
            )
    return result


# ---------------------------------------------------------------------------
# explain reports
# ---------------------------------------------------------------------------


@dataclass
class LineageReport:
    """Size and difficulty statistics of one lineage compilation."""

    mode: str
    count: int
    num_variables: int
    num_clauses: int
    heuristic_width: int | None
    cache_entries: int
    components_split: int
    circuit_nodes: int | None = None
    circuit_edges: int | None = None


def explain_valuations(
    db: IncompleteDatabase, query: BooleanQuery
) -> LineageReport:
    """Run the ``#Val`` backend and report what the counter saw."""
    encoding = compile_valuation_cnf(db, query)
    counter = ModelCounter(encoding.cnf)
    count = encoding.count_from_models(counter.count())
    return _report("val", count, encoding.cnf, counter)


def explain_completions(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> LineageReport:
    """Run the ``#Comp`` backend and report what the counter saw."""
    encoding = compile_completion_cnf(db, query)
    counter = ModelCounter(encoding.cnf, projection=encoding.projection)
    return _report("comp", counter.count(), encoding.cnf, counter)


def explain_valuations_circuit(
    db: IncompleteDatabase, query: BooleanQuery
) -> tuple[LineageReport, ValuationCircuit]:
    """Compile the circuit pipeline and report both search and circuit."""
    compiled = ValuationCircuit(db, query)
    report = LineageReport(
        mode="val",
        count=compiled.count(),
        num_variables=compiled.circuit.num_variables,
        num_clauses=compiled.num_clauses,
        heuristic_width=compiled.heuristic_width,
        cache_entries=compiled.cache_entries,
        components_split=compiled.components_split,
        circuit_nodes=compiled.circuit.num_nodes,
        circuit_edges=compiled.circuit.num_edges,
    )
    return report, compiled


def _report(mode, count, cnf, counter) -> LineageReport:
    stats = counter.stats()
    return LineageReport(
        mode=mode,
        count=count,
        num_variables=cnf.num_variables,
        num_clauses=len(cnf),
        heuristic_width=stats["width"],
        cache_entries=stats["cache_entries"],
        components_split=stats["components_split"],
    )


__all__ = [
    "artifact_from_bytes",
    "count_valuations_lineage",
    "count_completions_lineage",
    "count_valuations_circuit",
    "count_completions_circuit",
    "count_valuations_delta",
    "count_completions_delta",
    "ValuationCircuit",
    "CompletionCircuit",
    "valuation_marginals",
    "valuation_marginals_recount",
    "explain_valuations",
    "explain_completions",
    "explain_valuations_circuit",
    "LineageReport",
    "lineage_supports",
]
