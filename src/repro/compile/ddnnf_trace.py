"""Recording a model-counting search as a d-DNNF circuit.

:class:`TraceBuilder` is the bridge between the exact counter
(:mod:`repro.compile.sharpsat`) and the circuit representation
(:mod:`repro.compile.circuit`): the counter calls one builder method per
search event —

* a **decision** (with its unit propagations and freed variables per
  surviving branch) becomes a deterministic sum node;
* a **component split** becomes a decomposable product node;
* a **component cache hit** reuses the node recorded at the cache *miss*,
  which is what folds the search tree into a DAG;
* the projected-mode **satisfiability leaf** becomes a constant.

The builder peepholes the obvious identities as it goes (true children
drop out of products, zero-valued branches drop out of sums, single-child
wrappers collapse), which never changes any pass's arithmetic result —
dropped terms are exact zeros or ones — but keeps circuits at the size of
the *useful* trace.  Nodes are emitted children-first **directly into the
flat int program** the circuit passes execute (see
:mod:`repro.compile.circuit`): the search's trail events stream into the
array as they happen, and :meth:`build` hands the finished program to
:class:`DDNNF` without ever materializing per-node tuples.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.compile.circuit import (
    DDNNF,
    KIND_DECISION,
    KIND_FALSE,
    KIND_PRODUCT,
    KIND_TRUE,
)


class TraceBuilder:
    """Accumulates trace events into the flat node program, children first.

    Node ids ``0`` and ``1`` are the shared false/true constants; every
    other id is returned by :meth:`decision` or :meth:`product`.  Call
    :meth:`build` once the search finished to freeze the circuit.
    """

    def __init__(self) -> None:
        self._code: list[int] = [KIND_FALSE, KIND_TRUE]
        self._offsets: list[int] = [0, 1]

    #: Node id of the constant false circuit.
    @property
    def false(self) -> int:
        return 0

    #: Node id of the constant true circuit.
    @property
    def true(self) -> int:
        return 1

    def constant(self, value: bool) -> int:
        """The constant node for a satisfiability-leaf verdict."""
        return 1 if value else 0

    def decision(
        self,
        branches: Iterable[tuple[Sequence[int], Sequence[int], int]],
    ) -> int:
        """A deterministic sum over ``(literals, freed variables, child)``.

        Branches whose child is the false constant contribute an exact
        zero and are dropped; a branch-free node collapses to false, and
        a single branch that forces nothing passes its child through.
        """
        kept = [
            (literals, free, child)
            for literals, free, child in branches
            if child != 0
        ]
        if not kept:
            return 0
        if len(kept) == 1 and not kept[0][0] and not kept[0][1]:
            return kept[0][2]
        code = self._code
        self._offsets.append(len(code))
        code.append(KIND_DECISION)
        code.append(len(kept))
        for literals, free, child in kept:
            code.append(len(literals))
            code.extend(literals)
            code.append(len(free))
            code.extend(free)
            code.append(child)
        return len(self._offsets) - 1

    def product(self, children: Iterable[int]) -> int:
        """A decomposable product of component sub-circuits.

        True children are identity factors and are dropped; any false
        child zeroes the product; an empty product is true.
        """
        kept = []
        for child in children:
            if child == 0:
                return 0
            if child != 1:
                kept.append(child)
        if not kept:
            return 1
        if len(kept) == 1:
            return kept[0]
        code = self._code
        self._offsets.append(len(code))
        code.append(KIND_PRODUCT)
        code.append(len(kept))
        code.extend(kept)
        return len(self._offsets) - 1

    def __len__(self) -> int:
        return len(self._offsets)

    def build(
        self,
        root: int,
        num_variables: int,
        countable: Iterable[int] | None = None,
    ) -> DDNNF:
        """Freeze the recorded trace into a :class:`DDNNF`.

        ``countable`` is the projection set of a projected search; ``None``
        means the circuit counts over all ``1..num_variables``.
        """
        if countable is None:
            countable = range(1, num_variables + 1)
        return DDNNF.from_program(
            self._code,
            self._offsets,
            root=root,
            num_variables=num_variables,
            countable=countable,
        )
