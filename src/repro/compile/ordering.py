"""Treewidth-style variable orderings for the model counter.

Decomposition-based counters are fast exactly when their branching order
follows a good tree decomposition of the formula's primal graph — this is
the driving idea of ``dpdb`` (Fichte, Hecher, Thier, Woltran: *Exploiting
Database Management Systems and Treewidth for Counting*), which feeds a
tree decomposition of the CNF into a dynamic program.  Two consumers sit
on top of the greedy eliminations computed here:

* the **trail core** branches in *reverse* elimination order, so the
  residual formula falls apart into the decomposition's subtrees, which
  the component cache then conquers independently;
* the **dpdb backend** (:mod:`repro.compile.decompose` /
  :mod:`repro.compile.dpdb`) turns the elimination *bags* — the
  neighborhoods each vertex had at elimination time — directly into a
  rooted tree decomposition and runs the join/project/sum DP over it.

Internally the greedy loop runs over **integer bitsets**: each vertex's
neighborhood is one Python int with bit ``v`` set for neighbor ``v``, so a
fill count is a handful of word-wide ``&``/``~`` operations plus
``int.bit_count`` instead of a quadratic pair loop over Python sets.  On
the formulas the lineage compiler emits this is the difference between the
ordering dominating a count and the ordering being noise next to the
search (the greedy *choices* are unchanged — same min-fill score, same
tie-break — only their cost).  The model counter hands its
occurrence-index-derived adjacency masks straight to
:func:`elimination_order_masks`, so the primal graph is built exactly once
per formula; :func:`primal_masks` additionally memoizes per CNF object so
the planner's width probe, :func:`branching_order` and the decomposer
share one primal-graph build.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Mapping

from repro.complexity.cnf import CNF

#: Above this many vertices min-fill's quadratic inner loop starts to hurt;
#: greedy min-degree is a standard cheaper surrogate.
MIN_FILL_VERTEX_LIMIT = 2_000

#: The two-phase orderings run cheap min-degree first and refine with
#: min-fill only when the min-degree width lands at or below this bound.
#: Both consumers are exponential in width (the search in its branching
#: width, the DP in its bag size), so where the width is small the
#: quadratic refinement is worth its price (a width shaved there can halve
#: the search or halve every DP table); where min-degree already reports a
#: large width the formula is either propagation-dominated or intractable
#: and min-fill is the bottleneck, not the width.
MIN_FILL_REFINE_WIDTH = 24


def primal_graph(cnf: CNF) -> dict[int, set[int]]:
    """Adjacency of the primal (Gaifman) graph of ``cnf``.

    Vertices are the variables occurring in at least one clause; two are
    adjacent when they co-occur in a clause.
    """
    adjacency: dict[int, set[int]] = {}
    for clause in cnf.clauses:
        variables = {abs(literal) for literal in clause}
        for variable in variables:
            adjacency.setdefault(variable, set()).update(
                variables - {variable}
            )
    return adjacency


#: Per-CNF memo of :func:`primal_masks`: ``cnf -> (num_clauses,
#: num_variables, masks)``.  The CNF class is an incremental builder, so
#: the entry is validated against the formula's current shape and rebuilt
#: when clauses were added since it was cached.  Weak keys keep the memo
#: from pinning formulas alive.
_PRIMAL_CACHE: "weakref.WeakKeyDictionary[CNF, tuple[int, int, dict[int, int]]]"
_PRIMAL_CACHE = weakref.WeakKeyDictionary()


def primal_masks(cnf: CNF) -> dict[int, int]:
    """The primal graph as ``variable -> neighborhood bitset``.

    One pass over the clause list: every clause contributes its variable
    bitset to each member's adjacency mask (self-bits cleared at the end).
    This is the mask form :func:`elimination_order_masks` consumes.

    The result is memoized per CNF object (invalidated when the clause or
    variable count changes), so the planner's width probe,
    :func:`branching_order` and the dpdb decomposer all share one build.
    Callers must treat the returned dict as read-only.
    """
    cached = _PRIMAL_CACHE.get(cnf)
    if cached is not None:
        num_clauses, num_variables, masks = cached
        if num_clauses == len(cnf) and num_variables == cnf.num_variables:
            return masks
    masks = _primal_masks_uncached(cnf)
    try:
        _PRIMAL_CACHE[cnf] = (len(cnf), cnf.num_variables, masks)
    except TypeError:  # pragma: no cover - CNF subclasses without weakrefs
        pass
    return masks


def _primal_masks_uncached(cnf: CNF) -> dict[int, int]:
    masks: dict[int, int] = {}
    for clause in cnf.clauses:
        clause_mask = 0
        for literal in clause:
            clause_mask |= 1 << (literal if literal > 0 else -literal)
        variable_mask = clause_mask
        while variable_mask:
            low = variable_mask & -variable_mask
            variable = low.bit_length() - 1
            masks[variable] = masks.get(variable, 0) | clause_mask
            variable_mask ^= low
    for variable in masks:
        masks[variable] &= ~(1 << variable)
    return masks


def _greedy_eliminate(
    masks: Mapping[int, int],
    use_min_fill: bool,
    delay: int,
    collect_bags: bool,
) -> tuple[list[int], int, list[int]]:
    """The one greedy elimination loop behind every public ordering.

    Returns ``(order, width, bags)`` where ``bags[i]`` is the bitset of
    ``order[i]`` plus its (fill-graph) neighbors alive at elimination time
    — exactly the bag the elimination induces in the tree decomposition —
    or ``[]`` when ``collect_bags`` is false.  Vertices whose bit is set
    in ``delay`` are only eligible once no other vertex remains, which
    forces them into the *late* (root-side) bags; the projected DP uses
    this to keep the projection variables above every auxiliary variable.
    """
    adjacency = dict(masks)

    alive = 0
    for vertex in adjacency:
        alive |= 1 << vertex

    order: list[int] = []
    bags: list[int] = []
    width = 0
    while adjacency:
        eager_only = bool(alive & ~delay)
        best_vertex = -1
        best_score = None
        for vertex in adjacency:
            if eager_only and (delay >> vertex) & 1:
                continue
            neighbors = adjacency[vertex] & alive
            if use_min_fill:
                score = 0
                remaining = neighbors
                while remaining:
                    low = remaining & -remaining
                    u = low.bit_length() - 1
                    remaining ^= low
                    # neighbors of `vertex` that u is not adjacent to
                    # (counted once per unordered pair: only bits above u)
                    score += (remaining & ~adjacency[u]).bit_count()
            else:
                score = neighbors.bit_count()
            if best_score is None or (score, vertex) < (best_score, best_vertex):
                best_score, best_vertex = score, vertex
        neighbors = adjacency.pop(best_vertex) & alive
        alive &= ~(1 << best_vertex)
        order.append(best_vertex)
        if collect_bags:
            bags.append(neighbors | (1 << best_vertex))
        width = max(width, neighbors.bit_count())
        remaining = neighbors
        while remaining:
            low = remaining & -remaining
            u = low.bit_length() - 1
            remaining ^= low
            adjacency[u] = (adjacency[u] | neighbors) & ~low
    return order, width, bags


def elimination_order_masks(
    masks: Mapping[int, int],
    use_min_fill: bool | None = None,
) -> tuple[list[int], int]:
    """Greedy elimination ordering over adjacency bitsets.

    Semantics match :func:`elimination_order` exactly — min-fill score
    (min-degree beyond :data:`MIN_FILL_VERTEX_LIMIT` vertices), ties broken
    by vertex index, neighborhoods turned into cliques on elimination —
    computed with ``&``/``|``/``bit_count`` instead of set algebra.
    Returns ``(order, width)``.
    """
    if use_min_fill is None:
        use_min_fill = len(masks) <= MIN_FILL_VERTEX_LIMIT
    order, width, _ = _greedy_eliminate(
        masks, use_min_fill, delay=0, collect_bags=False
    )
    return order, width


def elimination_bags_masks(
    masks: Mapping[int, int],
    use_min_fill: bool | None = None,
    delay: int = 0,
) -> tuple[list[int], int, list[int]]:
    """:func:`elimination_order_masks` keeping the bags it already computes.

    ``bags[i]`` is the bitset bag of ``order[i]`` (the vertex plus its
    fill-graph neighborhood at elimination time); the greedy loop always
    had these in hand and used to discard them.  ``delay`` restricts the
    greedy choice to non-delayed vertices while any remain (see
    :func:`_greedy_eliminate`).
    """
    if use_min_fill is None:
        use_min_fill = len(masks) <= MIN_FILL_VERTEX_LIMIT
    return _greedy_eliminate(masks, use_min_fill, delay=delay, collect_bags=True)


def refined_elimination_masks(
    masks: Mapping[int, int], delay: int = 0
) -> tuple[list[int], int, list[int]]:
    """The two-phase elimination both consumers share, with bags.

    Min-degree first (linear-ish, and its width is a usable difficulty
    estimate), then a min-fill refinement only where the width is small
    enough for the refinement to matter (:data:`MIN_FILL_REFINE_WIDTH`);
    the better of the two widths wins.  This is the policy behind
    :func:`branching_order` and the dpdb width probe, so the width the
    planner quotes is the width the decomposition actually gets.
    """
    order, width, bags = _greedy_eliminate(
        masks, use_min_fill=False, delay=delay, collect_bags=True
    )
    if width <= MIN_FILL_REFINE_WIDTH and len(masks) <= MIN_FILL_VERTEX_LIMIT:
        fill_order, fill_width, fill_bags = _greedy_eliminate(
            masks, use_min_fill=True, delay=delay, collect_bags=True
        )
        if fill_width < width:
            order, width, bags = fill_order, fill_width, fill_bags
    return order, width, bags


def elimination_width(cnf: CNF, delay: int = 0) -> int:
    """Width of the two-phase greedy elimination of ``cnf``'s primal graph.

    The cheap width probe: an upper bound on the treewidth (exact on the
    instances the greedy handles well), computed from the memoized
    :func:`primal_masks` without materializing the decomposition.  This is
    the number the planner quotes when deciding for or against ``dpdb``.
    """
    _, width, _ = refined_elimination_masks(primal_masks(cnf), delay=delay)
    return width


def elimination_order(
    adjacency: Mapping[int, Iterable[int]],
    use_min_fill: bool | None = None,
) -> tuple[list[int], int]:
    """Greedy elimination ordering of a graph; returns ``(order, width)``.

    ``width`` — the largest neighborhood at elimination time — is the width
    of the tree decomposition the ordering induces, an upper bound on the
    treewidth.  ``use_min_fill=None`` picks min-fill for graphs up to
    :data:`MIN_FILL_VERTEX_LIMIT` vertices and min-degree beyond.
    """
    masks = {
        vertex: _mask_of(neighbors) for vertex, neighbors in adjacency.items()
    }
    return elimination_order_masks(masks, use_min_fill=use_min_fill)


def _mask_of(vertices: Iterable[int]) -> int:
    mask = 0
    for vertex in vertices:
        mask |= 1 << vertex
    return mask


def branching_order(cnf: CNF) -> tuple[list[int], int]:
    """Static branching order for the counter: reverse elimination order.

    The last vertex eliminated corresponds to the root bag of the induced
    tree decomposition; assigning it first disconnects the decomposition's
    subtrees, so component splitting fires as early as possible.  Variables
    absent from every clause are unconstrained and omitted.  Also returns
    the induced width as a difficulty estimate.  (The counter turns the
    order into a flat positional rank table itself.)
    """
    return branching_order_masks(primal_masks(cnf))


def branching_order_masks(masks: Mapping[int, int]) -> tuple[list[int], int]:
    """:func:`branching_order` over prebuilt adjacency bitsets.

    The model counter calls this with the masks its occurrence index
    already derived, so the primal graph is never rebuilt from the clause
    list a second time.  The two-phase policy lives in
    :func:`refined_elimination_masks`; branching just reverses its order.
    """
    order, width, _ = refined_elimination_masks(masks)
    order.reverse()
    return order, width
