"""Treewidth-style variable orderings for the model counter.

Decomposition-based counters are fast exactly when their branching order
follows a good tree decomposition of the formula's primal graph — this is
the driving idea of ``dpdb`` (Fichte, Hecher, Thier, Woltran: *Exploiting
Database Management Systems and Treewidth for Counting*), which feeds a
tree decomposition of the CNF into a dynamic program.  We stay
decomposition-guided but lighter-weight: a greedy **min-fill** elimination
ordering (falling back to min-degree on large graphs) approximates a tree
decomposition, and branching in *reverse* elimination order makes the
residual formula fall apart into the decomposition's subtrees, which the
component cache then conquers independently.

Internally the greedy loop runs over **integer bitsets**: each vertex's
neighborhood is one Python int with bit ``v`` set for neighbor ``v``, so a
fill count is a handful of word-wide ``&``/``~`` operations plus
``int.bit_count`` instead of a quadratic pair loop over Python sets.  On
the formulas the lineage compiler emits this is the difference between the
ordering dominating a count and the ordering being noise next to the
search (the greedy *choices* are unchanged — same min-fill score, same
tie-break — only their cost).  The model counter hands its
occurrence-index-derived adjacency masks straight to
:func:`elimination_order_masks`, so the primal graph is built exactly once
per formula.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.complexity.cnf import CNF

#: Above this many vertices min-fill's quadratic inner loop starts to hurt;
#: greedy min-degree is a standard cheaper surrogate.
MIN_FILL_VERTEX_LIMIT = 2_000

#: The branching order runs cheap min-degree first and refines with
#: min-fill only when the min-degree width lands at or below this bound.
#: The search is exponential in width, so where the width is small the
#: quadratic refinement is worth its price (a width shaved there can halve
#: the search); where min-degree already reports a large width the
#: formula is either propagation-dominated or intractable and min-fill is
#: the bottleneck, not the search.
MIN_FILL_REFINE_WIDTH = 24


def primal_graph(cnf: CNF) -> dict[int, set[int]]:
    """Adjacency of the primal (Gaifman) graph of ``cnf``.

    Vertices are the variables occurring in at least one clause; two are
    adjacent when they co-occur in a clause.
    """
    adjacency: dict[int, set[int]] = {}
    for clause in cnf.clauses:
        variables = {abs(literal) for literal in clause}
        for variable in variables:
            adjacency.setdefault(variable, set()).update(
                variables - {variable}
            )
    return adjacency


def primal_masks(cnf: CNF) -> dict[int, int]:
    """The primal graph as ``variable -> neighborhood bitset``.

    One pass over the clause list: every clause contributes its variable
    bitset to each member's adjacency mask (self-bits cleared at the end).
    This is the mask form :func:`elimination_order_masks` consumes.
    """
    masks: dict[int, int] = {}
    for clause in cnf.clauses:
        clause_mask = 0
        for literal in clause:
            clause_mask |= 1 << (literal if literal > 0 else -literal)
        variable_mask = clause_mask
        while variable_mask:
            low = variable_mask & -variable_mask
            variable = low.bit_length() - 1
            masks[variable] = masks.get(variable, 0) | clause_mask
            variable_mask ^= low
    for variable in masks:
        masks[variable] &= ~(1 << variable)
    return masks


def elimination_order_masks(
    masks: Mapping[int, int],
    use_min_fill: bool | None = None,
) -> tuple[list[int], int]:
    """Greedy elimination ordering over adjacency bitsets.

    Semantics match :func:`elimination_order` exactly — min-fill score
    (min-degree beyond :data:`MIN_FILL_VERTEX_LIMIT` vertices), ties broken
    by vertex index, neighborhoods turned into cliques on elimination —
    computed with ``&``/``|``/``bit_count`` instead of set algebra.
    Returns ``(order, width)``.
    """
    adjacency = dict(masks)
    if use_min_fill is None:
        use_min_fill = len(adjacency) <= MIN_FILL_VERTEX_LIMIT

    alive = 0
    for vertex in adjacency:
        alive |= 1 << vertex

    order: list[int] = []
    width = 0
    while adjacency:
        best_vertex = -1
        best_score = None
        for vertex in adjacency:
            neighbors = adjacency[vertex] & alive
            if use_min_fill:
                score = 0
                remaining = neighbors
                while remaining:
                    low = remaining & -remaining
                    u = low.bit_length() - 1
                    remaining ^= low
                    # neighbors of `vertex` that u is not adjacent to
                    # (counted once per unordered pair: only bits above u)
                    score += (remaining & ~adjacency[u]).bit_count()
            else:
                score = neighbors.bit_count()
            if best_score is None or (score, vertex) < (best_score, best_vertex):
                best_score, best_vertex = score, vertex
        neighbors = adjacency.pop(best_vertex) & alive
        alive &= ~(1 << best_vertex)
        order.append(best_vertex)
        width = max(width, neighbors.bit_count())
        remaining = neighbors
        while remaining:
            low = remaining & -remaining
            u = low.bit_length() - 1
            remaining ^= low
            adjacency[u] = (adjacency[u] | neighbors) & ~low
    return order, width


def elimination_order(
    adjacency: Mapping[int, Iterable[int]],
    use_min_fill: bool | None = None,
) -> tuple[list[int], int]:
    """Greedy elimination ordering of a graph; returns ``(order, width)``.

    ``width`` — the largest neighborhood at elimination time — is the width
    of the tree decomposition the ordering induces, an upper bound on the
    treewidth.  ``use_min_fill=None`` picks min-fill for graphs up to
    :data:`MIN_FILL_VERTEX_LIMIT` vertices and min-degree beyond.
    """
    masks = {
        vertex: _mask_of(neighbors) for vertex, neighbors in adjacency.items()
    }
    return elimination_order_masks(masks, use_min_fill=use_min_fill)


def _mask_of(vertices: Iterable[int]) -> int:
    mask = 0
    for vertex in vertices:
        mask |= 1 << vertex
    return mask


def branching_order(cnf: CNF) -> tuple[list[int], int]:
    """Static branching order for the counter: reverse elimination order.

    The last vertex eliminated corresponds to the root bag of the induced
    tree decomposition; assigning it first disconnects the decomposition's
    subtrees, so component splitting fires as early as possible.  Variables
    absent from every clause are unconstrained and omitted.  Also returns
    the induced width as a difficulty estimate.  (The counter turns the
    order into a flat positional rank table itself.)
    """
    return branching_order_masks(primal_masks(cnf))


def branching_order_masks(masks: Mapping[int, int]) -> tuple[list[int], int]:
    """:func:`branching_order` over prebuilt adjacency bitsets.

    The model counter calls this with the masks its occurrence index
    already derived, so the primal graph is never rebuilt from the clause
    list a second time.

    Two-phase: min-degree first (linear-ish, and its width is a usable
    difficulty estimate), then a min-fill refinement only where the width
    is small enough for the refinement to matter
    (:data:`MIN_FILL_REFINE_WIDTH`); the better of the two widths wins.
    """
    order, width = elimination_order_masks(masks, use_min_fill=False)
    if width <= MIN_FILL_REFINE_WIDTH and len(masks) <= MIN_FILL_VERTEX_LIMIT:
        fill_order, fill_width = elimination_order_masks(
            masks, use_min_fill=True
        )
        if fill_width < width:
            order, width = fill_order, fill_width
    order.reverse()
    return order, width
