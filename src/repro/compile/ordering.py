"""Treewidth-style variable orderings for the model counter.

Decomposition-based counters are fast exactly when their branching order
follows a good tree decomposition of the formula's primal graph — this is
the driving idea of ``dpdb`` (Fichte, Hecher, Thier, Woltran: *Exploiting
Database Management Systems and Treewidth for Counting*), which feeds a
tree decomposition of the CNF into a dynamic program.  We stay
decomposition-guided but lighter-weight: a greedy **min-fill** elimination
ordering (falling back to min-degree on large graphs) approximates a tree
decomposition, and branching in *reverse* elimination order makes the
residual formula fall apart into the decomposition's subtrees, which the
component cache then conquers independently.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.complexity.cnf import CNF

#: Above this many vertices min-fill's quadratic inner loop starts to hurt;
#: greedy min-degree is a standard cheaper surrogate.
MIN_FILL_VERTEX_LIMIT = 2_000


def primal_graph(cnf: CNF) -> dict[int, set[int]]:
    """Adjacency of the primal (Gaifman) graph of ``cnf``.

    Vertices are the variables occurring in at least one clause; two are
    adjacent when they co-occur in a clause.
    """
    adjacency: dict[int, set[int]] = {}
    for clause in cnf.clauses:
        variables = {abs(literal) for literal in clause}
        for variable in variables:
            adjacency.setdefault(variable, set()).update(
                variables - {variable}
            )
    return adjacency


def elimination_order(
    adjacency: Mapping[int, Iterable[int]],
    use_min_fill: bool | None = None,
) -> tuple[list[int], int]:
    """Greedy elimination ordering of a graph; returns ``(order, width)``.

    ``width`` — the largest neighborhood at elimination time — is the width
    of the tree decomposition the ordering induces, an upper bound on the
    treewidth.  ``use_min_fill=None`` picks min-fill for graphs up to
    :data:`MIN_FILL_VERTEX_LIMIT` vertices and min-degree beyond.
    """
    remaining: dict[int, set[int]] = {
        vertex: set(neighbors) for vertex, neighbors in adjacency.items()
    }
    if use_min_fill is None:
        use_min_fill = len(remaining) <= MIN_FILL_VERTEX_LIMIT

    order: list[int] = []
    width = 0
    while remaining:
        vertex = min(remaining, key=lambda v: _elimination_cost(remaining, v, use_min_fill))
        order.append(vertex)
        neighbors = remaining.pop(vertex)
        width = max(width, len(neighbors))
        for u in neighbors:
            remaining[u].discard(vertex)
        for u in neighbors:
            remaining[u].update(v for v in neighbors if v != u)
    return order, width


def _elimination_cost(
    graph: Mapping[int, set[int]], vertex: int, use_min_fill: bool
) -> tuple[int, int]:
    """Greedy score of eliminating ``vertex`` (ties broken by index)."""
    neighbors = graph[vertex]
    if not use_min_fill:
        return (len(neighbors), vertex)
    fill = sum(
        1
        for u in neighbors
        for v in neighbors
        if u < v and v not in graph[u]
    )
    return (fill, vertex)


def branching_order(cnf: CNF) -> tuple[list[int], int]:
    """Static branching order for the counter: reverse elimination order.

    The last vertex eliminated corresponds to the root bag of the induced
    tree decomposition; assigning it first disconnects the decomposition's
    subtrees, so component splitting fires as early as possible.  Variables
    absent from every clause are unconstrained and omitted.  Also returns
    the induced width as a difficulty estimate.  (The counter turns the
    order into a flat positional rank table itself.)
    """
    order, width = elimination_order(primal_graph(cnf))
    order.reverse()
    return order, width
